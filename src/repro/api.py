"""JoinBoost's public, LightGBM-flavoured API (the paper's Figure 4).

Usage mirrors Example 6::

    import repro as joinboost

    conn = joinboost.connect()            # a Connector (embedded by default)
    train_set = joinboost.join_graph(conn)
    train_set.add_node("sales", y="net_profit")
    train_set.add_node("date", X=["holiday", "weekend"])
    train_set.add_edge("sales", "date", ["date_id"])
    model = joinboost.train({"objective": "regression"}, train_set)
    scores = joinboost.predict(model, train_set)

``join_graph(...)`` returns a :class:`TrainSet` wrapper so the paper's
``add_node(name, X=..., Y=...)`` spelling works verbatim; it delegates to
:class:`~repro.joingraph.graph.JoinGraph`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.backends import Connector, get_backend
from repro.backends.chaos import FaultPlan, RetryConnector, wrap_with_chaos
from repro.engine.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.exceptions import TrainingError
from repro.joingraph.graph import JoinGraph
from repro.core.boosting import train_gradient_boosting
from repro.core.forest import train_random_forest
from repro.core.params import TrainParams
from repro.core.predict import predict_join, rmse_on_join
from repro.core.session import TrainingSessionGuard
from repro.core.split import VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.factorize.executor import (
    Factorizer,
    configure_encoding_cache,
    prepare_training_paths,
)
from repro.semiring.variance import VarianceSemiRing


def connect(
    backend: str = "plain",
    name: str = "repro",
    chaos: Union[FaultPlan, str, None] = None,
    retry: Union[RetryPolicy, bool, None] = None,
    **table_data,
) -> Connector:
    """Open a database connection; ``backend`` picks the engine.

    ``backend`` may be an embedded-engine storage preset (``plain``,
    ``x-col``, ``x-row``, ``d-disk``, ``d-mem``, ``dp``, ``d-swap``), the
    stdlib ``sqlite`` backend, or ``duckdb`` when the optional package is
    installed — see :mod:`repro.backends`.  Keyword arguments become
    tables (column-name -> array mappings), Example 6 style.

    Fault tolerance knobs (PR 8):

    * ``chaos`` — a :class:`~repro.backends.chaos.FaultPlan` or spec
      string; defaults to the ``JOINBOOST_CHAOS`` environment variable.
      Wraps the backend in a fault-injecting
      :class:`~repro.backends.chaos.ChaosConnector`.
    * ``retry`` — a :class:`~repro.engine.retry.RetryPolicy`, ``True``
      (default policy), or ``False`` (never retry).  Left unset, retries
      are enabled automatically whenever chaos is active.  The retry
      proxy is outermost, so it sees (and absorbs) injected faults.
    """
    conn = get_backend(backend, name=name)
    if chaos is None:
        chaos = os.environ.get("JOINBOOST_CHAOS") or None
    conn = wrap_with_chaos(conn, chaos)
    if retry is None:
        retry = chaos is not None
    if retry is not False:
        policy = retry if isinstance(retry, RetryPolicy) else DEFAULT_RETRY_POLICY
        conn = RetryConnector(conn, policy)
    for table_name, data in table_data.items():
        conn.create_table(table_name, data)
    return conn


class TrainSet:
    """Paper-style training-set wrapper over a join graph."""

    def __init__(self, db: Connector):
        self.db = db
        self.graph = JoinGraph(db)

    def add_node(
        self,
        name: str,
        X: Optional[Sequence[str]] = None,
        y: Optional[str] = None,
        Y: Optional[str] = None,
        categorical: Optional[Sequence[str]] = None,
        is_fact: bool = False,
    ) -> "TrainSet":
        target = y or Y
        if isinstance(target, (list, tuple)):
            if len(target) != 1:
                raise TrainingError("exactly one target variable is supported")
            target = target[0]
        self.graph.add_relation(
            name, features=X, y=target, categorical=categorical, is_fact=is_fact
        )
        return self

    def add_edge(
        self,
        left: str,
        right: str,
        keys: Sequence[str],
        right_keys: Optional[Sequence[str]] = None,
    ) -> "TrainSet":
        self.graph.add_edge(left, right, keys, right_keys)
        return self

    def infer_edges(self) -> "TrainSet":
        self.graph.infer_edges()
        return self


def join_graph(db: Connector) -> TrainSet:
    """Start defining a training dataset over ``db`` (Figure 4 API)."""
    return TrainSet(db)


def train(params: Optional[Dict] = None, train_set: TrainSet = None, **overrides):
    """Train per LightGBM-style params: boosting by default, random
    forest when ``boosting_type='rf'`` is requested, a single decision
    tree when ``num_iterations == 1`` and ``model='tree'``."""
    if train_set is None:
        raise TrainingError("train() needs a train_set")
    params = dict(params or {})
    model_kind = params.pop("model", overrides.pop("model", "boosting"))
    if params.pop("boosting_type", None) == "rf":
        model_kind = "rf"
    graph = train_set.graph
    if model_kind == "rf":
        return train_random_forest(train_set.db, graph, params, **overrides)
    if model_kind == "tree":
        return train_decision_tree(train_set.db, graph, params, **overrides)
    return train_gradient_boosting(train_set.db, graph, params, **overrides)


def train_decision_tree(db, graph: JoinGraph, params=None, **overrides):
    """Train one factorized decision tree (variance criterion)."""
    train_params = TrainParams.from_dict(params, **overrides)
    graph.validate()
    configure_encoding_cache(db, train_params.encoding_cache)
    factorizer = Factorizer(db, graph, VarianceSemiRing())
    # A mid-training failure must not strand the lifted fact or message
    # temps — the guard drops them before re-raising.
    with TrainingSessionGuard(db).register(factorizer):
        factorizer.lift()
        prepare_training_paths(db, graph, factorizer)
        trainer = DecisionTreeTrainer(
            db, graph, factorizer, VarianceCriterion(), train_params
        )
        model = trainer.train()
        factorizer.cleanup()
    return model


def predict(model, train_set: TrainSet) -> np.ndarray:
    """Score every fact row of the training set's join graph."""
    return predict_join(train_set.db, train_set.graph, model)


def evaluate_rmse(model, train_set: TrainSet) -> float:
    return rmse_on_join(train_set.db, train_set.graph, model)
