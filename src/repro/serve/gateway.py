"""Resilient serving gateway over :class:`PredictionService`.

The prediction service (PR 6) gives three bit-identical scoring paths;
this module (PR 10) gives them the robustness contract training got in
PRs 8–9.  :class:`ServingGateway` fronts a service with:

* **Deadline budgets** — every request gets a wall-clock budget
  (``JOINBOOST_SERVE_DEADLINE`` or per-request ``deadline=``) checked at
  admission and before every degradation step, so a request can neither
  sit in the queue nor walk the fallback ladder forever
  (:class:`~repro.exceptions.DeadlineExceededError`).
* **Bounded admission** — at most ``max_in_flight`` requests score
  concurrently and at most ``max_queue_depth`` wait; a request past the
  bound is *shed* immediately with
  :class:`~repro.exceptions.ServiceOverloadedError` carrying the
  queue-depth census.  Shedding, never unbounded latency.
* **Per-path circuit breakers** (:mod:`repro.serve.breaker`) — a backend
  that keeps failing ``score_sql`` trips the ``sql`` breaker open and
  traffic stops hammering it; after the recovery window a bounded probe
  half-opens it, and recovery closes it.  The clock is injectable, so
  tests drive transitions deterministically.
* **Graceful degradation** — backend scoring failures fall down a
  ladder: ``sql``/``key`` → the compiled numpy kernel over a
  fact-aligned frame (which executes *no* SQL, so statement faults
  cannot touch it) → the recursive reference scorer.  All three paths
  are bit-identical by construction (PR 6's parity tests), so a
  degraded response is the *same bits* with a different cost profile —
  and every degradation is stamped in the response census
  (``served_by``, ``degraded_reason``).

The gateway also re-exports the service's safe-deploy surface
(:meth:`deploy` with ``canary=``, :meth:`rollback`) so a serving
process needs exactly one object.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.predict import feature_frame
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServingError,
    TrainingError,
)
from repro.serve.breaker import (
    DEFAULT_BREAKER_POLICY,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.serve.service import PredictionService

#: environment variable naming the default per-request deadline (seconds)
DEADLINE_ENV = "JOINBOOST_SERVE_DEADLINE"

#: deadline used when neither the env var nor the caller provides one
DEFAULT_DEADLINE_SECONDS = 2.0

#: the scoring paths, in degradation-ladder order per request kind
PATH_SQL = "sql"
PATH_KEY = "key"
PATH_COMPILED = "compiled"
PATH_RECURSIVE = "recursive"

#: errors the ladder never swallows: they are verdicts about the
#: *request* (shed, out of time, misconfigured), not about path health
_PROPAGATE = (ServiceOverloadedError, DeadlineExceededError, TrainingError)


def _env_deadline() -> float:
    raw = os.environ.get(DEADLINE_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_DEADLINE_SECONDS
    try:
        value = float(raw)
    except ValueError:
        raise ServingError(
            f"malformed {DEADLINE_ENV}={raw!r}: expected seconds as a float"
        ) from None
    if value <= 0:
        raise ServingError(f"{DEADLINE_ENV} must be > 0, got {value!r}")
    return value


@dataclasses.dataclass
class GatewayResponse:
    """One served request plus its census.

    ``served_by`` names the path that produced the scores;
    ``degraded_reason`` is ``None`` when the primary path served, else a
    ``path:ErrorType`` trail of every step that failed before one
    succeeded.  ``scores`` is always the fact-aligned (or key-matched)
    float64 array; ``relation`` additionally carries the backend
    Relation when the primary ``key`` path served.
    """

    scores: np.ndarray
    served_by: str
    degraded_reason: Optional[str]
    request: str
    name: str
    digest: str
    elapsed_seconds: float
    deadline_seconds: float
    relation: object = None

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not None


class ServingGateway:
    """Admission control, deadlines, breakers, and degradation in front
    of a :class:`PredictionService`.

    One gateway serves many threads; all mutable state is behind one
    condition variable (admission) and the breakers' own locks.  The
    ``clock`` is injectable and shared with the breakers so tests can
    advance open → half-open without sleeping.
    """

    def __init__(
        self,
        service: PredictionService,
        max_in_flight: int = 8,
        max_queue_depth: int = 16,
        deadline_seconds: Optional[float] = None,
        breaker_policy: BreakerPolicy = DEFAULT_BREAKER_POLICY,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.service = service
        self.max_in_flight = int(max_in_flight)
        self.max_queue_depth = int(max_queue_depth)
        self.deadline_seconds = (
            float(deadline_seconds)
            if deadline_seconds is not None
            else _env_deadline()
        )
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")
        self._clock = clock
        self._admission = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._breakers: Dict[str, CircuitBreaker] = {
            path: CircuitBreaker(path=path, policy=breaker_policy, clock=clock)
            for path in (PATH_SQL, PATH_KEY, PATH_COMPILED, PATH_RECURSIVE)
        }
        self.requests = 0
        self.served = 0
        self.shed = 0
        self.degraded = 0
        self.deadline_exceeded = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # Deploy surface (delegated so one object runs a serving process)
    # ------------------------------------------------------------------
    def deploy(
        self,
        model: object,
        name: str = "default",
        canary: bool = False,
        force: bool = False,
    ) -> str:
        """Deploy through the service (see
        :meth:`PredictionService.deploy` for the canary contract)."""
        return self.service.deploy(model, name=name, canary=canary, force=force)

    def rollback(self, name: str = "default") -> str:
        """Restore the previous version of ``name`` (O(1), kernel warm)."""
        return self.service.rollback(name)

    def breaker(self, path: str) -> CircuitBreaker:
        """The circuit breaker guarding ``path`` (test/ops hook)."""
        return self._breakers[path]

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def score_sql(
        self,
        name: str = "default",
        deadline: Optional[float] = None,
        degrade: bool = True,
    ) -> GatewayResponse:
        """Score every fact row, preferring the in-database SQL path.

        Ladder: ``sql`` → ``compiled`` → ``recursive``.  With
        ``degrade=False`` the first path failure (or an open breaker)
        raises instead of falling through.
        """
        ladder = [
            (PATH_SQL, lambda: np.asarray(self.service.score_sql(name))),
            (PATH_COMPILED, lambda: np.asarray(self.service.score_all(name))),
            (PATH_RECURSIVE, lambda: self._recursive_scores(name)),
        ]
        return self._request("sql", name, ladder, deadline, degrade)

    def score_key(
        self,
        keys: Mapping[str, object],
        name: str = "default",
        deadline: Optional[float] = None,
        degrade: bool = True,
    ) -> GatewayResponse:
        """Score the fact rows matching ``keys`` ("score user id X").

        Ladder: ``key`` (backend semi-join) → ``compiled`` over the
        key-masked fact frame → ``recursive`` over the same mask.  The
        degraded paths execute no SQL, so they survive any statement
        fault plan.
        """
        keys = dict(keys)

        def key_primary() -> Tuple[np.ndarray, object]:
            relation = self.service.score_key(keys, name=name)
            return relation.column("jb_score").as_float(), relation

        ladder = [
            (PATH_KEY, key_primary),
            (PATH_COMPILED, lambda: self._masked_scores(name, keys, False)),
            (PATH_RECURSIVE, lambda: self._masked_scores(name, keys, True)),
        ]
        return self._request("key", name, ladder, deadline, degrade)

    def score_compiled(
        self,
        name: str = "default",
        deadline: Optional[float] = None,
        degrade: bool = True,
    ) -> GatewayResponse:
        """Score every fact row with the compiled kernel.

        Ladder: ``compiled`` → ``recursive``.
        """
        ladder = [
            (PATH_COMPILED, lambda: np.asarray(self.service.score_all(name))),
            (PATH_RECURSIVE, lambda: self._recursive_scores(name)),
        ]
        return self._request("compiled", name, ladder, deadline, degrade)

    # ------------------------------------------------------------------
    # Fallback scoring (no SQL executed on these paths)
    # ------------------------------------------------------------------
    def _recursive_scores(self, name: str) -> np.ndarray:
        deployment = self.service.deployment(name)
        model = deployment.model
        frame = feature_frame(
            self.service.db,
            self.service.graph,
            columns=list(model.required_features),  # type: ignore[attr-defined]
            fact=self.service.fact,
            include_target=False,
        )
        return np.asarray(model.predict_arrays(frame))  # type: ignore[attr-defined]

    def _masked_scores(
        self, name: str, keys: Dict[str, object], recursive: bool
    ) -> np.ndarray:
        """Key-restricted scoring without SQL: build the fact-aligned
        frame (plus the key columns), mask rows matching ``keys``, score
        the slice in fact order — the same rows the semi-join returns."""
        deployment = self.service.deployment(name)
        model = deployment.model
        features = list(model.required_features)  # type: ignore[attr-defined]
        columns = sorted(set(features) | set(keys))
        frame = feature_frame(
            self.service.db,
            self.service.graph,
            columns=columns,
            fact=self.service.fact,
            include_target=False,
        )
        n = len(next(iter(frame.values()))) if frame else 0
        mask = np.ones(n, dtype=bool)
        for column, value in keys.items():
            mask &= np.asarray(frame[column]) == value
        sliced = {c: np.asarray(frame[c])[mask] for c in features}
        if recursive:
            return np.asarray(model.predict_arrays(sliced))  # type: ignore[attr-defined]
        kernel = self.service.compiled(name)
        return np.asarray(kernel.predict_arrays(sliced))

    # ------------------------------------------------------------------
    # The request pipeline: admit → ladder → census
    # ------------------------------------------------------------------
    def _request(
        self,
        request: str,
        name: str,
        ladder: Sequence[Tuple[str, Callable[[], object]]],
        deadline: Optional[float],
        degrade: bool,
    ) -> GatewayResponse:
        budget = float(deadline) if deadline is not None else self.deadline_seconds
        if budget <= 0:
            raise ValueError("deadline must be > 0")
        start = self._clock()
        deadline_at = start + budget
        with self._admission:
            self.requests += 1
        digest = self.service.version(name)  # raises TrainingError early
        self._admit(deadline_at, budget)
        try:
            return self._walk_ladder(
                request, name, digest, ladder, start, deadline_at, budget, degrade
            )
        finally:
            with self._admission:
                self._in_flight -= 1
                self._admission.notify()

    def _admit(self, deadline_at: float, budget: float) -> None:
        with self._admission:
            if self._in_flight < self.max_in_flight:
                self._in_flight += 1
                return
            if self._queued >= self.max_queue_depth:
                self.shed += 1
                raise ServiceOverloadedError(
                    f"shedding: {self._in_flight} in flight and "
                    f"{self._queued} queued (bound {self.max_queue_depth})",
                    queued=self._queued,
                    max_queue_depth=self.max_queue_depth,
                    in_flight=self._in_flight,
                )
            self._queued += 1
            try:
                while self._in_flight >= self.max_in_flight:
                    remaining = deadline_at - self._clock()
                    if remaining <= 0:
                        self.deadline_exceeded += 1
                        raise DeadlineExceededError(
                            f"deadline ({budget:.3f}s) expired while queued",
                            deadline_seconds=budget,
                            elapsed_seconds=budget - remaining,
                        )
                    # bounded wait so an injected fake clock cannot park
                    # a real thread forever
                    self._admission.wait(timeout=min(remaining, 0.05))
            finally:
                self._queued -= 1
            self._in_flight += 1

    def _walk_ladder(
        self,
        request: str,
        name: str,
        digest: str,
        ladder: Sequence[Tuple[str, Callable[[], object]]],
        start: float,
        deadline_at: float,
        budget: float,
        degrade: bool,
    ) -> GatewayResponse:
        reasons: List[str] = []
        last_error: Optional[BaseException] = None
        for path, step in ladder:
            elapsed = self._clock() - start
            if self._clock() >= deadline_at:
                with self._admission:
                    self.deadline_exceeded += 1
                raise DeadlineExceededError(
                    f"deadline ({budget:.3f}s) expired before path "
                    f"{path!r} could run",
                    deadline_seconds=budget,
                    elapsed_seconds=elapsed,
                )
            breaker = self._breakers[path]
            if not breaker.allow():
                error: ServingError = CircuitOpenError(
                    f"breaker for path {path!r} is {breaker.state}"
                )
                if not degrade:
                    with self._admission:
                        self.failures += 1
                    raise error
                reasons.append(f"{path}:circuit_open")
                last_error = error
                continue
            try:
                result = step()
            except _PROPAGATE:
                # verdict about the request, not the path: release the
                # (possible) half-open probe without a health signal
                breaker.record_success()
                with self._admission:
                    self.failures += 1
                raise
            except Exception as exc:
                breaker.record_failure()
                if not degrade:
                    with self._admission:
                        self.failures += 1
                    raise
                reasons.append(f"{path}:{type(exc).__name__}")
                last_error = exc
                continue
            breaker.record_success()
            relation = None
            if isinstance(result, tuple):
                scores, relation = result
            else:
                scores = result
            degraded_reason = "; ".join(reasons) if reasons else None
            with self._admission:
                self.served += 1
                if degraded_reason is not None:
                    self.degraded += 1
            return GatewayResponse(
                scores=np.asarray(scores),
                served_by=path,
                degraded_reason=degraded_reason,
                request=request,
                name=name,
                digest=digest,
                elapsed_seconds=self._clock() - start,
                deadline_seconds=budget,
                relation=relation,
            )
        with self._admission:
            self.failures += 1
        message = (
            f"every scoring path failed for request {request!r}: "
            f"{'; '.join(reasons) or 'no path admitted'}"
        )
        if isinstance(last_error, ServingError):
            raise type(last_error)(message) from last_error
        raise ServingError(message) from last_error

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Gateway census: admission counters, per-path breaker
        snapshots, and the underlying service's stats."""
        with self._admission:
            out: Dict[str, object] = {
                "requests": self.requests,
                "served": self.served,
                "shed": self.shed,
                "degraded": self.degraded,
                "deadline_exceeded": self.deadline_exceeded,
                "failures": self.failures,
                "in_flight": self._in_flight,
                "queued": self._queued,
                "max_in_flight": self.max_in_flight,
                "max_queue_depth": self.max_queue_depth,
                "deadline_seconds": self.deadline_seconds,
            }
        out["breakers"] = {
            path: breaker.snapshot() for path, breaker in self._breakers.items()
        }
        out["service"] = self.service.stats()
        return out

    def __repr__(self) -> str:
        return (
            f"ServingGateway(max_in_flight={self.max_in_flight}, "
            f"max_queue_depth={self.max_queue_depth}, "
            f"deadline={self.deadline_seconds})"
        )
