"""Per-path circuit breakers for the serving gateway.

A breaker protects one scoring path (``sql``, ``key``, ``compiled``)
from a backend that has started failing: after ``failure_threshold``
consecutive failures the breaker *opens* and the gateway stops sending
requests down that path (degrading them instead), so a struggling
backend is not hammered by retry traffic while every request eats a
timeout.  After ``recovery_seconds`` the breaker goes *half-open* and
admits a bounded number of probe requests; ``success_threshold``
consecutive probe successes close it again, any probe failure re-opens
it and restarts the recovery clock.

Determinism is the same contract the chaos layer keeps: the clock is
injectable (``clock=``, default :func:`time.monotonic`), so tests drive
the open → half-open transition with a fake clock instead of sleeping,
and every state transition is recorded in a bounded census trail that
the gateway surfaces in :meth:`ServingGateway.stats`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, List, Optional

#: breaker states (plain strings so snapshots JSON-serialize as-is)
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: maximum retained state-transition records per breaker
_MAX_TRANSITIONS = 64


@dataclasses.dataclass(frozen=True)
class BreakerPolicy:
    """When a breaker trips, recovers, and closes.

    * ``failure_threshold`` — consecutive failures (in the closed
      state) that open the breaker;
    * ``recovery_seconds`` — how long an open breaker rejects before
      going half-open;
    * ``half_open_probes`` — how many in-flight probe requests the
      half-open state admits at once;
    * ``success_threshold`` — consecutive probe successes that close a
      half-open breaker.
    """

    failure_threshold: int = 3
    recovery_seconds: float = 1.0
    half_open_probes: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.recovery_seconds < 0:
            raise ValueError("recovery_seconds must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")


#: the policy gateways use unless told otherwise
DEFAULT_BREAKER_POLICY = BreakerPolicy()


class CircuitBreaker:
    """Thread-safe closed → open → half-open state machine.

    Call :meth:`allow` before attempting the protected operation (it
    consumes a probe slot in the half-open state), then exactly one of
    :meth:`record_success` / :meth:`record_failure` for the attempt.
    """

    def __init__(
        self,
        path: str = "default",
        policy: BreakerPolicy = DEFAULT_BREAKER_POLICY,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.path = path
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.opens = 0
        self.closes = 0
        self.half_opens = 0
        self.rejections = 0
        self._transitions: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        # lock held by caller
        if len(self._transitions) < _MAX_TRANSITIONS:
            self._transitions.append(
                {"from": self._state, "to": new_state, "at": self._clock()}
            )
        self._state = new_state
        if new_state == OPEN:
            self.opens += 1
            self._opened_at = self._clock()
            self._probes_in_flight = 0
            self._probe_successes = 0
        elif new_state == HALF_OPEN:
            self.half_opens += 1
            self._probes_in_flight = 0
            self._probe_successes = 0
        elif new_state == CLOSED:
            self.closes += 1
            self._consecutive_failures = 0
            self._opened_at = None

    def _advance(self) -> None:
        # lock held by caller: an open breaker whose recovery window has
        # elapsed becomes half-open (checked lazily — no timer thread)
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.policy.recovery_seconds:
                self._transition(HALF_OPEN)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current state, advancing open → half-open on the clock."""
        with self._lock:
            self._advance()
            return self._state

    def allow(self) -> bool:
        """Whether the protected path may be attempted right now.

        Half-open admission consumes one of the bounded probe slots;
        the caller must follow up with ``record_success`` or
        ``record_failure`` to release it.
        """
        with self._lock:
            self._advance()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                self.rejections += 1
                return False
            if self._probes_in_flight >= self.policy.half_open_probes:
                self.rejections += 1
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        """One attempt on the protected path succeeded."""
        with self._lock:
            self._advance()
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.policy.success_threshold:
                    self._transition(CLOSED)
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        """One attempt on the protected path failed."""
        with self._lock:
            self._advance()
            if self._state == HALF_OPEN:
                # the probe failed: back to open, recovery clock restarts
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._transition(OPEN)
            elif self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.policy.failure_threshold:
                    self._transition(OPEN)
            # failures observed while already open (an in-flight call
            # admitted before the trip) do not re-stamp the clock

    def snapshot(self) -> Dict[str, object]:
        """Census copy: state, counters, and the transition trail."""
        with self._lock:
            self._advance()
            return {
                "path": self.path,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "closes": self.closes,
                "half_opens": self.half_opens,
                "rejections": self.rejections,
                "transitions": [dict(t) for t in self._transitions],
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.path!r}, state={self.state!r})"
