"""Batch prediction service over the normalized schema.

The ROADMAP's north-star is serving "millions of users" without ever
materializing R⋈.  :class:`PredictionService` is the serving half of that
promise: models are *deployed* under a name, versioned by the sha256
digest of their canonical JSON dump, compiled once into flat numpy
kernels (:mod:`repro.core.compile`) held in a warm LRU cache, and scored
three ways —

* :meth:`score_all` / :meth:`score_frame` — the compiled numpy kernel
  over fact-aligned :func:`repro.core.predict.feature_frame` batches;
* :meth:`score_sql` — the model pushed into the backend as one nested
  ``CASE WHEN`` expression (:mod:`repro.core.sql_score`);
* :meth:`score_key` — the "score user id X" path: a semi-join over the
  N-to-1 join tree restricted by a key predicate, no denormalization.

Deploys are versioned and reversible (PR 10): redeploying a name with a
retrained model mints a new digest and pushes the previous version into
a bounded per-name history whose compiled kernels stay *pinned* in the
warm cache — so :meth:`rollback` restores the prior digest in O(1)
without recompiling, and ``deploy(..., canary=True)`` shadow-scores a
sample through the live and candidate kernels, promoting only on
bit-parity (or an explicit ``force=True``).  The deployment registry is
guarded by an RLock so concurrent score calls never observe a
half-applied deploy.

Backend scoring failures never escape raw: ``score_sql``/``score_key``
wrap driver/backend errors into the serving taxonomy
(:class:`~repro.exceptions.TransientServingError` vs
:class:`~repro.exceptions.ServingBackendError`), counted in
:meth:`stats` — which is what makes the gateway's circuit-breaker trip
decisions principled.  Batch scoring fans out over the PR-5 query
scheduler when ``JOINBOOST_NUM_WORKERS`` (or an explicit ``workers=``)
asks for it; the kernels are pure numpy, so worker count never changes
the bits.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.compile import CompiledModel, compile_model
from repro.core.params import TrainParams
from repro.core.predict import feature_frame
from repro.core.serialize import model_digest
from repro.core.sql_score import score_by_key, sql_scores
from repro.engine.scheduler import QueryScheduler
from repro.exceptions import (
    BackendError,
    CanaryParityError,
    SQLError,
    ServingBackendError,
    ServingError,
    TrainingError,
    TransientBackendError,
    TransientServingError,
)
from repro.joingraph.graph import JoinGraph
from repro.serve.cache import CompiledModelCache

#: default fact-row chunk for batched scoring; small enough to overlap,
#: large enough that per-chunk dispatch overhead disappears.
DEFAULT_BATCH_ROWS = 65_536

#: versions retained warm per name: the live deployment plus
#: (RETAINED_VERSIONS - 1) rollback targets
DEFAULT_RETAINED_VERSIONS = 2

#: fact rows the canary shadow-scores through live and candidate kernels
DEFAULT_CANARY_SAMPLE_ROWS = 256


@dataclasses.dataclass
class Deployment:
    """A named, versioned model the service will score with."""

    name: str
    digest: str
    model: object
    deployed_at: float


class PredictionService:
    """Digest-versioned batch scorer bound to one database + join graph."""

    def __init__(
        self,
        db: object,
        graph: JoinGraph,
        fact: Optional[str] = None,
        cache_size: int = 8,
        retained_versions: int = DEFAULT_RETAINED_VERSIONS,
        canary_sample_rows: int = DEFAULT_CANARY_SAMPLE_ROWS,
    ):
        if retained_versions < 1:
            raise ValueError("retained_versions must be >= 1")
        self.db = db
        self.graph = graph
        self.fact = fact or graph.target_relation
        self.cache = CompiledModelCache(max_entries=cache_size)
        self.retained_versions = int(retained_versions)
        self.canary_sample_rows = int(canary_sample_rows)
        # Deploy/undeploy/rollback mutate the registry while concurrent
        # score calls read it; every access funnels through this RLock.
        self._registry_lock = threading.RLock()
        self._deployments: Dict[str, Deployment] = {}
        self._history: Dict[str, List[Deployment]] = {}
        self._serving_faults = {"transient": 0, "permanent": 0}

    # ------------------------------------------------------------------
    # Deployment / versioning
    # ------------------------------------------------------------------
    def deploy(
        self,
        model: object,
        name: str = "default",
        canary: bool = False,
        force: bool = False,
    ) -> str:
        """Register ``model`` under ``name``; returns its version digest.

        Redeploying a name with a different model retains the previous
        version in a bounded history (``retained_versions``, default 2:
        live + one rollback target) with its compiled kernel pinned warm
        in the cache, so :meth:`rollback` never recompiles.  Versions
        falling off the history are unpinned and their kernels
        invalidated (unless still referenced by another name).

        ``canary=True`` shadow-scores a deterministic sample of fact
        rows through the live and the candidate kernels before
        promotion and raises :class:`CanaryParityError` unless the
        outputs are bit-identical — a changed model needs ``force=True``
        to ship.  The canary runs outside the registry lock, so scoring
        traffic continues while it compares.
        """
        digest = model_digest(model)
        candidate = Deployment(
            name=name, digest=digest, model=model, deployed_at=time.time()
        )
        with self._registry_lock:
            previous = self._deployments.get(name)
        if previous is not None and previous.digest == digest:
            # Same bits: refresh the deployment record, keep history.
            with self._registry_lock:
                self._deployments[name] = candidate
            return digest
        if canary and previous is not None and not force:
            self._run_canary(previous, candidate)
        with self._registry_lock:
            previous = self._deployments.get(name)
            if previous is not None and previous.digest == digest:
                self._deployments[name] = candidate
                return digest
            self._deployments[name] = candidate
            self.cache.pin(digest)
            if previous is not None:
                history = self._history.setdefault(name, [])
                history.insert(0, previous)
                while len(history) > self.retained_versions - 1:
                    stale = history.pop()
                    self._release_version(stale.digest)
        return digest

    def rollback(self, name: str = "default") -> str:
        """Restore the previously deployed version of ``name`` in O(1).

        The most recent history entry becomes live and the current
        deployment takes its place in history (so rollback is itself
        reversible).  The restored kernel is still pinned warm in the
        cache — no recompilation.
        """
        with self._registry_lock:
            deployment = self._deployment(name)
            history = self._history.get(name)
            if not history:
                raise ServingError(
                    f"no previous version retained for {name!r}; "
                    f"history is empty"
                )
            restored = history.pop(0)
            history.insert(0, deployment)
            self._deployments[name] = dataclasses.replace(
                restored, deployed_at=time.time()
            )
            return restored.digest

    def undeploy(self, name: str = "default") -> None:
        """Forget ``name`` entirely: live version and retained history."""
        with self._registry_lock:
            deployment = self._deployment(name)
            del self._deployments[name]
            history = self._history.pop(name, [])
            self._release_version(deployment.digest)
            for entry in history:
                self._release_version(entry.digest)

    def version(self, name: str = "default") -> str:
        """The digest currently served under ``name``."""
        return self._deployment(name).digest

    def history(self, name: str = "default") -> List[str]:
        """Digests of retained previous versions, most recent first."""
        with self._registry_lock:
            return [d.digest for d in self._history.get(name, [])]

    def deployments(self) -> List[Deployment]:
        with self._registry_lock:
            return list(self._deployments.values())

    def deployment(self, name: str = "default") -> Deployment:
        """The live :class:`Deployment` for ``name`` (gateway hook)."""
        return self._deployment(name)

    def _deployment(self, name: str) -> Deployment:
        with self._registry_lock:
            deployment = self._deployments.get(name)
            if deployment is None:
                raise TrainingError(
                    f"no model deployed under {name!r}; "
                    f"deployed: {sorted(self._deployments)}"
                )
            return deployment

    def _release_version(self, digest: str) -> None:
        # registry lock held: unpin one reference; invalidate the kernel
        # only when no deployment or history entry still uses the digest
        self.cache.unpin(digest)
        if not self._digest_referenced(digest):
            self.cache.invalidate(digest)

    def _digest_referenced(self, digest: str) -> bool:
        # registry lock held
        for deployment in self._deployments.values():
            if deployment.digest == digest:
                return True
        for entries in self._history.values():
            for entry in entries:
                if entry.digest == digest:
                    return True
        return False

    # ------------------------------------------------------------------
    # Canary comparison
    # ------------------------------------------------------------------
    def _run_canary(self, live: Deployment, candidate: Deployment) -> None:
        """Shadow-score a sample through both versions; refuse on drift."""
        live_kernel = self._kernel_for(live)
        candidate_kernel = self.cache.get(candidate.digest)
        if candidate_kernel is None:
            candidate_kernel = compile_model(candidate.model)
            self.cache.put(candidate.digest, candidate_kernel)
        columns = sorted(
            set(live_kernel.required_features)
            | set(candidate_kernel.required_features)  # type: ignore[attr-defined]
        )
        frame = feature_frame(
            self.db,
            self.graph,
            columns=columns,
            fact=self.fact,
            include_target=False,
        )
        sample = {
            k: v[: self.canary_sample_rows] for k, v in frame.items()
        }
        live_scores = np.asarray(live_kernel.predict_arrays(sample))  # type: ignore[attr-defined]
        new_scores = np.asarray(candidate_kernel.predict_arrays(sample))  # type: ignore[attr-defined]
        if not np.array_equal(live_scores, new_scores):
            if live_scores.shape == new_scores.shape:
                diverging = int(np.sum(live_scores != new_scores))
            else:
                diverging = int(live_scores.size)
            with self._registry_lock:
                if not self._digest_referenced(candidate.digest):
                    self.cache.invalidate(candidate.digest)
            raise CanaryParityError(
                f"canary refused for {candidate.name!r}: candidate "
                f"{candidate.digest[:12]} diverges from live "
                f"{live.digest[:12]} on {diverging} of {live_scores.size} "
                f"sampled rows (pass force=True to promote anyway)",
                live_digest=live.digest,
                candidate_digest=candidate.digest,
                diverging_rows=diverging,
            )

    # ------------------------------------------------------------------
    # Compiled-kernel access
    # ------------------------------------------------------------------
    def compiled(self, name: str = "default") -> CompiledModel:
        """The warm compiled kernel for ``name`` (compiling on miss)."""
        return self._kernel_for(self._deployment(name))

    def _kernel_for(self, deployment: Deployment) -> CompiledModel:
        kernel = self.cache.get(deployment.digest)
        if kernel is None:
            kernel = compile_model(deployment.model)
            self.cache.put(deployment.digest, kernel)
        return kernel  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_frame(
        self,
        features: Mapping[str, np.ndarray],
        name: str = "default",
    ) -> np.ndarray:
        """Score a prepared fact-aligned feature frame."""
        return self.compiled(name).predict_arrays(dict(features))

    def score_all(
        self,
        name: str = "default",
        batch_rows: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> np.ndarray:
        """Score every fact row with the compiled kernel.

        The feature frame is built once (narrow N-to-1 joins only), then
        chunked into ``batch_rows`` slices scored through the PR-5 query
        scheduler.  Results are reassembled in fact order; worker count
        never changes the output bits because each chunk is independent
        pure-numpy work.
        """
        kernel = self.compiled(name)
        frame = feature_frame(
            self.db,
            self.graph,
            columns=list(kernel.required_features),
            fact=self.fact,
            include_target=False,
        )
        n = len(next(iter(frame.values()))) if frame else 0
        if n == 0:
            return np.zeros(0)
        chunk = int(batch_rows or DEFAULT_BATCH_ROWS)
        resolved = self._resolved_workers(workers)
        starts = list(range(0, n, chunk))
        if len(starts) <= 1 or resolved <= 1:
            return np.asarray(kernel.predict_arrays(dict(frame)))

        def score_slice(lo: int, hi: int):
            piece = {k: v[lo:hi] for k, v in frame.items()}
            return kernel.predict_arrays(piece)

        scheduler = QueryScheduler(num_workers=resolved)
        for lo in starts:
            hi = min(lo + chunk, n)
            scheduler.submit(
                lambda lo=lo, hi=hi: score_slice(lo, hi),
                label=f"score[{lo}:{hi}]",
            )
        report = scheduler.run()
        pieces = report.results()
        return np.concatenate([np.asarray(p) for p in pieces])

    def score_batches(
        self,
        frames: Sequence[Mapping[str, np.ndarray]],
        name: str = "default",
        workers: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Score many independent feature frames, fanned out over the
        scheduler.  Output order matches input order regardless of the
        worker count."""
        kernel = self.compiled(name)
        resolved = self._resolved_workers(workers)
        if resolved <= 1 or len(frames) <= 1:
            return [np.asarray(kernel.predict_arrays(dict(f))) for f in frames]
        scheduler = QueryScheduler(num_workers=resolved)
        for i, frame in enumerate(frames):
            scheduler.submit(
                lambda frame=frame: kernel.predict_arrays(dict(frame)),
                label=f"batch[{i}]",
            )
        report = scheduler.run()
        return [np.asarray(r) for r in report.results()]

    def score_sql(self, name: str = "default") -> np.ndarray:
        """Score every fact row by pushing the model into the backend as
        a nested ``CASE WHEN`` expression — bit-identical to the compiled
        path on every supported loss.

        Backend failures surface as the serving taxonomy
        (:class:`TransientServingError` / :class:`ServingBackendError`),
        never as raw driver or :class:`BackendError` exceptions.
        """
        deployment = self._deployment(name)
        with self._wrap_serving_faults("score_sql"):
            return sql_scores(
                self.db,
                self.graph,
                deployment.model,
                fact=self.fact,
                tag="serve_sql",
            )

    def score_key(
        self,
        keys: Mapping[str, object],
        name: str = "default",
        extra_columns: Sequence[str] = (),
    ):
        """The "score user id X" path: semi-join the normalized schema on
        a fact-key predicate and score only the matching rows."""
        deployment = self._deployment(name)
        with self._wrap_serving_faults("score_key"):
            return score_by_key(
                self.db,
                self.graph,
                deployment.model,
                dict(keys),
                fact=self.fact,
                extra_columns=tuple(extra_columns),
                tag="serve_key",
            )

    @contextlib.contextmanager
    def _wrap_serving_faults(self, where: str) -> Iterator[None]:
        """Map backend/driver errors crossing the serving boundary into
        the :class:`ServingError` taxonomy, counted for :meth:`stats`.

        Configuration errors (:class:`TrainingError` — unknown column,
        nothing deployed) are not backend faults and propagate as-is.
        """
        try:
            yield
        except ServingError:
            raise
        except TransientBackendError as exc:
            with self._registry_lock:
                self._serving_faults["transient"] += 1
            raise TransientServingError(
                f"{where} failed transiently: {exc}"
            ) from exc
        except TrainingError:
            raise
        except (BackendError, SQLError) as exc:
            with self._registry_lock:
                self._serving_faults["permanent"] += 1
            raise ServingBackendError(f"{where} failed: {exc}") from exc

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Cache census plus the deployment table (observability hook).

        Includes the per-name version history, the serving-fault counts
        (transient vs permanent backend failures seen by
        ``score_sql``/``score_key``), and — when the bound connector
        carries fault-tolerance proxies (``connect(..., chaos=...,
        retry=...)``) — their retry and chaos-injection counters, so a
        serving dashboard sees fault pressure without reaching into
        backend internals.
        """
        out: Dict[str, object] = dict(self.cache.stats())
        with self._registry_lock:
            out["deployments"] = {
                name: d.digest for name, d in self._deployments.items()
            }
            out["history"] = {
                name: [d.digest for d in entries]
                for name, entries in self._history.items()
                if entries
            }
            out["serving_faults"] = dict(self._serving_faults)
        retry_census = getattr(self.db, "retry_census", None)
        if retry_census is not None:
            out["retry"] = retry_census.snapshot()
        chaos_census = getattr(self.db, "chaos_census", None)
        if chaos_census is not None:
            out["chaos"] = chaos_census.snapshot()
        return out

    @staticmethod
    def _resolved_workers(workers: Optional[int]) -> int:
        if workers is not None:
            return max(1, int(workers))
        return TrainParams.from_dict({}).resolved_workers()
