"""Batch prediction service over the normalized schema.

The ROADMAP's north-star is serving "millions of users" without ever
materializing R⋈.  :class:`PredictionService` is the serving half of that
promise: models are *deployed* under a name, versioned by the sha256
digest of their canonical JSON dump, compiled once into flat numpy
kernels (:mod:`repro.core.compile`) held in a warm LRU cache, and scored
three ways —

* :meth:`score_all` / :meth:`score_frame` — the compiled numpy kernel
  over fact-aligned :func:`repro.core.predict.feature_frame` batches;
* :meth:`score_sql` — the model pushed into the backend as one nested
  ``CASE WHEN`` expression (:mod:`repro.core.sql_score`);
* :meth:`score_key` — the "score user id X" path: a semi-join over the
  N-to-1 join tree restricted by a key predicate, no denormalization.

Redeploying a name with a retrained model mints a new digest and evicts
the stale compiled kernel, so a rolling update can never serve the old
version.  Batch scoring fans out over the PR-5 query scheduler when
``JOINBOOST_NUM_WORKERS`` (or an explicit ``workers=``) asks for it; the
kernels are pure numpy, so worker count never changes the bits.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.compile import CompiledModel, compile_model
from repro.core.params import TrainParams
from repro.core.predict import feature_frame
from repro.core.serialize import model_digest
from repro.core.sql_score import score_by_key, sql_scores
from repro.engine.scheduler import QueryScheduler
from repro.exceptions import TrainingError
from repro.joingraph.graph import JoinGraph
from repro.serve.cache import CompiledModelCache

#: default fact-row chunk for batched scoring; small enough to overlap,
#: large enough that per-chunk dispatch overhead disappears.
DEFAULT_BATCH_ROWS = 65_536


@dataclasses.dataclass
class Deployment:
    """A named, versioned model the service will score with."""

    name: str
    digest: str
    model: object
    deployed_at: float


class PredictionService:
    """Digest-versioned batch scorer bound to one database + join graph."""

    def __init__(
        self,
        db: object,
        graph: JoinGraph,
        fact: Optional[str] = None,
        cache_size: int = 8,
    ):
        self.db = db
        self.graph = graph
        self.fact = fact or graph.target_relation
        self.cache = CompiledModelCache(max_entries=cache_size)
        self._deployments: Dict[str, Deployment] = {}

    # ------------------------------------------------------------------
    # Deployment / versioning
    # ------------------------------------------------------------------
    def deploy(self, model: object, name: str = "default") -> str:
        """Register ``model`` under ``name``; returns its version digest.

        Redeploying a name with a different model evicts the previous
        version's compiled kernel from the warm cache (stale-version
        eviction), so subsequent scores can only come from the new bits.
        """
        digest = model_digest(model)
        previous = self._deployments.get(name)
        if previous is not None and previous.digest != digest:
            self.cache.invalidate(previous.digest)
        self._deployments[name] = Deployment(
            name=name, digest=digest, model=model, deployed_at=time.time()
        )
        return digest

    def undeploy(self, name: str = "default") -> None:
        deployment = self._deployment(name)
        del self._deployments[name]
        self.cache.invalidate(deployment.digest)

    def version(self, name: str = "default") -> str:
        """The digest currently served under ``name``."""
        return self._deployment(name).digest

    def deployments(self) -> List[Deployment]:
        return list(self._deployments.values())

    def _deployment(self, name: str) -> Deployment:
        deployment = self._deployments.get(name)
        if deployment is None:
            raise TrainingError(
                f"no model deployed under {name!r}; "
                f"deployed: {sorted(self._deployments)}"
            )
        return deployment

    def compiled(self, name: str = "default") -> CompiledModel:
        """The warm compiled kernel for ``name`` (compiling on miss)."""
        deployment = self._deployment(name)
        kernel = self.cache.get(deployment.digest)
        if kernel is None:
            kernel = compile_model(deployment.model)
            self.cache.put(deployment.digest, kernel)
        return kernel  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_frame(
        self,
        features: Mapping[str, np.ndarray],
        name: str = "default",
    ) -> np.ndarray:
        """Score a prepared fact-aligned feature frame."""
        return self.compiled(name).predict_arrays(dict(features))

    def score_all(
        self,
        name: str = "default",
        batch_rows: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> np.ndarray:
        """Score every fact row with the compiled kernel.

        The feature frame is built once (narrow N-to-1 joins only), then
        chunked into ``batch_rows`` slices scored through the PR-5 query
        scheduler.  Results are reassembled in fact order; worker count
        never changes the output bits because each chunk is independent
        pure-numpy work.
        """
        kernel = self.compiled(name)
        frame = feature_frame(
            self.db,
            self.graph,
            columns=list(kernel.required_features),
            fact=self.fact,
            include_target=False,
        )
        n = len(next(iter(frame.values()))) if frame else 0
        if n == 0:
            return np.zeros(0)
        chunk = int(batch_rows or DEFAULT_BATCH_ROWS)
        resolved = self._resolved_workers(workers)
        starts = list(range(0, n, chunk))
        if len(starts) <= 1 or resolved <= 1:
            return np.asarray(kernel.predict_arrays(dict(frame)))

        def score_slice(lo: int, hi: int):
            piece = {k: v[lo:hi] for k, v in frame.items()}
            return kernel.predict_arrays(piece)

        scheduler = QueryScheduler(num_workers=resolved)
        for lo in starts:
            hi = min(lo + chunk, n)
            scheduler.submit(
                lambda lo=lo, hi=hi: score_slice(lo, hi),
                label=f"score[{lo}:{hi}]",
            )
        report = scheduler.run()
        pieces = report.results()
        return np.concatenate([np.asarray(p) for p in pieces])

    def score_batches(
        self,
        frames: Sequence[Mapping[str, np.ndarray]],
        name: str = "default",
        workers: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Score many independent feature frames, fanned out over the
        scheduler.  Output order matches input order regardless of the
        worker count."""
        kernel = self.compiled(name)
        resolved = self._resolved_workers(workers)
        if resolved <= 1 or len(frames) <= 1:
            return [np.asarray(kernel.predict_arrays(dict(f))) for f in frames]
        scheduler = QueryScheduler(num_workers=resolved)
        for i, frame in enumerate(frames):
            scheduler.submit(
                lambda frame=frame: kernel.predict_arrays(dict(frame)),
                label=f"batch[{i}]",
            )
        report = scheduler.run()
        return [np.asarray(r) for r in report.results()]

    def score_sql(self, name: str = "default") -> np.ndarray:
        """Score every fact row by pushing the model into the backend as
        a nested ``CASE WHEN`` expression — bit-identical to the compiled
        path on every supported loss."""
        deployment = self._deployment(name)
        return sql_scores(self.db, self.graph, deployment.model, fact=self.fact)

    def score_key(
        self,
        keys: Mapping[str, object],
        name: str = "default",
        extra_columns: Sequence[str] = (),
    ):
        """The "score user id X" path: semi-join the normalized schema on
        a fact-key predicate and score only the matching rows."""
        deployment = self._deployment(name)
        return score_by_key(
            self.db,
            self.graph,
            deployment.model,
            dict(keys),
            fact=self.fact,
            extra_columns=tuple(extra_columns),
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Cache census plus the deployment table (observability hook).

        When the bound connector carries fault-tolerance proxies
        (``connect(..., chaos=..., retry=...)``), their retry and
        chaos-injection counters are surfaced too, so a serving
        dashboard sees transient-fault pressure without reaching into
        backend internals.
        """
        out: Dict[str, object] = dict(self.cache.stats())
        out["deployments"] = {
            name: d.digest for name, d in self._deployments.items()
        }
        retry_census = getattr(self.db, "retry_census", None)
        if retry_census is not None:
            out["retry"] = retry_census.snapshot()
        chaos_census = getattr(self.db, "chaos_census", None)
        if chaos_census is not None:
            out["chaos"] = chaos_census.snapshot()
        return out

    @staticmethod
    def _resolved_workers(workers: Optional[int]) -> int:
        if workers is not None:
            return max(1, int(workers))
        return TrainParams.from_dict({}).resolved_workers()
