"""Model serving: versioned deploys + warm compiled scoring + gateway.

See :mod:`repro.serve.service` for the batch scorer (deploy, canary,
rollback), :mod:`repro.serve.cache` for the compiled-model LRU with
version pinning, :mod:`repro.serve.breaker` for the per-path circuit
breakers, and :mod:`repro.serve.gateway` for the resilient front door
(deadlines, admission control, degradation ladder).
"""

from repro.serve.breaker import (
    CLOSED,
    DEFAULT_BREAKER_POLICY,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.serve.cache import CompiledModelCache
from repro.serve.gateway import (
    DEADLINE_ENV,
    DEFAULT_DEADLINE_SECONDS,
    GatewayResponse,
    ServingGateway,
)
from repro.serve.service import (
    DEFAULT_BATCH_ROWS,
    DEFAULT_RETAINED_VERSIONS,
    Deployment,
    PredictionService,
)

__all__ = [
    "BreakerPolicy",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "DEFAULT_BREAKER_POLICY",
    "CompiledModelCache",
    "DEADLINE_ENV",
    "DEFAULT_DEADLINE_SECONDS",
    "DEFAULT_BATCH_ROWS",
    "DEFAULT_RETAINED_VERSIONS",
    "Deployment",
    "GatewayResponse",
    "PredictionService",
    "ServingGateway",
]
