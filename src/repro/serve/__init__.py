"""Model serving: digest-versioned deployment + warm compiled scoring.

See :mod:`repro.serve.service` for the batch scorer and
:mod:`repro.serve.cache` for the compiled-model LRU.
"""

from repro.serve.cache import CompiledModelCache
from repro.serve.service import DEFAULT_BATCH_ROWS, Deployment, PredictionService

__all__ = [
    "CompiledModelCache",
    "DEFAULT_BATCH_ROWS",
    "Deployment",
    "PredictionService",
]
