"""Warm compiled-model cache for the prediction service.

Compiling a model (flattening trees into contiguous arrays) is cheap but
not free, and a serving process scores the same deployed version over and
over.  The cache keys compiled models on the *serialized-model digest* —
the sha256 of the canonical JSON dump — so two deployments of the same
logical model share one compiled artifact, while any retrain produces a
new digest and never aliases a stale kernel.

The cache is LRU-bounded by entry count and keeps census counters
(hits, misses, stores, invalidations, evictions) in the same style as
:class:`repro.engine.encodings.EncodingCache`, surfacing in
:meth:`repro.serve.service.PredictionService.stats`.

Versions the service retains (the live deployment and its bounded
rollback history) are *pinned*: LRU eviction skips pinned digests, so a
redeploy keeps the previous kernel warm and ``rollback`` is O(1) — no
recompilation on the hot path.  Pins are reference counts (the same
digest may be live under one name and history under another); an entry
whose pins drop to zero rejoins normal LRU order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional


class CompiledModelCache:
    """Digest-keyed LRU of compiled models with census counters."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Optional[object]:
        """The compiled model for ``digest``, or None (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    def put(self, digest: str, compiled: object) -> None:
        """Store a compiled model, evicting LRU *unpinned* entries beyond
        capacity.

        Pinned entries (retained versions) are never evicted; when every
        entry is pinned the cache temporarily overflows ``max_entries``
        rather than drop a version the service promised to keep warm.
        """
        with self._lock:
            self._entries[digest] = compiled
            self._entries.move_to_end(digest)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                victim = next(
                    (
                        key
                        for key in self._entries
                        if self._pins.get(key, 0) == 0
                    ),
                    None,
                )
                if victim is None:
                    break
                del self._entries[victim]
                self.evictions += 1

    def pin(self, digest: str) -> None:
        """Protect ``digest`` from LRU eviction (reference counted).

        Pinning does not require the entry to exist yet — the service
        pins a version at deploy time and the kernel may only compile on
        first score.
        """
        with self._lock:
            self._pins[digest] = self._pins.get(digest, 0) + 1

    def unpin(self, digest: str) -> None:
        """Drop one pin reference; at zero the entry rejoins LRU order."""
        with self._lock:
            count = self._pins.get(digest, 0) - 1
            if count > 0:
                self._pins[digest] = count
            else:
                self._pins.pop(digest, None)

    def pinned(self, digest: str) -> bool:
        """Whether ``digest`` currently holds at least one pin."""
        with self._lock:
            return self._pins.get(digest, 0) > 0

    def invalidate(self, digest: str) -> bool:
        """Drop a stale version (e.g. after redeploy); True if present.

        Explicit invalidation wins over pinning — the service calls this
        only once a version has left the deployment registry and its
        retained history.
        """
        with self._lock:
            if digest in self._entries:
                del self._entries[digest]
                self.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Census snapshot (PR-4 encoding-cache style)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "pinned": len(self._pins),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }
