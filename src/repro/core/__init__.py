"""Core ML: factorized decision trees, random forests, gradient boosting."""

from repro.core.params import TrainParams
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.core.trainer import DecisionTreeTrainer
from repro.core.boosting import GradientBoostingModel, train_gradient_boosting
from repro.core.forest import RandomForestModel, train_random_forest
from repro.core.predict import predict_join, rmse_on_join, feature_frame

__all__ = [
    "TrainParams",
    "TreeNode",
    "DecisionTreeModel",
    "DecisionTreeTrainer",
    "GradientBoostingModel",
    "train_gradient_boosting",
    "RandomForestModel",
    "train_random_forest",
    "predict_join",
    "rmse_on_join",
    "feature_frame",
]
