"""Random forests over joins (bagging + feature sampling, Section 5.5.2).

Each tree trains on a data sample and a feature sample.  Data sampling
uses the snowflake fast path — a uniform row sample of the fact table is a
uniform sample of R⋈ because they are 1-1 — falling back to ancestral
sampling for general acyclic graphs.  Trees are independent, which is what
the paper's inter-query parallelism exploits (35% faster); the scheduler
integration lives in the Figure 18 bench.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TrainingError
from repro.core.params import TrainParams
from repro.core.split import ClassificationCriterion, VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.tree import DecisionTreeModel
from repro.factorize.executor import (
    Factorizer,
    configure_encoding_cache,
    prepare_training_paths,
)
from repro.factorize.sampling import ancestral_sample, sample_fact_table
from repro.joingraph.graph import JoinGraph
from repro.semiring.classcount import ClassCountSemiRing
from repro.semiring.losses import SoftmaxLoss
from repro.semiring.variance import VarianceSemiRing


class RandomForestModel:
    """Bagged trees; predictions average (regression) or vote
    (classification)."""

    def __init__(self, trees: List[DecisionTreeModel], classification: bool,
                 num_classes: int = 0, history: Optional[List[float]] = None):
        self.trees = trees
        self.classification = classification
        self.num_classes = num_classes
        #: per-tree training seconds (benches read this)
        self.history = history if history is not None else []

    @property
    def required_features(self) -> List[str]:
        seen: List[str] = []
        for tree in self.trees:
            for _, column in tree.referenced_attributes():
                if column not in seen:
                    seen.append(column)
        return seen

    def predict_arrays(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        if not self.trees:
            raise TrainingError("forest has no trees")
        stacked = np.stack([t.predict_arrays(features) for t in self.trees])
        if not self.classification:
            return stacked.mean(axis=0)
        votes = np.zeros((stacked.shape[1], self.num_classes))
        for row in stacked:
            for k in range(self.num_classes):
                votes[:, k] += row == k
        return votes.argmax(axis=1).astype(np.float64)


def train_random_forest(
    db,
    graph: JoinGraph,
    params: Optional[dict] = None,
    **overrides,
) -> RandomForestModel:
    """Train a random forest over the join graph.

    ``objective='regression'`` (variance criterion) or
    ``objective='multiclass'``/``'gini'``-style classification via the
    class-count semi-ring.
    """
    train_params = TrainParams.from_dict(params, **overrides)
    graph.validate()
    configure_encoding_cache(db, train_params.encoding_cache)
    classification = train_params.objective.lower() in (
        "multiclass", "softmax", "binary", "classification",
    )
    fact = graph.target_relation
    y = graph.target_column
    rng = np.random.default_rng(train_params.seed)

    from repro.core.boosting import is_snowflake

    snowflake = is_snowflake(graph, fact)
    if classification:
        ring = ClassCountSemiRing(train_params.num_class)
        criterion = ClassificationCriterion(train_params.num_class, "gini")
    else:
        ring = VarianceSemiRing()
        criterion = VarianceCriterion()

    trees: List[DecisionTreeModel] = []
    history: List[float] = []
    all_features = graph.all_features()
    for _ in range(train_params.num_iterations):
        start = time.perf_counter()
        factorizer = Factorizer(db, graph, ring)
        sampled_fact = _sampled_fact_table(
            db, graph, fact, train_params, rng, snowflake
        )
        factorizer.lift(source_table=sampled_fact)
        prepare_training_paths(db, graph, factorizer)

        feature_subset = _feature_sample(all_features, train_params, rng)
        trainer = DecisionTreeTrainer(db, graph, factorizer, criterion, train_params)
        tree = trainer.train(feature_subset=feature_subset)
        trees.append(tree)
        factorizer.cleanup()
        if sampled_fact != fact:
            db.drop_table(sampled_fact, if_exists=True)
        history.append(time.perf_counter() - start)
    return RandomForestModel(
        trees, classification,
        num_classes=train_params.num_class if classification else 0,
        history=history,
    )


def _sampled_fact_table(
    db, graph: JoinGraph, fact: str, params: TrainParams,
    rng: np.random.Generator, snowflake: bool,
) -> str:
    """Materialize the per-tree data sample as a temp fact table."""
    if params.subsample >= 1.0:
        return fact
    if snowflake:
        indexes = sample_fact_table(db, fact, params.subsample, rng)
    else:
        n = db.table(fact).num_rows()
        size = max(1, int(round(n * params.subsample)))
        draws = ancestral_sample(db, graph, size, rng, root=fact)
        indexes = draws[fact]
    table = db.table(fact)
    data = {
        name: table.column(name).values[indexes]
        for name in table.column_names()
    }
    sampled_name = db.temp_name(f"sample_{fact}")
    db.create_table(sampled_name, data)
    return sampled_name


def _feature_sample(all_features, params: TrainParams, rng: np.random.Generator):
    if params.colsample >= 1.0 or len(all_features) <= 1:
        return None
    size = max(1, int(round(len(all_features) * params.colsample)))
    picks = rng.choice(len(all_features), size=size, replace=False)
    return [all_features[i] for i in sorted(picks)]
