"""Random forests over joins (bagging + feature sampling, Section 5.5.2).

Each tree trains on a data sample and a feature sample.  Data sampling
uses the snowflake fast path — a uniform row sample of the fact table is a
uniform sample of R⋈ because they are 1-1 — falling back to ancestral
sampling for general acyclic graphs.  Trees are independent, which is what
the paper's inter-query parallelism exploits (~35% faster random forests,
Figure 18): with ``num_workers > 1`` and a concurrency-safe backend,
whole trees run on the :class:`~repro.engine.scheduler.QueryScheduler`
worker pool.  Every random draw (row sample, feature sample) is taken
*serially* up front in iteration order, so the forest is tree-for-tree
identical to ``num_workers=1`` regardless of which worker trains which
tree; inner trainers run serial (the tree is the unit of parallelism —
nesting pools would oversubscribe the backend).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple, cast

import numpy as np

from repro.exceptions import TrainingError
from repro.core.frontier import concurrent_read_ok
from repro.core.params import TrainParams
from repro.core.split import ClassificationCriterion, VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.tree import DecisionTreeModel
from repro.factorize.executor import (
    Factorizer,
    configure_encoding_cache,
    prepare_training_paths,
)
from repro.factorize.sampling import ancestral_sample, sample_fact_table
from repro.joingraph.graph import JoinGraph
from repro.semiring.classcount import ClassCountSemiRing
from repro.semiring.losses import SoftmaxLoss
from repro.semiring.variance import VarianceSemiRing


class RandomForestModel:
    """Bagged trees; predictions average (regression) or vote
    (classification)."""

    def __init__(self, trees: List[DecisionTreeModel], classification: bool,
                 num_classes: int = 0, history: Optional[List[float]] = None):
        self.trees = trees
        self.classification = classification
        self.num_classes = num_classes
        #: per-tree training seconds (benches read this)
        self.history = history if history is not None else []

    @property
    def required_features(self) -> List[str]:
        seen: List[str] = []
        for tree in self.trees:
            for _, column in tree.referenced_attributes():
                if column not in seen:
                    seen.append(column)
        return seen

    def predict_arrays(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        if not self.trees:
            raise TrainingError("forest has no trees")
        stacked = np.stack([t.predict_arrays(features) for t in self.trees])
        if not self.classification:
            return stacked.mean(axis=0)
        votes = np.zeros((stacked.shape[1], self.num_classes))
        for row in stacked:
            for k in range(self.num_classes):
                votes[:, k] += row == k
        return votes.argmax(axis=1).astype(np.float64)


def train_random_forest(
    db,
    graph: JoinGraph,
    params: Optional[dict] = None,
    **overrides,
) -> RandomForestModel:
    """Train a random forest over the join graph.

    ``objective='regression'`` (variance criterion) or
    ``objective='multiclass'``/``'gini'``-style classification via the
    class-count semi-ring.
    """
    train_params = TrainParams.from_dict(params, **overrides)
    graph.validate()
    configure_encoding_cache(db, train_params.encoding_cache)
    classification = train_params.objective.lower() in (
        "multiclass", "softmax", "binary", "classification",
    )
    fact = graph.target_relation
    y = graph.target_column
    rng = np.random.default_rng(train_params.seed)

    from repro.core.boosting import is_snowflake

    snowflake = is_snowflake(graph, fact)
    if classification:
        ring = ClassCountSemiRing(train_params.num_class)
        criterion = ClassificationCriterion(train_params.num_class, "gini")
    else:
        ring = VarianceSemiRing()
        criterion = VarianceCriterion()

    all_features = graph.all_features()
    workers = min(train_params.resolved_workers(), train_params.num_iterations)

    def train_one(sampled_fact: str, feature_subset, tree_params: TrainParams):
        start = time.perf_counter()
        factorizer = Factorizer(db, graph, ring)
        factorizer.lift(source_table=sampled_fact)
        prepare_training_paths(db, graph, factorizer)
        trainer = DecisionTreeTrainer(db, graph, factorizer, criterion, tree_params)
        try:
            tree = trainer.train(feature_subset=feature_subset)
        finally:
            factorizer.cleanup()
            if sampled_fact != fact:
                db.drop_table(sampled_fact, if_exists=True)
        return tree, time.perf_counter() - start

    if workers > 1 and concurrent_read_ok(db):
        trees, history = _train_trees_parallel(
            db, graph, fact, train_params, rng, snowflake, all_features,
            workers, train_one,
        )
    else:
        trees, history = [], []
        for _ in range(train_params.num_iterations):
            sampled_fact = _sampled_fact_table(
                db, graph, fact, train_params, rng, snowflake
            )
            feature_subset = _feature_sample(all_features, train_params, rng)
            tree, seconds = train_one(sampled_fact, feature_subset, train_params)
            trees.append(tree)
            history.append(seconds)
    return RandomForestModel(
        trees, classification,
        num_classes=train_params.num_class if classification else 0,
        history=history,
    )


def _train_trees_parallel(
    db,
    graph: JoinGraph,
    fact: str,
    params: TrainParams,
    rng: np.random.Generator,
    snowflake: bool,
    all_features: Sequence[Tuple[str, str]],
    workers: int,
    train_one,
) -> Tuple[List[DecisionTreeModel], List[float]]:
    """Whole trees on the scheduler's worker pool (Section 5.5.3).

    Random state is consumed serially up front — the k-th task trains on
    exactly the sample the k-th serial iteration would have drawn — and
    scheduler results come back in submission order, so the forest is
    identical to the serial loop tree for tree.  Only the *draws*
    (row-index arrays, feature subsets) happen up front; each task
    materializes and drops its own sampled fact table, so peak sample
    storage is bounded by in-flight workers, not forest size.
    """
    from repro.engine.scheduler import QueryScheduler

    # Every random draw happens on this thread, in iteration order.
    plans = []
    for _ in range(params.num_iterations):
        indexes = _sample_indexes(db, graph, fact, params, rng, snowflake)
        plans.append((indexes, _feature_sample(all_features, params, rng)))
    # The tree is the unit of parallelism: inner trainers stay serial.
    tree_params = dataclasses.replace(params, num_workers=1)
    scheduler = QueryScheduler(num_workers=workers)
    for k, (indexes, feature_subset) in enumerate(plans):
        scheduler.submit(
            lambda i=indexes, f=feature_subset: train_one(
                _materialize_sample(db, fact, i), f, tree_params
            ),
            label=f"tree:{k}",
        )
    report = scheduler.run()
    trees: List[DecisionTreeModel] = []
    history: List[float] = []
    for tree, seconds in cast(
        List[Tuple[DecisionTreeModel, float]], report.results()
    ):
        trees.append(tree)
        history.append(seconds)
    return trees, history


def _sample_indexes(
    db, graph: JoinGraph, fact: str, params: TrainParams,
    rng: np.random.Generator, snowflake: bool,
) -> Optional[np.ndarray]:
    """Draw one tree's fact-row sample (None = train on the full fact).

    This is the only RNG-consuming half of sampling — the parallel
    forest calls it serially per tree so random state is deterministic,
    then materializes on the workers."""
    if params.subsample >= 1.0:
        return None
    if snowflake:
        return sample_fact_table(db, fact, params.subsample, rng)
    n = db.table(fact).num_rows()
    size = max(1, int(round(n * params.subsample)))
    draws = ancestral_sample(db, graph, size, rng, root=fact)
    return draws[fact]


def _materialize_sample(db, fact: str, indexes: Optional[np.ndarray]) -> str:
    """Gather the drawn rows into a temp fact table (RNG-free)."""
    if indexes is None:
        return fact
    table = db.table(fact)
    data = {
        name: table.column(name).values[indexes]
        for name in table.column_names()
    }
    sampled_name = db.temp_name(f"sample_{fact}")
    db.create_table(sampled_name, data)
    return sampled_name


def _sampled_fact_table(
    db, graph: JoinGraph, fact: str, params: TrainParams,
    rng: np.random.Generator, snowflake: bool,
) -> str:
    """Materialize the per-tree data sample as a temp fact table."""
    return _materialize_sample(
        db, fact, _sample_indexes(db, graph, fact, params, rng, snowflake)
    )


def _feature_sample(all_features, params: TrainParams, rng: np.random.Generator):
    if params.colsample >= 1.0 or len(all_features) <= 1:
        return None
    size = max(1, int(round(len(all_features) * params.colsample)))
    picks = rng.choice(len(all_features), size=size, replace=False)
    return [all_features[i] for i in sorted(picks)]
