"""Batched frontier split evaluation — one split query per relation.

The naive trainer issues one best-split query per (leaf, feature): with L
open leaves and F features that is L x F queries per evaluation round,
the query blow-up the paper's batching optimization (Section 5, Figure 9)
exists to eliminate.  The :class:`FrontierEvaluator` collapses a round to
one query per relation:

1. **Label.**  Each frontier leaf's selection sigma is rewritten into a
   fact-table-only condition (the Section 4.1 semi-join movement already
   used by residual updates), and one pass over the lifted fact table
   materializes ``CASE WHEN sigma_1 THEN id_1 WHEN sigma_2 THEN id_2 ...
   END AS jb_leaf`` — rows outside every frontier leaf label NULL.

2. **Carry.**  For each relation R holding candidate features, a
   multi-group absorption (:meth:`Factorizer.multi_absorption`) routes
   messages from the labeled fact toward R with ``jb_leaf`` as an extra
   grouping column; subtrees that do not contain the fact reuse the
   ordinary cached messages.

3. **Fuse.**  All of R's features become branches of a single ``UNION
   ALL`` query, each grouped by ``(jb_leaf, feature value)`` with a
   discriminator literal, so the whole frontier's aggregates for R arrive
   in one result set.

4. **Scan.**  Per (leaf, feature) slices run through the same client-side
   prefix-scan kernel as the per-leaf path
   (:func:`~repro.core.split.best_split_from_aggregates`), and the winner
   per leaf is reduced in the caller's feature order — so batched and
   per-leaf modes choose identical splits, tie for tie.

Batching requires leaf membership to be a *function of the fact row*,
i.e. a snowflake schema (fact 1-1 with the join result).  Galaxy/CPT
trees, outer-join factorizers and backends without ``UNION ALL`` fall
back to the per-leaf path; ``split_batching="off"`` forces it.

Two label strategies exist (``frontier_state``):

* ``"incremental"`` (default) — a persistent leaf-membership column is
  maintained on the lifted fact by :class:`FrontierState`: one cheap
  root pass per tree, then two depth-1 ``UPDATE``\\ s per committed
  split relabel only the split leaf's rows.  No per-round full-fact
  copy, no re-evaluation of ancestor sigmas; carry messages become
  cacheable under a leaf-epoch key, and the final labels drive the
  residual update (one ``CASE jb_leaf`` pass instead of per-leaf
  semi-join scans).
* ``"rebuild"`` — the pre-incremental behavior: each round materializes
  a labeled copy of the fact with a ``CASE`` over every frontier leaf's
  full-path sigma, and drops it afterwards.

Incremental mode degrades to rebuild (never errors) when the backend
lacks predicated in-place ``UPDATE`` (``Capabilities.narrow_update``),
when the tree carries base predicates, or when a delta update fails
mid-training.

With ``num_workers > 1`` (and a backend declaring
``Capabilities.concurrent_read``) each round's per-relation work — the
carry-message builds and the fused split query — runs as a two-node
chain on the :class:`~repro.engine.scheduler.QueryScheduler` worker
pool, the paper's Section 5.5.3 inter-query parallelism executed for
real rather than modelled; results merge deterministically in relation
order, so the grown tree is bit-identical to the serial path.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.residual import leaf_fact_condition
from repro.core.split import (
    Criterion,
    SplitCandidate,
    SplitFinder,
    best_split_from_aggregates,
)
from repro.core.tree import TreeNode
from repro.exceptions import (
    ExecutionError,
    JoinGraphError,
    ReproError,
    TrainingError,
)
from repro.factorize.executor import Factorizer, MultiAbsorption
from repro.factorize.predicates import PredicateMap
from repro.joingraph.graph import JoinGraph
from repro.storage.column import Column, ColumnType

#: the leaf-membership grouping column added to the labeled fact table
LEAF_COLUMN = "jb_leaf"

#: physical names for persistent (incremental) label columns — distinct
#: from the bare grouping alias so several trainers can share one lifted
#: fact (multiclass) without tripping the user-column collision veto
_STATE_COLUMNS = itertools.count(1)


def concurrent_read_veto(db) -> Optional[str]:
    """Why the scheduler must NOT fan read queries out on this backend
    (``None`` = safe).  Missing capabilities follow the permissive idiom
    the training stack uses everywhere (a bare embedded ``Database`` has
    the audited read path); connectors opt out via
    ``Capabilities.concurrent_read=False`` — and the reason string is
    what ``frontier_census["parallel_fallback_reason"]`` surfaces, so
    the fallback is never silent."""
    capabilities = getattr(db, "capabilities", None)
    if capabilities is None or getattr(capabilities, "concurrent_read", True):
        return None
    return (
        f"backend dialect {getattr(db, 'dialect', 'unknown')!r} declares "
        "Capabilities.concurrent_read=False"
    )


def concurrent_read_ok(db) -> bool:
    """May the scheduler fan read queries out to worker threads on this
    backend?  Boolean form of :func:`concurrent_read_veto`."""
    return concurrent_read_veto(db) is None


class BatchingUnavailable(TrainingError):
    """A batched round cannot be expressed for this tree/schema (e.g. the
    semi-join predicate movement needs single-column join keys).  Auto
    mode falls back to per-leaf on exactly this error; any other failure
    inside a batched round propagates."""


def merged_predicates(base: PredicateMap, node: TreeNode) -> PredicateMap:
    """Base predicates plus the node's root-to-leaf path predicates."""
    merged: PredicateMap = {k: tuple(v) for k, v in base.items()}
    for relation, preds in node.path_predicates().items():
        merged[relation] = tuple(merged.get(relation, ())) + tuple(preds)
    return merged


class FrontierState:
    """Persistent, incrementally maintained leaf membership for one tree.

    Leaf membership over a snowflake join is monotone-refining state: a
    committed split only moves rows of the split leaf to one of its two
    children.  The state therefore keeps a physical label column on the
    lifted fact table and maintains it with narrow updates:

    * **root pass** (once per tree) — every row is labeled with the root
      node id (adding the column on first use);
    * **delta update** (per committed split) — two depth-1 ``UPDATE``
      statements relabel rows of the split leaf only, using the child's
      one-level predicate rewritten through the Section 4.1 semi-join
      movement.  Rows matching neither side (e.g. null join keys under
      an inner-join factorizer) keep the parent label and fall outside
      every ``jb_leaf IN (...)`` filter — exactly the rows the rebuild
      CASE would have labeled NULL.

    ``epoch`` counts committed splits and keys the carry-message cache;
    the census counters feed the Figure 9 bench and CI label-byte gates.
    """

    def __init__(self, db, graph: JoinGraph, factorizer: Factorizer):
        self.db = db
        self.graph = graph
        self.factorizer = factorizer
        self.column: Optional[str] = None
        self.active = False
        self.epoch = 0
        self.leaf_ids: Set[int] = set()
        self._pending_root: Optional[TreeNode] = None
        self._base_blocked = False
        # census
        self.root_label_passes = 0
        self.delta_label_updates = 0
        self.label_rows_written = 0
        self.label_bytes_written = 0

    # ------------------------------------------------------------------
    def begin_tree(
        self, root: TreeNode, base_predicates: Optional[PredicateMap]
    ) -> None:
        """A new tree starts: previous labels are stale until re-rooted."""
        self.active = False
        self._pending_root = root
        self._base_blocked = any(
            preds for preds in (base_predicates or {}).values()
        )
        self.epoch = 0
        self.leaf_ids = set()

    def deactivate(self) -> None:
        self.active = False
        self._pending_root = None

    # ------------------------------------------------------------------
    def ensure(self, fact: str) -> bool:
        """Labels current?  Runs the root pass when a tree is pending."""
        if self.active:
            return True
        if self._pending_root is None or self._base_blocked:
            # Base predicates precondition the whole tree (bagging by
            # predicate); the rebuild CASE encodes them, a blanket root
            # label would not — so such trees use rebuild labels.
            return False
        root_id = self._pending_root.node_id
        table = self.factorizer.storage_table(fact)
        if not self._root_pass(table, root_id):
            return False
        self._exempt_from_encoding_cache(table)
        self._pending_root = None
        self.active = True
        self.epoch = 0
        self.leaf_ids = {root_id}
        self.root_label_passes += 1
        rows = self.db.table(table).num_rows()
        self.label_rows_written += rows
        self.label_bytes_written += 8 * rows
        return True

    def _root_pass(self, table: str, root_id: int) -> bool:
        names = {c.lower() for c in self.db.table(table).column_names()}
        if self.column is not None and self.column in names:
            # Column survives across trees: re-rooting is one narrow pass.
            self.db.execute(
                f"UPDATE {table} SET {self.column} = {root_id}",
                tag="frontier_root",
            )
            return True
        name = f"{LEAF_COLUMN}_s{next(_STATE_COLUMNS)}"
        while name in names:  # pragma: no cover - counter names are fresh
            name = f"{LEAF_COLUMN}_s{next(_STATE_COLUMNS)}"
        try:
            self.db.execute(
                f"ALTER TABLE {table} ADD COLUMN {name} INTEGER",
                tag="frontier_root",
            )
            self.db.execute(
                f"UPDATE {table} SET {name} = {root_id}", tag="frontier_root"
            )
        except ReproError:
            # The embedded engine has no ALTER: add the column through
            # the storage layer instead (pre-filled, no second pass).
            target = self.db.table(table)
            set_column = getattr(target, "set_column", None)
            if set_column is None:
                return False
            set_column(
                Column(name, np.full(len(target), root_id, dtype=np.int64))
            )
        self.column = name
        return True

    def _exempt_from_encoding_cache(self, table: str) -> None:
        """The persistent label column churns with every committed split:
        keep it out of the encoded-key cache (delta updates stay cheap,
        and the cache spends its budget on genuinely static columns)."""
        cache = getattr(self.db, "encodings", None)
        if cache is None or self.column is None:
            return
        target = self.db.table(table)
        uid = getattr(target, "uid", None)
        if uid is not None:
            cache.mark_uncached(uid, self.column)

    # ------------------------------------------------------------------
    def apply_split(self, node: TreeNode) -> None:
        """Relabel the split leaf's rows with two depth-1 narrow updates.

        Each child's predicate is rewritten fact-side on its own (depth
        1) — ancestor sigmas are already encoded in ``jb_leaf = parent``,
        so no depth-long semi-join chain is re-evaluated.
        """
        if not self.active:
            return
        fact = self.graph.target_relation
        table = self.factorizer.storage_table(fact)
        parent_id = node.node_id
        for child in (node.left, node.right):
            condition = leaf_fact_condition(
                self.graph,
                fact,
                {child.relation: (child.predicate,)},
                fact_alias=table,
            )
            self.db.execute(
                f"UPDATE {table} SET {self.column} = {child.node_id} "
                f"WHERE {self.column} = {parent_id} AND {condition}",
                tag="frontier_delta",
            )
            self.delta_label_updates += 1
            self._count_written(table)
        self.leaf_ids.discard(parent_id)
        self.leaf_ids.update((node.left.node_id, node.right.node_id))
        self.epoch += 1

    def _count_written(self, table: str) -> None:
        """Label cells written by the last delta update (from the query
        profile when available, conservatively the full column size
        otherwise)."""
        rows = None
        profiles = getattr(self.db, "profiles", None)
        if profiles:
            last = profiles[-1]
            if getattr(last, "kind", None) == "Update":
                rows = last.rows_out
        if rows is None:
            rows = self.db.table(table).num_rows()
        self.label_rows_written += rows
        self.label_bytes_written += 8 * rows

    # ------------------------------------------------------------------
    def scope(self, frontier_ids: Sequence[int]):
        """Cache scope for carry messages: epoch + evaluated frontier."""
        return (self.epoch, frozenset(int(i) for i in frontier_ids))

    def covers(self, nodes: Sequence[TreeNode]) -> bool:
        return all(node.node_id in self.leaf_ids for node in nodes)

    def census(self) -> Dict[str, int]:
        return {
            "root_label_passes": self.root_label_passes,
            "delta_label_updates": self.delta_label_updates,
            "label_rows_written": self.label_rows_written,
            "label_bytes_written": self.label_bytes_written,
        }


class FrontierEvaluator:
    """Finds the best split of every open-frontier leaf, batched by
    relation when the schema allows, per (leaf, feature) otherwise."""

    def __init__(
        self,
        db,
        graph: JoinGraph,
        factorizer: Factorizer,
        criterion: Criterion,
        finder: SplitFinder,
        mode: str = "auto",
        missing: str = "right",
        min_child_samples: int = 1,
        state_mode: str = "incremental",
        num_workers: int = 1,
        executor: str = "thread",
    ):
        self.db = db
        self.graph = graph
        self.factorizer = factorizer
        self.criterion = criterion
        self.finder = finder
        self.mode = mode
        self.missing = missing
        self.min_child_samples = min_child_samples
        self.state_mode = state_mode
        self.num_workers = max(1, int(num_workers))
        self.executor = executor
        self.state = FrontierState(db, graph, factorizer)
        # census counters (read by the Figure 9 bench and the CI gate)
        self.rounds = 0
        self.batched_rounds = 0
        self.incremental_rounds = 0
        self.label_queries = 0
        self.rebuild_label_cells = 0
        self.batched_split_queries = 0
        self.per_leaf_split_queries = 0
        # inter-query parallelism census (Figure 18 measured numbers)
        self.parallel_rounds = 0
        self.parallel_wall_seconds = 0.0
        self.parallel_busy_seconds = 0.0
        # fault-tolerance census: transient retries the scheduler spent
        # on this evaluator's DAG rounds (the serial execute path's
        # retries live on the connector's RetryCensus and merge in
        # census())
        self.scheduler_retries = 0
        self.scheduler_exhausted = 0
        # why the most recent evaluation round stayed serial (None =
        # the round fanned out); census() derives a reason for rounds
        # that never reached the batched evaluator at all
        self.parallel_fallback_reason: Optional[str] = None
        # process-executor supervision census, accumulated across every
        # evaluation round of the training run (worker_crashes,
        # tasks_redispatched, respawns, deadline_timeouts, ...)
        from repro.engine.procpool import ProcPoolCensus

        self.pool_census = ProcPoolCensus()
        # why executor="process" degraded to threads (None = it engaged,
        # or was never requested)
        self.executor_fallback_reason: Optional[str] = None
        self._batch_veto: Optional[str] = None
        self._veto_checked = False
        self._incremental_veto: Optional[str] = None
        self._kind_cache: Dict[Tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    # Tree lifecycle (driven by the trainer)
    # ------------------------------------------------------------------
    def begin_tree(
        self, root: TreeNode, base_predicates: Optional[PredicateMap] = None
    ) -> None:
        """Reset the incremental state for a new tree's root."""
        self.state.begin_tree(root, base_predicates)

    def notify_split(self, node: TreeNode) -> None:
        """A split committed: apply the delta label update (incremental
        state only).  Failures degrade to rebuild labels, never error."""
        if not self.state.active:
            return
        try:
            self.state.apply_split(node)
        except (TrainingError, ExecutionError) as exc:
            self.state.deactivate()
            self._incremental_veto = f"delta label update failed: {exc}"

    def leaf_label_column(self, model) -> Optional[str]:
        """The persistent label column, when it is current for ``model``
        (drives the residual updater's ``CASE jb_leaf`` fast path)."""
        if not self.state.active or self.state.column is None:
            return None
        leaf_ids = {leaf.node_id for leaf in model.leaves()}
        if not leaf_ids <= self.state.leaf_ids:
            return None
        return self.state.column

    def _incremental_blocked(self) -> Optional[str]:
        """Why incremental labels cannot be used (None = usable)."""
        if self.state_mode != "incremental":
            return f"frontier_state={self.state_mode!r}"
        if self._incremental_veto is not None:
            return self._incremental_veto
        capabilities = getattr(self.db, "capabilities", None)
        if capabilities is not None and not getattr(
            capabilities, "narrow_update", True
        ):
            self._incremental_veto = "backend lacks narrow predicated UPDATE"
            return self._incremental_veto
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def best_splits(
        self,
        nodes: Sequence[TreeNode],
        base_predicates: PredicateMap,
        features: Sequence[Tuple[str, str]],
    ) -> Dict[int, Optional[SplitCandidate]]:
        """Best split per frontier node (node_id -> candidate or None)."""
        if not nodes:
            return {}
        self.rounds += 1
        if self.mode != "off":
            veto = self._batching_veto()
            if veto is None:
                try:
                    return self._batched(nodes, base_predicates, features)
                except BatchingUnavailable as exc:
                    if self.mode == "on":
                        raise
                    # Remember the real reason and stop attempting
                    # batched rounds; other errors propagate untouched.
                    self._batch_veto = str(exc)
            elif self.mode == "on":
                raise TrainingError(
                    f"split_batching='on' but batching is unavailable: {veto}"
                )
        return self._per_leaf(nodes, base_predicates, features)

    def census(self) -> Dict[str, object]:
        """Query accounting for the Figure 9 reproduction and CI gates."""
        state = self.state.census()
        # Fault-tolerance counters: scheduler-side retries plus whatever
        # the connector's own retry/chaos proxies (connect(..., chaos=...,
        # retry=...)) accumulated on the serial execute path.
        connector_retry = getattr(self.db, "retry_census", None)
        retry_snapshot = (
            connector_retry.snapshot() if connector_retry is not None
            else {"retries": 0, "exhausted": 0, "succeeded_after_retry": 0}
        )
        chaos_census = getattr(self.db, "chaos_census", None)
        pool_counts = self.pool_census.snapshot()
        return {
            "mode": self.mode,
            "frontier_state": self.state_mode,
            "rounds": self.rounds,
            "batched_rounds": self.batched_rounds,
            "incremental_rounds": self.incremental_rounds,
            "label_queries": self.label_queries,
            "root_label_passes": state["root_label_passes"],
            "delta_label_updates": state["delta_label_updates"],
            "label_cells_written": (
                state["label_rows_written"] + self.rebuild_label_cells
            ),
            "label_bytes_written": (
                state["label_bytes_written"] + 8 * self.rebuild_label_cells
            ),
            "carry_cache_hits": self.factorizer.carry_cache_hits,
            "carry_cache_misses": self.factorizer.carry_cache_misses,
            "batched_split_queries": self.batched_split_queries,
            "per_leaf_split_queries": self.per_leaf_split_queries,
            "batching_veto": self._batch_veto or self._batching_veto(),
            "incremental_veto": self._incremental_veto,
            "num_workers": self.num_workers,
            "parallel_rounds": self.parallel_rounds,
            "parallel_wall_seconds": self.parallel_wall_seconds,
            "parallel_busy_seconds": self.parallel_busy_seconds,
            "parallel_overlap_seconds": max(
                0.0, self.parallel_busy_seconds - self.parallel_wall_seconds
            ),
            "parallel_fallback_reason": self._fallback_reason(),
            "retries": self.scheduler_retries + retry_snapshot["retries"],
            "retry_exhausted": (
                self.scheduler_exhausted + retry_snapshot["exhausted"]
            ),
            "recovered_after_retry": retry_snapshot["succeeded_after_retry"],
            "chaos_injected": (
                chaos_census.snapshot()["total"]
                if chaos_census is not None else 0
            ),
            # process-executor supervision (the new failure domain the
            # statement retry layer cannot see; ISSUE-9 recovery gates).
            # "executor" is the one rounds actually ran on — a requested
            # "process" that degraded reports "thread" plus the reason.
            "executor": self._effective_executor(),
            "executor_fallback_reason": self.executor_fallback_reason,
            **{
                key: pool_counts[key]
                for key in (
                    "worker_crashes", "tasks_redispatched",
                    "respawns", "deadline_timeouts",
                )
            },
        }

    def _fallback_reason(self) -> Optional[str]:
        """Why evaluation rounds stayed serial (None = the most recent
        round fanned out to the worker pool).  Rounds that never reached
        the batched evaluator — per-leaf mode, batching vetoes — derive
        their reason here so the census never reports a silent serial
        fallback."""
        if self.parallel_fallback_reason is not None:
            return self.parallel_fallback_reason
        if self.parallel_rounds > 0:
            return None
        if self.num_workers <= 1:
            return "num_workers=1 (serial by request)"
        if self.mode == "off":
            return "split_batching='off' keeps rounds per-leaf"
        veto = self._batch_veto or self._batching_veto()
        if veto is not None:
            return f"batching unavailable: {veto}"
        return "no batched evaluation round ran"

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def _batching_veto(self) -> Optional[str]:
        """None when batching can run; otherwise the reason it cannot."""
        if self._veto_checked:
            return self._batch_veto
        self._veto_checked = True
        self._batch_veto = self._compute_veto()
        return self._batch_veto

    def _compute_veto(self) -> Optional[str]:
        capabilities = getattr(self.db, "capabilities", None)
        if capabilities is not None and not getattr(
            capabilities, "union_all", True
        ):
            return "backend lacks UNION ALL"
        if self.factorizer.outer_joins:
            return "outer-join factorizer (missing-key tolerance mode)"
        try:
            fact = self.graph.target_relation
        except JoinGraphError:
            return "join graph has no target relation"
        # Leaf membership must be a function of the fact row: every edge
        # directed away from the fact must be N-to-1 (snowflake).
        from repro.core.boosting import is_snowflake

        if not is_snowflake(self.graph, fact):
            return "non-snowflake schema (fact is not 1-1 with the join)"
        if fact not in self.factorizer.lifted:
            return "target relation is not lifted"
        fact_columns = {
            c.lower()
            for c in self.db.table(self.factorizer.storage_table(fact)).column_names()
        }
        if LEAF_COLUMN in fact_columns:
            return f"fact table already has a {LEAF_COLUMN!r} column"
        if not set(self.factorizer.semiring.components) <= fact_columns:
            return "lifted fact table lacks semi-ring components"
        return None

    # ------------------------------------------------------------------
    # Per-leaf fallback (the pre-batching behavior, query for query)
    # ------------------------------------------------------------------
    def _per_leaf(
        self,
        nodes: Sequence[TreeNode],
        base_predicates: PredicateMap,
        features: Sequence[Tuple[str, str]],
    ) -> Dict[int, Optional[SplitCandidate]]:
        out: Dict[int, Optional[SplitCandidate]] = {}
        for node in nodes:
            if self.criterion.weight(node.aggregates) <= 0:
                out[node.node_id] = None
                continue
            predicates = merged_predicates(base_predicates, node)
            best: Optional[SplitCandidate] = None
            for relation, feature in features:
                candidate = self.finder.best_split(
                    feature,
                    relation,
                    predicates,
                    node.aggregates,
                    categorical=self.graph.is_categorical(relation, feature),
                )
                self.per_leaf_split_queries += 1
                if candidate is not None and (
                    best is None or candidate.gain > best.gain
                ):
                    best = candidate
            out[node.node_id] = best
        return out

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def _batched(
        self,
        nodes: Sequence[TreeNode],
        base_predicates: PredicateMap,
        features: Sequence[Tuple[str, str]],
    ) -> Dict[int, Optional[SplitCandidate]]:
        out: Dict[int, Optional[SplitCandidate]] = {
            node.node_id: None for node in nodes
        }
        eligible = [
            node for node in nodes if self.criterion.weight(node.aggregates) > 0
        ]
        if not eligible:
            return out
        fact = self.graph.target_relation

        incremental = (
            self._incremental_blocked() is None
            and self.state.ensure(fact)
            and self.state.covers(eligible)
        )
        frontier_ids = sorted(node.node_id for node in eligible)
        label_table: Optional[str] = None
        override: Optional[Dict[str, str]] = None
        carry_filters = None
        scope = None
        if incremental:
            label_column = self.state.column
            carry_filters = {(fact, label_column): tuple(frontier_ids)}
            scope = self.state.scope(frontier_ids)
            self.incremental_rounds += 1
        else:
            label_column = LEAF_COLUMN
            label_table = self._label_frontier(
                eligible, base_predicates, features, fact
            )
            override = {fact: label_table}
        # Evict carry messages keyed to any other leaf epoch — their
        # labels are stale the moment a split commits.
        self.factorizer.begin_carry_scope(scope)
        self.batched_rounds += 1

        by_relation: Dict[str, List[Tuple[int, str]]] = {}
        for index, (relation, feature) in enumerate(features):
            by_relation.setdefault(relation, []).append((index, feature))

        node_by_id = {node.node_id: node for node in eligible}
        candidates: Dict[Tuple[int, int], SplitCandidate] = {}
        round_ids = frontier_ids if incremental else None
        try:
            if self._pool_eligible(by_relation):
                self._evaluate_parallel(
                    by_relation, fact, node_by_id, candidates,
                    label_column, round_ids, override, carry_filters, scope,
                )
            else:
                for relation, indexed in by_relation.items():
                    # Carry messages depend on the relation and the leaf
                    # labels only — within one round every relation whose
                    # routing path shares a prefix reuses them (scoped cache
                    # in incremental mode, shared kind groups in both).
                    absorption = self.factorizer.multi_absorption(
                        relation,
                        carry={fact: (label_column,)},
                        table_override=override,
                        carry_filters=carry_filters,
                        cache_scope=scope,
                    )
                    try:
                        for group in self._split_by_kind(relation, indexed):
                            self.batched_split_queries += self._evaluate_relation(
                                relation, group, fact, absorption,
                                node_by_id, candidates,
                                label_column, round_ids,
                            )
                    finally:
                        for temp in absorption.temp_tables:
                            self.db.drop_table(temp, if_exists=True)
        finally:
            if label_table is not None:
                self.db.drop_table(label_table, if_exists=True)

        # Reduce in the caller's feature order so ties across features
        # break exactly as the per-leaf scan's first-strict-max does.
        for node in eligible:
            best: Optional[SplitCandidate] = None
            for index in range(len(features)):
                candidate = candidates.get((node.node_id, index))
                if candidate is not None and (
                    best is None or candidate.gain > best.gain
                ):
                    best = candidate
            out[node.node_id] = best
        return out

    # ------------------------------------------------------------------
    # Inter-query parallelism (Section 5.5.3, executed for real)
    # ------------------------------------------------------------------
    def _pool_eligible(self, by_relation: Dict[str, List[Tuple[int, str]]]) -> bool:
        """Fan a round out to the worker pool?  Needs >1 worker, >1
        relation to overlap, and a backend whose read path is declared
        concurrency-safe (``Capabilities.concurrent_read``).  Every
        serial outcome records *why* on ``parallel_fallback_reason`` —
        the silent-serialization bug this census field exists to fix."""
        if self.num_workers <= 1:
            self.parallel_fallback_reason = "num_workers=1 (serial by request)"
            return False
        veto = concurrent_read_veto(self.db)
        if veto is not None:
            self.parallel_fallback_reason = veto
            return False
        if len(by_relation) <= 1:
            self.parallel_fallback_reason = (
                "single feature-bearing relation (nothing to overlap)"
            )
            return False
        self.parallel_fallback_reason = None
        return True

    def _effective_executor(self) -> str:
        """The executor a fanned-out round actually runs on.

        ``executor="process"`` engages only when the backend can
        serialize read tasks for worker processes
        (``Capabilities.process_safe`` + a ``process_task_payload``
        entry point); otherwise the round degrades to the thread pool
        and records why — the same no-silent-fallback stance as
        ``parallel_fallback_reason``.
        """
        if self.executor != "process":
            self.executor_fallback_reason = None
            return "thread"
        capabilities = getattr(self.db, "capabilities", None)
        if capabilities is None or not getattr(
            capabilities, "process_safe", False
        ):
            self.executor_fallback_reason = (
                "backend is not process-safe (no serialized task specs)"
            )
            return "thread"
        if not callable(getattr(self.db, "process_task_payload", None)):
            self.executor_fallback_reason = (
                "backend lacks process_task_payload()"
            )
            return "thread"
        self.executor_fallback_reason = None
        return "process"

    def _evaluate_parallel(
        self,
        by_relation: Dict[str, List[Tuple[int, str]]],
        fact: str,
        node_by_id: Dict[int, TreeNode],
        candidates: Dict[Tuple[int, int], "SplitCandidate"],
        label_column: str,
        round_ids: Optional[Sequence[int]],
        override: Optional[Dict[str, str]],
        carry_filters,
        scope,
    ) -> None:
        """One evaluation round on the dependency-DAG scheduler.

        Each relation contributes a two-node chain — *build* (the carry
        message hops feeding it, serialized against other builds by the
        factorizer's build lock) then *split* (the fused ``UNION ALL``
        query plus the client-side prefix scan).  Chains of different
        relations share no downstream, so the pool overlaps relation A's
        split query with relation B's message build.  Results merge on
        the calling thread in relation order: candidate keys are
        ``(node_id, feature index)`` with feature indexes disjoint across
        relations, and each task computes exactly what the serial loop
        would — so the merged map, and therefore the chosen tree, is
        bit-identical to ``num_workers=1``.

        On ``executor="process"`` (and a process-safe backend) each
        relation's chain deepens to *build* (inline — message builds
        mutate the catalog and stay on the owner) → one fused *read* per
        kind group, serialized via ``process_task_payload`` and executed
        in a supervised worker process → *scan* (inline — the numpy
        prefix scan over the returned aggregates) → *finalize* (drop the
        absorption temps, register the relation's output).  Results
        still merge by relation/feature order, so the digest contract
        holds across executors and across injected worker failures.
        """
        from repro.engine.scheduler import QueryScheduler

        # Retry wiring: when the connector carries a retry policy (the
        # connect(..., retry=...) proxy), the scheduler retries transient
        # backend faults per DAG node before skipping dependents.  The
        # connector's RetryCensus is NOT shared with the scheduler —
        # scheduler-level retries are accounted via report.retries, and
        # census() sums the two sources without double counting.
        effective_executor = self._effective_executor()
        scheduler = QueryScheduler(
            num_workers=self.num_workers,
            retry_policy=getattr(self.db, "retry_policy", None),
            executor=effective_executor,
            pool_census=self.pool_census,
        )
        absorptions: Dict[str, MultiAbsorption] = {}
        outputs: Dict[str, Tuple[Dict[Tuple[int, int], SplitCandidate], int]] = {}

        def build_task(relation: str):
            def build() -> None:
                absorptions[relation] = self.factorizer.multi_absorption(
                    relation,
                    carry={fact: (label_column,)},
                    table_override=override,
                    carry_filters=carry_filters,
                    cache_scope=scope,
                )
            return build

        def split_task(relation: str, indexed: List[Tuple[int, str]]):
            def split() -> None:
                absorption = absorptions[relation]
                local: Dict[Tuple[int, int], SplitCandidate] = {}
                queries = 0
                try:
                    for group in self._split_by_kind(relation, indexed):
                        queries += self._evaluate_relation(
                            relation, group, fact, absorption,
                            node_by_id, local, label_column, round_ids,
                        )
                finally:
                    for temp in absorption.temp_tables:
                        self.db.drop_table(temp, if_exists=True)
                outputs[relation] = (local, queries)
            return split

        def submit_process_graph() -> None:
            """The deeper per-relation chain for the process executor.

            The read node's *spec* resolves at dispatch time (after the
            build committed its message temps): it renders the fused
            SQL, asks the backend to serialize it, and stamps any
            task-scoped chaos directive — in query-id order, so fault
            ordinals are deterministic.  A backend that declines a
            particular statement returns ``None`` and the read runs
            inline instead; either way the scan and finalize nodes stay
            on the calling process.
            """
            from repro.backends.chaos import task_fault_directive

            locals_by_relation: Dict[str, Dict[Tuple[int, int], SplitCandidate]] = {
                relation: {} for relation in by_relation
            }

            for relation, indexed in by_relation.items():
                build_id = scheduler.submit(
                    build_task(relation), label=f"build:{relation}"
                )
                groups = self._split_by_kind(relation, indexed)
                scan_ids: List[int] = []
                for group_index, group in enumerate(groups):

                    def read_spec(relation=relation, group=group):
                        sql = self._fused_sql(
                            relation, group, fact, absorptions[relation],
                            label_column, round_ids,
                        )
                        payload = self.db.process_task_payload(
                            sql, tag="feature"
                        )
                        if payload is None:
                            return None
                        directive = task_fault_directive(
                            self.db, f"feature:{relation}", sql
                        )
                        if directive is not None:
                            payload["chaos"] = directive
                        return payload

                    def read_inline(relation=relation, group=group):
                        sql = self._fused_sql(
                            relation, group, fact, absorptions[relation],
                            label_column, round_ids,
                        )
                        runner = getattr(self.db, "execute_read", self.db.execute)
                        return runner(sql, tag="feature")

                    read_id = scheduler.submit(
                        read_inline,
                        deps=[build_id],
                        label=f"read:{relation}:{group_index}",
                        spec=read_spec,
                    )

                    def scan(
                        relation=relation, group=group, read_id=read_id
                    ) -> None:
                        self._scan_fused_result(
                            scheduler.result_of(read_id),
                            relation, group, node_by_id,
                            locals_by_relation[relation],
                        )

                    scan_ids.append(scheduler.submit(
                        scan,
                        deps=[read_id],
                        label=f"scan:{relation}:{group_index}",
                    ))

                def finalize(relation=relation, queries=len(groups)) -> None:
                    for temp in absorptions[relation].temp_tables:
                        self.db.drop_table(temp, if_exists=True)
                    outputs[relation] = (locals_by_relation[relation], queries)

                scheduler.submit(
                    finalize, deps=scan_ids, label=f"finalize:{relation}"
                )

        if effective_executor == "process":
            submit_process_graph()
        else:
            for relation, indexed in by_relation.items():
                build_id = scheduler.submit(
                    build_task(relation), label=f"build:{relation}"
                )
                scheduler.submit(
                    split_task(relation, indexed),
                    deps=[build_id],
                    label=f"split:{relation}",
                )
        try:
            report = scheduler.run()
        except BaseException:
            # A failed build skips its split task: drop any message
            # temps the build materialized but nobody consumed.
            for relation, absorption in absorptions.items():
                if relation not in outputs:
                    for temp in absorption.temp_tables:
                        self.db.drop_table(temp, if_exists=True)
            raise

        for relation in by_relation:
            local, queries = outputs[relation]
            candidates.update(local)
            self.batched_split_queries += queries
        self.parallel_rounds += 1
        self.parallel_wall_seconds += report.wall_seconds
        self.parallel_busy_seconds += report.sequential_seconds
        self.scheduler_retries += report.retries
        self.scheduler_exhausted += report.exhausted

    def _label_frontier(
        self,
        nodes: Sequence[TreeNode],
        base_predicates: PredicateMap,
        features: Sequence[Tuple[str, str]],
        fact: str,
    ) -> str:
        """One pass over the lifted fact: leaf membership as a column."""
        whens = []
        for node in nodes:
            try:
                condition = leaf_fact_condition(
                    self.graph,
                    fact,
                    merged_predicates(base_predicates, node),
                    fact_alias="t",
                )
            except TrainingError as exc:
                # The semi-join rewrite refused (multi-column join keys,
                # no path to the fact): this tree cannot batch.
                raise BatchingUnavailable(str(exc)) from exc
            whens.append(f"WHEN {condition} THEN {node.node_id}")
        fact_table = self.factorizer.storage_table(fact)
        keep: Dict[str, None] = {}
        for edge in self.graph.edges_of(fact):
            for key in edge.keys_for(fact):
                keep.setdefault(key)
        for relation, feature in features:
            if relation == fact:
                keep.setdefault(feature)
        for component in self.factorizer.semiring.components:
            keep.setdefault(component)
        label_table = self.db.temp_name("frontier")
        self.db.execute(
            f"CREATE TABLE {label_table} AS "
            f"SELECT {', '.join(f't.{c}' for c in keep)}, "
            f"CASE {' '.join(whens)} END AS {LEAF_COLUMN} "
            f"FROM {fact_table} AS t",
            tag="frontier",
        )
        self.label_queries += 1
        # Rebuild cost accounting: a full-fact copy writes every kept
        # column plus the label, 8 bytes per cell in the census model.
        rows = self.db.table(label_table).num_rows()
        self.rebuild_label_cells += rows * (len(keep) + 1)
        return label_table

    def _split_by_kind(
        self, relation: str, indexed: List[Tuple[int, str]]
    ) -> List[List[Tuple[int, str]]]:
        """Partition a relation's features into UNION-compatible groups.

        String-valued and numeric features cannot share a ``jb_value``
        column, so a relation mixing them issues one query per kind (the
        common all-numeric relation stays a single query).
        """
        groups: Dict[str, List[Tuple[int, str]]] = {}
        for index, feature in indexed:
            key = (relation, feature)
            kind = self._kind_cache.get(key)
            if kind is None:
                table = self.db.table(self.factorizer.storage_table(relation))
                column = table.column(feature)
                kind = "str" if column.ctype is ColumnType.STR else "num"
                self._kind_cache[key] = kind
            groups.setdefault(kind, []).append((index, feature))
        return list(groups.values())

    def _evaluate_relation(
        self,
        relation: str,
        indexed: List[Tuple[int, str]],
        fact: str,
        absorption,
        node_by_id: Dict[int, TreeNode],
        candidates: Dict[Tuple[int, int], SplitCandidate],
        label_column: str = LEAF_COLUMN,
        frontier_ids: Optional[Sequence[int]] = None,
    ) -> int:
        """One fused query for all of ``relation``'s features, then the
        shared prefix scan per (leaf, feature) slice; returns the number
        of split queries issued (so parallel tasks can report counts
        without racing the shared census counters).  The fused query runs
        through the backend's ``execute_read`` entry point — a pooled
        per-thread connection on sqlite, the audited in-process read path
        on the embedded engine."""
        sql = self._fused_sql(
            relation, indexed, fact, absorption, label_column, frontier_ids
        )
        runner = getattr(self.db, "execute_read", self.db.execute)
        result = runner(sql, tag="feature")
        self._scan_fused_result(
            result, relation, indexed, node_by_id, candidates
        )
        return 1

    def _fused_sql(
        self,
        relation: str,
        indexed: List[Tuple[int, str]],
        fact: str,
        absorption,
        label_column: str = LEAF_COLUMN,
        frontier_ids: Optional[Sequence[int]] = None,
    ) -> str:
        """Render the fused ``UNION ALL`` split query for one relation's
        kind group.  Pure SQL construction — the process executor renders
        here in the parent, serializes the text into a task spec, and a
        worker executes it verbatim, so the statement a child runs is
        byte-identical to the one the thread path would."""
        leaf_ref = absorption.ref(fact, label_column)
        agg_sql = ", ".join(
            f"{expr} AS {comp}" for comp, expr in absorption.agg_selects
        )
        if frontier_ids is not None:
            # Incremental labels cover every open leaf; restrict to the
            # round's frontier.
            rendered = ", ".join(str(int(i)) for i in frontier_ids)
            where_parts = [f"{leaf_ref} IN ({rendered})"]
        else:
            where_parts = [f"{leaf_ref} IS NOT NULL"]
        if absorption.where_sql:
            where_parts.append(absorption.where_sql)
        where_sql = " AND ".join(where_parts)
        branches = []
        for index, feature in indexed:
            branches.append(
                f"SELECT {index} AS jb_feature, t.{feature} AS jb_value, "
                f"{leaf_ref} AS {LEAF_COLUMN}, {agg_sql} "
                f"{absorption.from_sql} "
                f"WHERE {where_sql} "
                f"GROUP BY {leaf_ref}, t.{feature}"
            )
        return " UNION ALL ".join(branches)

    def _scan_fused_result(
        self,
        result,
        relation: str,
        indexed: List[Tuple[int, str]],
        node_by_id: Dict[int, TreeNode],
        candidates: Dict[Tuple[int, int], SplitCandidate],
    ) -> None:
        """Client-side prefix scan over a fused query's aggregates,
        filling ``candidates`` keyed by ``(node_id, feature index)`` —
        identical numpy arithmetic regardless of which executor (or
        which process) produced ``result``."""
        if result is None or result.num_rows == 0:
            return

        feature_ids = result.column("jb_feature").values.astype(np.int64)
        leaf_ids = np.asarray(
            result.column(LEAF_COLUMN).values, dtype=np.float64
        ).astype(np.int64)
        value_column = result.column("jb_value")
        values = value_column.values
        nulls = value_column.is_null()
        if values.dtype.kind == "f":
            nulls = nulls | np.isnan(values)
        agg_arrays = {
            c: result.column(c).values.astype(np.float64)
            for c in self.criterion.components
        }

        for index, feature in indexed:
            categorical = self.graph.is_categorical(relation, feature)
            feature_mask = feature_ids == index
            for node_id, node in node_by_id.items():
                mask = feature_mask & (leaf_ids == node_id)
                if not mask.any():
                    continue
                candidate = best_split_from_aggregates(
                    self.criterion,
                    relation,
                    feature,
                    values[mask],
                    nulls[mask],
                    {c: a[mask] for c, a in agg_arrays.items()},
                    node.aggregates,
                    categorical=categorical,
                    missing=self.missing,
                    min_child_samples=self.min_child_samples,
                )
                if candidate is not None:
                    candidates[(node_id, index)] = candidate
