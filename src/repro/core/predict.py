"""Inference and evaluation over the join graph.

Training never materializes R⋈, but evaluation needs per-tuple scores.
For snowflake schemas the fact table is 1-1 with R⋈, so scoring needs only
a *narrow* join: the fact table's rows augmented with exactly the feature
columns the model references (each dimension contributes a couple of
columns, fetched with N-to-1 joins).  :func:`feature_frame` builds that
frame; the model classes route rows through their trees vectorized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import TrainingError
from repro.engine.operators import join_indices
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, rooted_tree


def feature_frame(
    db,
    graph: JoinGraph,
    columns: Optional[Sequence[str]] = None,
    fact: Optional[str] = None,
    include_target: bool = True,
) -> Dict[str, np.ndarray]:
    """Fact-aligned arrays for the requested feature columns.

    Walks the join tree rooted at the fact table; for each relation owning
    a requested column, composes the N-to-1 key mappings hop by hop so the
    returned arrays all align with fact rows.  NULLs appear where a join
    key has no match (left-join semantics).
    """
    fact = fact or graph.target_relation
    wanted: List[str]
    if columns is None:
        wanted = [f for _, f in graph.all_features()]
    else:
        wanted = list(columns)
    if include_target and graph.relations[fact].target:
        target = graph.relations[fact].target
        if target not in wanted:
            wanted.append(target)

    parent_map, children, _ = rooted_tree(graph, fact)
    fact_table = db.table(fact)
    n = fact_table.num_rows()

    # row_map[rel] = for each fact row, the matching row index in rel (-1
    # when missing).  Built top-down along the join tree.
    row_map: Dict[str, np.ndarray] = {fact: np.arange(n)}
    order = [fact]
    frontier = [fact]
    while frontier:
        current = frontier.pop(0)
        for child in children[current]:
            order.append(child)
            frontier.append(child)

    for relation in order[1:]:
        parent = parent_map[relation]
        edge = edge_between(graph, relation, parent)
        parent_table = db.table(parent)
        child_table = db.table(relation)
        parent_idx = row_map[parent]
        valid_parent = parent_idx >= 0
        parent_keys = []
        for key in edge.keys_for(parent):
            key_col = parent_table.column(key)
            values = np.asarray(
                key_col.values if key_col.ctype.name == "STR" else key_col.as_float()
            )
            if len(values) == 0:
                # Parent table is empty, so no fact row can reach it:
                # every row_map entry is already -1 and the gather below
                # would index row 0 of a zero-row array.
                gathered = np.full(n, np.nan)
            else:
                gathered = values[np.where(valid_parent, parent_idx, 0)]
            parent_keys.append(gathered)
        child_keys = [
            child_table.column(k).values for k in edge.keys_for(relation)
        ]
        l_idx, r_idx = join_indices(parent_keys, child_keys, how="left")
        # N-to-1 joins have at most one match per fact row; if the data
        # violates that, the last match wins (evaluation path only).
        first = np.full(n, -1, dtype=np.int64)
        first[l_idx] = r_idx
        first[~valid_parent] = -1
        row_map[relation] = first

    out: Dict[str, np.ndarray] = {}
    for column in wanted:
        owner = None
        for name in order:
            if column in db.table(name).column_names():
                owner = name
                break
        if owner is None:
            raise TrainingError(f"no relation provides column {column!r}")
        col = db.table(owner).column(column)
        idx = row_map[owner]
        missing = idx < 0
        if len(col.values) == 0:
            # Owner has no rows: every fact row dangles, and indexing even
            # row 0 of a zero-row column would raise.  All-missing frame.
            if col.ctype.name == "STR":
                values = np.full(n, None, dtype=object)
            else:
                values = np.full(n, np.nan)
            out[column] = values
            continue
        safe = np.where(missing, 0, idx)
        if col.ctype.name == "STR":
            values = col.values[safe].astype(object)
            values[missing] = None
        else:
            values = col.as_float()[safe]
            values[missing] = np.nan
        out[column] = values
    return out


def predict_join(db, graph: JoinGraph, model, fact: Optional[str] = None) -> np.ndarray:
    """Score every fact row of the join graph with ``model``.

    ``model`` is anything exposing ``predict_arrays`` (a single tree, a
    forest, or a boosting model).
    """
    needed = getattr(model, "required_features", None)
    frame = feature_frame(db, graph, columns=needed, fact=fact)
    return model.predict_arrays(frame)


def rmse_on_join(
    db, graph: JoinGraph, model, fact: Optional[str] = None
) -> float:
    """Root-mean-square error of ``model`` against the target column."""
    fact = fact or graph.target_relation
    target = graph.relations[fact].target
    if target is None:
        raise TrainingError(f"relation {fact!r} declares no target")
    frame = feature_frame(db, graph, fact=fact)
    y = frame[target]
    scores = model.predict_arrays(frame)
    keep = ~np.isnan(y)
    return float(np.sqrt(np.mean((y[keep] - scores[keep]) ** 2)))
