"""Residual updates — Sections 4, 5.3 and 5.4.

After each boosted tree, the target's semi-ring annotation must reflect
the new residuals *without* materializing R⋈.  Three layers cooperate:

1. **Leaf → fact translation**: each leaf's σ references dimension
   attributes; :func:`leaf_fact_condition` rewrites it as (nested)
   semi-join ``IN`` predicates over the fact table's keys (Section 4.1).
2. **Logical strategy** (Section 5.3): ``update`` in place, ``create`` a
   new fact table, or ``naive`` (materialize the update relation U of
   Section 4.2.1 and join).
3. **Physical strategy** (Section 5.4): ``swap`` computes the new column
   with a query and pointer-swaps it in, dodging WAL/MVCC/compression.

Two update shapes:

* **additive** — L2/rmse (and galaxy clusters): only the gradient/sum
  component shifts, by ``lr · leaf_value`` per matched row.  This is the
  "only s is needed" optimization.
* **general** — other losses on snowflake schemas: the prediction column
  shifts per leaf, then g (and a non-constant h) are recomputed from the
  loss formulas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.engine.update import apply_column_update
from repro.factorize.predicates import PredicateMap, render_conjunction
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, rooted_tree
from repro.semiring.losses import L2Loss, Loss


# ---------------------------------------------------------------------------
# Leaf predicate -> fact-table semi-join condition (Section 4.1)
# ---------------------------------------------------------------------------
def leaf_fact_condition(
    graph: JoinGraph,
    fact: str,
    predicates: PredicateMap,
    fact_alias: str = "t",
    table_for: Optional[Dict[str, str]] = None,
) -> str:
    """Rewrite a leaf's σ as a predicate over the fact table only.

    Dimension predicates become nested ``IN (SELECT ...)`` semi-joins
    moved hop by hop toward the fact (the D_{i-1} ⋉ σ(D_i) rewriting).
    ``table_for`` maps relation names to their physical tables (lifted
    copies); defaults to the relation names themselves.
    """
    table_for = table_for or {}
    parent_map, _, _ = rooted_tree(graph, fact)
    conditions: List[str] = []
    for relation, preds in predicates.items():
        if not preds:
            continue
        if relation == fact:
            conditions.append(render_conjunction(tuple(preds), alias=fact_alias))
            continue
        # Path from the predicate's relation up to the fact.
        path = [relation]
        while path[-1] != fact:
            parent = parent_map.get(path[-1])
            if parent is None:
                raise TrainingError(
                    f"no path from {relation!r} to fact {fact!r}"
                )
            path.append(parent)
        subquery = None
        for i, current in enumerate(path[:-1]):
            parent = path[i + 1]
            edge = edge_between(graph, current, parent)
            out_keys = edge.keys_for(current)
            if len(out_keys) != 1:
                raise TrainingError(
                    "semi-join predicate movement requires single-column "
                    f"join keys on the {current!r} -> {parent!r} edge"
                )
            table = table_for.get(current, current)
            where_parts: List[str] = []
            if i == 0:
                where_parts.append(render_conjunction(tuple(preds)))
            else:
                prev = path[i - 1]
                prev_edge = edge_between(graph, prev, current)
                in_keys = prev_edge.keys_for(current)
                if len(in_keys) != 1:
                    raise TrainingError(
                        "semi-join predicate movement requires single-column "
                        f"join keys on the {prev!r} -> {current!r} edge"
                    )
                where_parts.append(f"{in_keys[0]} IN ({subquery})")
            subquery = (
                f"SELECT {out_keys[0]} FROM {table}"
                f" WHERE {' AND '.join(where_parts)}"
            )
        last_edge = edge_between(graph, path[-2], fact)
        fact_keys = last_edge.keys_for(fact)
        conditions.append(f"{fact_alias}.{fact_keys[0]} IN ({subquery})")
    return " AND ".join(conditions) if conditions else "TRUE"


def leaf_conditions(
    graph: JoinGraph,
    fact: str,
    tree: DecisionTreeModel,
    fact_alias: str = "t",
    table_for: Optional[Dict[str, str]] = None,
) -> List[Tuple[TreeNode, str]]:
    """(leaf, fact-level SQL condition) for every leaf of ``tree``."""
    return [
        (leaf, leaf_fact_condition(graph, fact, leaf.path_predicates(),
                                   fact_alias, table_for))
        for leaf in tree.leaves()
    ]


# ---------------------------------------------------------------------------
# The updater
# ---------------------------------------------------------------------------
class ResidualUpdater:
    """Applies one tree's residual update to a lifted fact table."""

    def __init__(
        self,
        db,
        graph: JoinGraph,
        fact: str,
        fact_table: str,
        loss: Loss,
        strategy: str = "swap",
    ):
        self.db = db
        self.graph = graph
        self.fact = fact
        self.fact_table = fact_table
        self.loss = loss
        self.strategy = strategy

    # -- leaf-label fast path --------------------------------------------
    def _labels_usable(self, label_column: Optional[str]) -> Optional[str]:
        """The label column when the fast path applies, else None.

        The persistent ``jb_leaf`` column (incremental frontier state)
        already encodes every leaf's σ, so residual updates become one
        ``CASE`` over an integer column instead of per-leaf depth-long
        semi-join scans.  The ``naive`` strategy keeps the Section 4.2.1
        baseline untouched (it is the thing Figure 5 measures).
        """
        if label_column is None or self.strategy == "naive":
            return None
        names = {c.lower() for c in self.db.table(self.fact_table).column_names()}
        if label_column.lower() not in names:
            return None
        return label_column

    @staticmethod
    def _label_deltas(
        tree: DecisionTreeModel, scale: float, label_ref: str
    ) -> List[Tuple[str, float]]:
        return [
            (f"{label_ref} = {leaf.node_id}", scale * leaf.prediction)
            for leaf in tree.leaves()
        ]

    # -- additive shape (L2 / galaxy clusters) ---------------------------
    def apply_additive(
        self,
        tree: DecisionTreeModel,
        learning_rate: float,
        component: str = "g",
        sign: float = 1.0,
        label_column: Optional[str] = None,
    ) -> None:
        """Shift ``component`` by ``sign·lr·leaf_value`` per matched tuple.

        The shift is the semi-ring ⊗ with lift(δ): the component moves by
        δ times the row's weight component (h or c) — 1 for base fact rows,
        the group count for pre-aggregated cuboids.  ``label_column``
        (when current) switches the leaf conditions from semi-join scans
        to equality tests on the persistent leaf-membership column.
        """
        weight = self._weight_column()
        label = self._labels_usable(label_column)
        if label is not None:
            if self.strategy == "update":
                deltas = self._label_deltas(
                    tree, sign * learning_rate, f"{self.fact_table}.{label}"
                )
                case_expr = self._case_expr(deltas, component, weight=weight)
                self.db.execute(
                    f"UPDATE {self.fact_table} SET {component} = {case_expr}",
                    tag="residual_update",
                )
            else:
                deltas = self._label_deltas(
                    tree, sign * learning_rate, f"t.{label}"
                )
                case_expr = self._case_expr(
                    deltas, f"t.{component}",
                    weight=f"t.{weight}" if weight else None,
                )
                if self.strategy == "create":
                    self._recreate_with({component: case_expr})
                else:
                    self._swap_with({component: case_expr})
            return
        if self.strategy == "update":
            pairs = leaf_conditions(
                self.graph, self.fact, tree, fact_alias=self.fact_table
            )
            for leaf, condition in pairs:
                delta = sign * learning_rate * leaf.prediction
                shift = f"{delta!r} * {weight}" if weight else repr(delta)
                self.db.execute(
                    f"UPDATE {self.fact_table} "
                    f"SET {component} = {component} + {shift} "
                    f"WHERE {condition}",
                    tag="residual_update",
                )
            return
        pairs = leaf_conditions(self.graph, self.fact, tree, fact_alias="t")
        deltas = [
            (condition, sign * learning_rate * leaf.prediction)
            for leaf, condition in pairs
        ]
        case_expr = self._case_expr(
            deltas, f"t.{component}", weight=f"t.{weight}" if weight else None
        )
        if self.strategy == "create":
            self._recreate_with(
                {component: case_expr}
            )
        elif self.strategy == "swap":
            self._swap_with({component: case_expr})
        elif self.strategy == "naive":
            self._naive_update(tree, deltas, component)
        else:
            raise TrainingError(f"unknown update strategy {self.strategy!r}")

    # -- general shape (arbitrary snowflake losses) -----------------------
    def apply_general(
        self,
        tree: DecisionTreeModel,
        learning_rate: float,
        y_column: str,
        pred_column: str = "pred",
        hessian_constant: bool = False,
        label_column: Optional[str] = None,
    ) -> None:
        """Shift the prediction per leaf, then recompute g (and h)."""
        label = self._labels_usable(label_column)
        if label is not None:
            deltas = self._label_deltas(tree, learning_rate, f"t.{label}")
        else:
            pairs = leaf_conditions(self.graph, self.fact, tree, fact_alias="t")
            deltas = [
                (condition, learning_rate * leaf.prediction)
                for leaf, condition in pairs
            ]
        pred_expr = self._case_expr(deltas, f"t.{pred_column}")
        new_columns = {pred_column: pred_expr}
        new_columns["g"] = self.loss.gradient_sql(f"t.{y_column}", f"({pred_expr})")
        if not hessian_constant:
            new_columns["h"] = self.loss.hessian_sql(f"t.{y_column}", f"({pred_expr})")
        if self.strategy == "update":
            if label is not None:
                bare_deltas = self._label_deltas(
                    tree, learning_rate, f"{self.fact_table}.{label}"
                )
                case_expr = self._case_expr(bare_deltas, pred_column)
                self.db.execute(
                    f"UPDATE {self.fact_table} "
                    f"SET {pred_column} = {case_expr}",
                    tag="residual_update",
                )
            else:
                bare_pairs = leaf_conditions(
                    self.graph, self.fact, tree, fact_alias=self.fact_table
                )
                for leaf, condition in bare_pairs:
                    delta = learning_rate * leaf.prediction
                    self.db.execute(
                        f"UPDATE {self.fact_table} "
                        f"SET {pred_column} = {pred_column} + {delta!r} "
                        f"WHERE {condition}",
                        tag="residual_update",
                    )
            g_expr = self.loss.gradient_sql(
                f"{self.fact_table}.{y_column}", f"{self.fact_table}.{pred_column}"
            )
            sets = [f"g = {g_expr}"]
            if not hessian_constant:
                h_expr = self.loss.hessian_sql(
                    f"{self.fact_table}.{y_column}",
                    f"{self.fact_table}.{pred_column}",
                )
                sets.append(f"h = {h_expr}")
            self.db.execute(
                f"UPDATE {self.fact_table} SET {', '.join(sets)}",
                tag="residual_update",
            )
        elif self.strategy == "create":
            self._recreate_with(new_columns)
        elif self.strategy == "swap":
            self._swap_with(new_columns)
        else:
            raise TrainingError(
                f"strategy {self.strategy!r} is not supported for general losses"
            )

    # -- shared helpers ----------------------------------------------------
    def _weight_column(self) -> Optional[str]:
        """The weight component of the fact table's annotation, if any."""
        names = self.db.table(self.fact_table).column_names()
        for candidate in ("h", "c"):
            if candidate in names:
                return candidate
        return None

    @staticmethod
    def _case_expr(
        deltas: Sequence[Tuple[str, float]],
        base: str,
        weight: Optional[str] = None,
    ) -> str:
        whens = " ".join(
            f"WHEN {condition} THEN {base} + {delta!r}"
            + (f" * {weight}" if weight else "")
            for condition, delta in deltas
        )
        return f"CASE {whens} ELSE {base} END"

    def _recreate_with(self, new_columns: Dict[str, str]) -> None:
        """CREATE TABLE F_updated AS SELECT ... (Section 5.3.1) + rename."""
        table = self.db.table(self.fact_table)
        select_parts = []
        for name in table.column_names():
            if name in new_columns:
                select_parts.append(f"{new_columns[name]} AS {name}")
            else:
                select_parts.append(f"t.{name}")
        scratch = self.db.temp_name("fact_updated")
        self.db.execute(
            f"CREATE TABLE {scratch} AS SELECT {', '.join(select_parts)} "
            f"FROM {self.fact_table} AS t",
            tag="residual_update",
        )
        self.db.drop_table(self.fact_table)
        self.db.rename_table(scratch, self.fact_table)

    def _swap_with(self, new_columns: Dict[str, str]) -> None:
        """Compute new columns with a query, then pointer-swap them in."""
        select_parts = [f"{expr} AS {name}" for name, expr in new_columns.items()]
        result = self.db.execute(
            f"SELECT {', '.join(select_parts)} FROM {self.fact_table} AS t",
            tag="residual_update",
        )
        for name in new_columns:
            apply_column_update(
                self.db, self.fact_table, name,
                result.column(name).values, strategy="swap",
            )

    def _naive_update(
        self,
        tree: DecisionTreeModel,
        deltas: Sequence[Tuple[str, float]],
        component: str,
    ) -> None:
        """Section 4.2.1 verbatim: materialize U, re-create F = F ⋈ U.

        U is keyed by the fact columns the leaf conditions reference (the
        pushed-down attribute set A); its annotation is lift(-P), and the
        new fact table multiplies annotations through the join.  This is
        the slow baseline of Figure 5.
        """
        key_columns = self._referenced_fact_columns(tree)
        if not key_columns:
            raise TrainingError("naive update: tree references no attributes")
        whens = " ".join(
            f"WHEN {condition} THEN {delta!r}" for condition, delta in deltas
        )
        delta_expr = f"CASE {whens} ELSE 0 END"
        u_name = self.db.temp_name("update_relation")
        keys_sql = ", ".join(f"t.{k} AS {k}" for k in key_columns)
        self.db.execute(
            f"CREATE TABLE {u_name} AS SELECT DISTINCT {keys_sql}, "
            f"{delta_expr} AS delta FROM {self.fact_table} AS t",
            tag="residual_update",
        )
        table = self.db.table(self.fact_table)
        names = table.column_names()
        # Per-row weight component (1 per base row, but written generally
        # so the semi-ring multiplication F ⋈ lift(delta) stays exact).
        weight = "h" if "h" in names else ("c" if "c" in names else None)
        select_parts = []
        for name in names:
            if name == component:
                if weight is not None:
                    select_parts.append(
                        f"(t.{component} + u.delta * t.{weight}) AS {name}"
                    )
                else:
                    select_parts.append(f"(t.{component} + u.delta) AS {name}")
            else:
                select_parts.append(f"t.{name}")
        join_cond = " AND ".join(f"t.{k} = u.{k}" for k in key_columns)
        scratch = self.db.temp_name("fact_naive")
        self.db.execute(
            f"CREATE TABLE {scratch} AS SELECT {', '.join(select_parts)} "
            f"FROM {self.fact_table} AS t JOIN {u_name} AS u ON {join_cond}",
            tag="residual_update",
        )
        self.db.drop_table(u_name)
        self.db.drop_table(self.fact_table)
        self.db.rename_table(scratch, self.fact_table)

    def _referenced_fact_columns(self, tree: DecisionTreeModel) -> List[str]:
        """Fact columns determining leaf membership: local split columns
        plus the foreign keys toward dimensions the tree splits on."""
        parent_map, _, _ = rooted_tree(self.graph, self.fact)
        columns: List[str] = []
        for relation, column in tree.referenced_attributes():
            if relation == self.fact:
                if column not in columns:
                    columns.append(column)
                continue
            # First hop from the fact toward this relation.
            cursor = relation
            while parent_map.get(cursor) != self.fact:
                cursor = parent_map.get(cursor)
                if cursor is None:
                    raise TrainingError(
                        f"no path from {relation!r} to fact {self.fact!r}"
                    )
            edge = edge_between(self.graph, cursor, self.fact)
            for key in edge.keys_for(self.fact):
                if key not in columns:
                    columns.append(key)
        return columns
