"""Round-level checkpoint/resume for gradient boosting.

A boosting run is a sequence of committed rounds: after round ``r`` the
model is fully defined by its first ``r`` trees plus the init score —
everything else (the lifted fact, gradient columns, frontier state) is
reconstructible side state.  So the checkpoint unit is one committed
round: the partial :class:`GradientBoostingModel` serialized through the
canonical JSON of :mod:`repro.core.serialize`, wrapped with the round
index and the full :class:`~repro.core.params.TrainParams`.

:func:`resume_training` rebuilds the side state and *replays* the
restored trees' residual updates through the same semi-join update path
an uninterrupted run uses, fast-forwards the RNG and the tree node-id
counter, and continues the loop — the parity bar (held by the tests) is
that the resumed run's ``model_digest`` is bit-identical to an
uninterrupted run's, across backends and worker counts.

Module-level imports stay stdlib-only (plus :mod:`repro.exceptions`):
:mod:`repro.core.boosting` imports this module, and this module needs
:mod:`repro.core.serialize` — which imports boosting — so the heavier
imports happen lazily inside functions.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.exceptions import TrainingError

#: payload marker and format version of a serialized checkpoint
CHECKPOINT_KIND = "joinboost-checkpoint"
CHECKPOINT_VERSION = 1

#: TrainParams fields that are execution details, not model definition —
#: a resumed run may change them freely without breaking digest parity
EXECUTION_ONLY_PARAMS = ("num_workers", "executor")


class CheckpointSink:
    """Where checkpoint payloads go; one slot, newest round wins."""

    def save(self, payload: str) -> None:
        """Persist the canonical-JSON checkpoint payload."""
        raise NotImplementedError

    def load(self) -> Optional[str]:
        """The most recent payload, or ``None`` when empty."""
        raise NotImplementedError

    def clear(self) -> None:
        """Discard any stored payload (called after a completed run)."""
        raise NotImplementedError


class MemoryCheckpointSink(CheckpointSink):
    """In-process sink — the cheap default for tests and benches."""

    def __init__(self):
        self.payload: Optional[str] = None
        #: how many rounds were checkpointed through this sink
        self.saves = 0

    def save(self, payload: str) -> None:
        """Keep the newest payload in memory."""
        self.payload = payload
        self.saves += 1

    def load(self) -> Optional[str]:
        """The stored payload, if any."""
        return self.payload

    def clear(self) -> None:
        """Drop the stored payload."""
        self.payload = None


class DirectoryCheckpointSink(CheckpointSink):
    """Directory-backed sink: ``<dir>/checkpoint.json``, written
    atomically (tmp file + rename) so a crash mid-write never leaves a
    torn checkpoint — the previous round's file survives intact."""

    FILENAME = "checkpoint.json"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.saves = 0

    @property
    def path(self) -> str:
        """Full path of the checkpoint file."""
        return os.path.join(self.directory, self.FILENAME)

    def save(self, payload: str) -> None:
        """Atomically replace the checkpoint file."""
        fd, tmp_path = tempfile.mkstemp(
            prefix=".checkpoint_", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):  # pragma: no cover - error path
                os.unlink(tmp_path)
        self.saves += 1

    def load(self) -> Optional[str]:
        """Read the checkpoint file if present."""
        if not os.path.exists(self.path):
            return None
        with open(self.path) as handle:
            return handle.read()

    def clear(self) -> None:
        """Remove the checkpoint file if present."""
        if os.path.exists(self.path):
            os.unlink(self.path)


def write_checkpoint(sink: CheckpointSink, model, params, round_index: int) -> None:
    """Serialize one committed round into ``sink`` (canonical JSON)."""
    import dataclasses

    from repro.core.serialize import model_to_dict

    payload = {
        "kind": CHECKPOINT_KIND,
        "version": CHECKPOINT_VERSION,
        "round": round_index,
        "params": dataclasses.asdict(params),
        "model": model_to_dict(model),
    }
    sink.save(json.dumps(payload, sort_keys=True, separators=(",", ":")))


def read_checkpoint(sink: CheckpointSink) -> Optional[dict]:
    """Load and validate a checkpoint payload; ``None`` when empty."""
    text = sink.load()
    if text is None:
        return None
    try:
        payload = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise TrainingError(f"corrupt checkpoint payload: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
        raise TrainingError("not a joinboost checkpoint payload")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise TrainingError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    for field in ("round", "params", "model"):
        if field not in payload:
            raise TrainingError(f"checkpoint payload missing {field!r}")
    return payload


def check_resume_params(stored, requested) -> None:
    """Reject a resume whose parameters would change the model.

    Every :class:`TrainParams` field must match the checkpoint except
    the execution-only ones (``num_workers``, ``executor``), which
    affect scheduling but not the trained trees — the determinism
    contract makes worker count *and* executor kind digest-invariant,
    so resuming with a different pool (or on processes instead of
    threads) is fine.
    """
    import dataclasses

    mismatched = {}
    for field in dataclasses.fields(stored):
        if field.name in EXECUTION_ONLY_PARAMS:
            continue
        old = getattr(stored, field.name)
        new = getattr(requested, field.name)
        if old != new:
            mismatched[field.name] = (old, new)
    if mismatched:
        detail = ", ".join(
            f"{name}: checkpoint={old!r} requested={new!r}"
            for name, (old, new) in sorted(mismatched.items())
        )
        raise TrainingError(
            f"resume parameters differ from the checkpoint ({detail}); "
            "continue with the stored parameters or start a fresh run"
        )


def resume_training(
    db,
    graph,
    checkpoint: CheckpointSink,
    params: Optional[dict] = None,
    evaluate_every: int = 0,
    **overrides,
):
    """Continue a checkpointed boosting run from its last committed round.

    ``params``/``overrides`` are optional; when given they must match the
    checkpoint's stored parameters on every model-defining field (see
    :func:`check_resume_params`) — ``num_workers``/``executor`` may
    differ.  With an
    *empty* sink this degrades to a fresh ``train_gradient_boosting``
    run that checkpoints into ``sink``, so callers can use one code path
    for "run, and pick up where we left off if interrupted".
    """
    from repro.core.boosting import train_gradient_boosting
    from repro.core.params import TrainParams

    payload = read_checkpoint(checkpoint)
    if payload is None:
        return train_gradient_boosting(
            db, graph, params, evaluate_every=evaluate_every,
            checkpoint=checkpoint, **overrides,
        )
    stored_params = TrainParams.from_dict(payload["params"])
    if params or overrides:
        requested = TrainParams.from_dict(params, **overrides)
        check_resume_params(stored_params, requested)
        stored_params.num_workers = requested.num_workers
        stored_params.executor = requested.executor
    import dataclasses

    return train_gradient_boosting(
        db, graph, dataclasses.asdict(stored_params),
        evaluate_every=evaluate_every,
        checkpoint=checkpoint, resume_from=payload,
    )
