"""Factorized gradient boosting (Section 4) — the paper's headline feature.

Each iteration trains a decision tree on the (h, g) gradient annotations,
then updates those annotations in place of the residuals:

* **snowflake** schemas update the lifted fact table directly (1-1 with
  R⋈; Section 4.1), supporting every Table 3 loss;
* **galaxy** schemas use Clustered Predicate Trees (Section 4.2.2): every
  cluster fact carries an identity-initialized update annotation, each
  tree's splits are confined to one cluster, and the update multiplies
  that cluster's annotation by lift(lr·p) — valid exactly because the L2
  lift is addition-to-multiplication preserving (Definition 1).
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.core.checkpoint import CheckpointSink, write_checkpoint
from repro.core.params import TrainParams
from repro.core.session import TrainingSessionGuard
from repro.core.predict import feature_frame, rmse_on_join
from repro.core.residual import ResidualUpdater
from repro.core.split import GradientCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.tree import DecisionTreeModel
from repro.factorize.executor import (
    Factorizer,
    configure_encoding_cache,
    prepare_training_paths,
)
from repro.joingraph.clusters import Cluster, cluster_graph
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import rooted_tree
from repro.semiring.gradient import GradientSemiRing
from repro.semiring.losses import Loss, SoftmaxLoss, get_loss
from repro.semiring.variance import VarianceSemiRing


@dataclasses.dataclass
class IterationRecord:
    """Per-iteration bookkeeping for the figure benches."""

    iteration: int
    train_seconds: float
    update_seconds: float
    rmse: Optional[float] = None


class GradientBoostingModel:
    """Trees + init score; identical scoring rule to LightGBM."""

    def __init__(
        self,
        trees: List[DecisionTreeModel],
        init_score: float,
        learning_rate: float,
        loss: Loss,
        history: Optional[List[IterationRecord]] = None,
    ):
        self.trees = trees
        self.init_score = init_score
        self.learning_rate = learning_rate
        self.loss = loss
        self.history = history if history is not None else []
        #: frontier/label/carry-cache accounting from the trainer (set by
        #: the training drivers; read by the Figure 9 bench and CI gates)
        self.frontier_census: Dict[str, object] = {}

    @property
    def required_features(self) -> List[str]:
        seen: List[str] = []
        for tree in self.trees:
            for _, column in tree.referenced_attributes():
                if column not in seen:
                    seen.append(column)
        return seen

    def predict_arrays(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(features.values()))) if features else 0
        score = np.full(n, self.init_score, dtype=np.float64)
        for tree in self.trees:
            score += self.learning_rate * tree.predict_arrays(features)
        return self.loss.predict_transform(score)

    def raw_scores(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(features.values()))) if features else 0
        score = np.full(n, self.init_score, dtype=np.float64)
        for tree in self.trees:
            score += self.learning_rate * tree.predict_arrays(features)
        return score


class MulticlassBoostingModel:
    """K parallel boosting chains with softmax scoring."""

    def __init__(
        self,
        trees_per_class: List[List[DecisionTreeModel]],
        init_scores: List[float],
        learning_rate: float,
        loss: SoftmaxLoss,
    ):
        self.trees_per_class = trees_per_class
        self.init_scores = init_scores
        self.learning_rate = learning_rate
        self.loss = loss

    @property
    def num_classes(self) -> int:
        return len(self.trees_per_class)

    @property
    def required_features(self) -> List[str]:
        seen: List[str] = []
        for chain in self.trees_per_class:
            for tree in chain:
                for _, column in tree.referenced_attributes():
                    if column not in seen:
                        seen.append(column)
        return seen

    def scores(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        n = len(next(iter(features.values()))) if features else 0
        out = np.zeros((n, self.num_classes), dtype=np.float64)
        for k, chain in enumerate(self.trees_per_class):
            out[:, k] = self.init_scores[k]
            for tree in chain:
                out[:, k] += self.learning_rate * tree.predict_arrays(features)
        return out

    def predict_proba(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        return SoftmaxLoss.softmax(self.scores(features))

    def predict_arrays(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        return np.argmax(self.scores(features), axis=1).astype(np.float64)


# ---------------------------------------------------------------------------
# Schema classification
# ---------------------------------------------------------------------------
def is_snowflake(graph: JoinGraph, fact: str) -> bool:
    """True when every edge directed away from ``fact`` is N-to-1."""
    if any(e.multiplicity is None for e in graph.edges):
        graph.analyze()
    parent_map, children, _ = rooted_tree(graph, fact)
    for relation, kids in children.items():
        for child in kids:
            edge = next(
                e for e in graph.edges_of(relation) if e.other(relation) == child
            )
            mult = edge.multiplicity or "m-n"
            if edge.left == relation and mult not in ("n-1", "1-1"):
                return False
            if edge.right == relation and mult not in ("1-n", "1-1"):
                return False
    return True


def _init_score_sql(db, fact_table: str, y: str, loss: Loss) -> float:
    """Base prediction via one aggregate query over the fact table."""
    name = loss.name
    if name in ("l1", "mape"):
        value = db.execute(f"SELECT MEDIAN({y}) AS v FROM {fact_table}").scalar()
        return float(value)
    mean = float(db.execute(f"SELECT AVG({y}) AS v FROM {fact_table}").scalar())
    if name in ("poisson", "gamma", "tweedie"):
        return float(np.log(max(mean, 1e-9)))
    if name == "quantile":
        frame = db.execute(f"SELECT {y} FROM {fact_table}")
        return float(np.quantile(frame.column(y).as_float(), loss.alpha))
    return mean


def _join_mean(db, graph: JoinGraph) -> float:
    """Mean of Y over the non-materialized join (galaxy init score)."""
    ring = VarianceSemiRing()
    factorizer = Factorizer(db, graph, ring)
    factorizer.lift()
    totals = factorizer.totals()
    factorizer.cleanup()
    if totals.get("c", 0.0) <= 0:
        raise TrainingError("join result is empty")
    return totals["s"] / totals["c"]


# ---------------------------------------------------------------------------
# Training driver
# ---------------------------------------------------------------------------
def train_gradient_boosting(
    db,
    graph: JoinGraph,
    params: Optional[dict] = None,
    evaluate_every: int = 0,
    clusters: Optional[Sequence[Cluster]] = None,
    checkpoint: Optional[CheckpointSink] = None,
    resume_from: Optional[dict] = None,
    **overrides,
):
    """Train gradient boosting over a join graph (LightGBM-style entry).

    ``evaluate_every=k`` records training rmse every k iterations in the
    model history (used by the Figure 8c bench).  ``clusters`` forces the
    galaxy/CPT path with the given clustering.  ``checkpoint`` receives
    the partial model after every committed round (snowflake schemas
    only); ``resume_from`` is a validated checkpoint payload — use
    :func:`repro.core.checkpoint.resume_training` rather than passing it
    directly.
    """
    train_params = TrainParams.from_dict(params, **overrides)
    loss = get_loss(train_params.objective, **train_params.loss_kwargs())
    graph.validate()
    configure_encoding_cache(db, train_params.encoding_cache)
    if isinstance(loss, SoftmaxLoss):
        if checkpoint is not None or resume_from is not None:
            raise TrainingError(
                "checkpoint/resume supports single-target snowflake "
                "boosting only; multiclass chains are not checkpointable"
            )
        return _train_multiclass(db, graph, train_params, loss)

    fact = graph.target_relation
    snowflake = is_snowflake(graph, fact) and clusters is None
    if not snowflake and not loss.supports_galaxy:
        raise TrainingError(
            f"objective {loss.name!r} requires a snowflake schema; galaxy "
            "schemas support rmse only (Section 5.1)"
        )
    if snowflake:
        return _train_snowflake(
            db, graph, train_params, loss, evaluate_every,
            checkpoint=checkpoint, resume_from=resume_from,
        )
    if checkpoint is not None or resume_from is not None:
        raise TrainingError(
            "checkpoint/resume supports snowflake schemas only; galaxy "
            "(CPT) training is not checkpointable yet"
        )
    return _train_galaxy(db, graph, train_params, loss, clusters, evaluate_every)


def _train_snowflake(
    db,
    graph: JoinGraph,
    params: TrainParams,
    loss: Loss,
    evaluate_every: int,
    checkpoint: Optional[CheckpointSink] = None,
    resume_from: Optional[dict] = None,
) -> GradientBoostingModel:
    fact = graph.target_relation
    y = graph.target_column

    # Resume: the checkpoint's init score and trees are authoritative —
    # recomputing the init would re-run a query the interrupted run
    # already committed to.
    restored: List[DecisionTreeModel] = []
    start_round = 0
    if resume_from is not None:
        from repro.core.serialize import tree_from_dict

        spec = resume_from["model"]
        if spec.get("kind") != "gradient_boosting":
            raise TrainingError(
                "checkpoint does not hold a gradient-boosting model"
            )
        start_round = int(resume_from["round"])
        restored = [tree_from_dict(t) for t in spec["trees"][:start_round]]
        init = float(spec["init_score"])
    else:
        init = _init_score_sql(db, fact, y, loss)

    rng = np.random.default_rng(params.seed)
    trees: List[DecisionTreeModel] = list(restored)
    history: List[IterationRecord] = []
    model = GradientBoostingModel(
        trees, init, params.learning_rate, loss, history
    )
    if start_round >= params.num_iterations:
        # The checkpoint already covers every round: nothing to train.
        return model

    ring = GradientSemiRing()
    factorizer = Factorizer(db, graph, ring)
    # Any failure from here on — chaos-injected or real — must leave the
    # connection re-trainable: the guard drops the lifted fact, message
    # temps and minted leaf columns before re-raising.
    guard = TrainingSessionGuard(db).register(factorizer)
    with guard:
        init_lit = repr(float(init))
        hessian_constant = loss.hessian_sql("y", "p") == "1"
        lift_exprs: List[Tuple[str, str]] = [("pred", init_lit)]
        lift_exprs += ring.lift_pair_sql(
            loss.hessian_sql(f"t.{y}", init_lit),
            loss.gradient_sql(f"t.{y}", init_lit),
        )
        fact_table = factorizer.lift(lift_exprs)
        # Training setup: factorize every join-key column once (embedded
        # encoding cache) and let external backends build physical access
        # paths — the sqlite connector indexes the lifted fact's join keys
        # and runs ANALYZE here.
        prepare_training_paths(db, graph, factorizer)
        updater = ResidualUpdater(
            db, graph, fact, fact_table, loss, strategy=params.update_strategy
        )
        criterion = GradientCriterion(reg_lambda=params.reg_lambda)
        trainer = DecisionTreeTrainer(db, graph, factorizer, criterion, params)

        # Replay restored rounds: consume the same RNG draws an
        # uninterrupted run would have, and re-apply each restored
        # tree's residual update through the semi-join path (which is
        # float-bit-identical to the leaf-label fast path), so the
        # gradient state entering round ``start_round`` matches exactly.
        for iteration in range(start_round):
            _sample_features(graph, params, rng)
            tree = restored[iteration]
            if loss.supports_galaxy:
                updater.apply_additive(
                    tree, params.learning_rate, component="g",
                    label_column=None,
                )
            else:
                updater.apply_general(
                    tree, params.learning_rate, y_column=y,
                    hessian_constant=hessian_constant,
                    label_column=None,
                )
            factorizer.invalidate_for_relation(fact)
        if restored:
            # Node ids must continue where the interrupted run stopped —
            # they are part of the serialized model, hence of the digest.
            max_node_id = max(
                node.node_id for tree in restored for node in tree.nodes()
            )
            trainer._ids = itertools.count(max_node_id + 1)

        for iteration in range(start_round, params.num_iterations):
            features = _sample_features(graph, params, rng)
            start = time.perf_counter()
            tree = trainer.train(feature_subset=features)
            train_seconds = time.perf_counter() - start

            start = time.perf_counter()
            # The incremental frontier state leaves a current leaf-
            # membership column on the lifted fact: residual updates
            # become one CASE over it instead of per-leaf semi-join
            # scans (falls back when absent).
            label_column = trainer.leaf_label_column(tree)
            if loss.supports_galaxy:
                # L2: the gradient shifts additively by lr·p* — one column.
                updater.apply_additive(
                    tree, params.learning_rate, component="g",
                    label_column=label_column,
                )
            else:
                updater.apply_general(
                    tree, params.learning_rate, y_column=y,
                    hessian_constant=hessian_constant,
                    label_column=label_column,
                )
            factorizer.invalidate_for_relation(fact)
            update_seconds = time.perf_counter() - start

            trees.append(tree)
            model.trees = trees
            record = IterationRecord(iteration, train_seconds, update_seconds)
            if evaluate_every and (iteration + 1) % evaluate_every == 0:
                record.rmse = rmse_on_join(db, graph, model)
            history.append(record)
            if checkpoint is not None:
                # The round is committed (tree appended, residuals
                # shifted): persist the partial model before starting
                # the next one.
                write_checkpoint(checkpoint, model, params, iteration + 1)
        model.frontier_census = {
            **trainer.evaluator.census(),
            "factorizer": factorizer.census(),
        }
        factorizer.cleanup()
    return model


def _train_galaxy(
    db,
    graph: JoinGraph,
    params: TrainParams,
    loss: Loss,
    clusters: Optional[Sequence[Cluster]],
    evaluate_every: int,
) -> GradientBoostingModel:
    if clusters is None:
        clusters = cluster_graph(graph)
    init = _join_mean(db, graph)
    ring = GradientSemiRing()
    factorizer = Factorizer(db, graph, ring)
    # Mid-training failure drops the cluster lifts and message temps.
    with TrainingSessionGuard(db).register(factorizer):
        return _train_galaxy_body(
            db, graph, params, loss, clusters, evaluate_every,
            init, ring, factorizer,
        )


def _train_galaxy_body(
    db, graph, params, loss, clusters, evaluate_every,
    init, ring, factorizer,
) -> GradientBoostingModel:
    target = graph.target_relation
    y = graph.target_column
    # Target lift: g = p0 - y (the L2 gradient at the base score).
    factorizer.lift(ring.lift_pair_sql("1", f"({init!r} - t.{y})"))
    updaters: Dict[str, ResidualUpdater] = {}
    for cluster in clusters:
        if cluster.fact == target:
            updaters[cluster.fact] = ResidualUpdater(
                db, graph, cluster.fact, factorizer.lifted[target], loss,
                strategy=params.update_strategy,
            )
        else:
            table = factorizer.lift_identity(cluster.fact)
            updaters[cluster.fact] = ResidualUpdater(
                db, graph, cluster.fact, table, loss,
                strategy=params.update_strategy,
            )

    prepare_training_paths(db, graph, factorizer)
    criterion = GradientCriterion(reg_lambda=params.reg_lambda)
    trainer = DecisionTreeTrainer(
        db, graph, factorizer, criterion, params, clusters=clusters
    )
    rng = np.random.default_rng(params.seed)

    trees: List[DecisionTreeModel] = []
    history: List[IterationRecord] = []
    model = GradientBoostingModel([], init, params.learning_rate, loss, history)
    for iteration in range(params.num_iterations):
        features = _sample_features(graph, params, rng)
        start = time.perf_counter()
        tree = trainer.train(feature_subset=features)
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cluster = _tree_cluster(tree, clusters, target)
        updaters[cluster.fact].apply_additive(
            tree, params.learning_rate, component=ring.g
        )
        factorizer.invalidate_for_relation(cluster.fact)
        update_seconds = time.perf_counter() - start

        trees.append(tree)
        model.trees = trees
        # Per-iteration rmse would require materializing the galaxy join —
        # exactly what CPT exists to avoid — so galaxy history records
        # timings only (Figure 14 plots time, not accuracy).
        history.append(IterationRecord(iteration, train_seconds, update_seconds))
    model.frontier_census = {
        **trainer.evaluator.census(),
        "factorizer": factorizer.census(),
    }
    factorizer.cleanup()
    return model


def _tree_cluster(
    tree: DecisionTreeModel, clusters: Sequence[Cluster], target: str
) -> Cluster:
    """The cluster a trained tree's splits live in."""
    for node in tree.nodes():
        if node.relation is not None:
            for cluster in clusters:
                if node.relation in cluster:
                    return cluster
    # A stump that never split: update the target's own cluster if any,
    # else the first cluster (the delta applies to all rows uniformly).
    for cluster in clusters:
        if target in cluster:
            return cluster
    return clusters[0]


def _sample_features(
    graph: JoinGraph, params: TrainParams, rng: np.random.Generator
) -> Optional[List[Tuple[str, str]]]:
    features = graph.all_features()
    if params.colsample >= 1.0 or len(features) <= 1:
        return None
    size = max(1, int(round(len(features) * params.colsample)))
    picks = rng.choice(len(features), size=size, replace=False)
    return [features[i] for i in sorted(picks)]


# ---------------------------------------------------------------------------
# Multiclass (softmax) — snowflake only
# ---------------------------------------------------------------------------
def _train_multiclass(
    db, graph: JoinGraph, params: TrainParams, loss: SoftmaxLoss
) -> MulticlassBoostingModel:
    fact = graph.target_relation
    if not is_snowflake(graph, fact):
        raise TrainingError("softmax objectives require a snowflake schema")
    y = graph.target_column
    k = loss.num_classes

    # Init scores: log class priors.
    counts = db.execute(
        f"SELECT {y} AS label, COUNT(*) AS n FROM {fact} GROUP BY {y}"
    )
    total = float(counts["n"].sum())
    prior = np.full(k, 1e-9)
    for label, n in zip(counts["label"], counts["n"]):
        prior[int(label)] = n / total
    init_scores = [float(v) for v in np.log(prior)]

    # One lifted table holds every class's pred/h/g columns.
    rings = [GradientSemiRing(suffix=str(i)) for i in range(k)]
    factorizers = [Factorizer(db, graph, rings[i]) for i in range(k)]
    # Mid-training failure drops the shared lifted table and temps.
    with TrainingSessionGuard(db).register(factorizers[0]):
        return _train_multiclass_body(
            db, graph, params, loss, fact, y, k,
            init_scores, rings, factorizers,
        )


def _train_multiclass_body(
    db, graph, params, loss, fact, y, k, init_scores, rings, factorizers
) -> MulticlassBoostingModel:
    lift_exprs: List[Tuple[str, str]] = []
    prob_exprs = _softmax_exprs([repr(s) for s in init_scores])
    for i in range(k):
        lift_exprs.append((f"pred{i}", repr(init_scores[i])))
        lift_exprs += rings[i].lift_pair_sql(
            loss.hessian_sql_class(prob_exprs[i]),
            loss.gradient_sql_class(f"t.{y}", prob_exprs[i], i),
        )
    fact_table = factorizers[0].lift(lift_exprs)
    for factorizer in factorizers[1:]:
        factorizer.adopt_lifted(fact, fact_table)
    prepare_training_paths(db, graph, factorizers[0])

    trainers = [
        DecisionTreeTrainer(
            db, graph, factorizers[i],
            GradientCriterion(
                reg_lambda=params.reg_lambda,
                weight_component=rings[i].h,
                sum_component=rings[i].g,
            ),
            params,
        )
        for i in range(k)
    ]
    updaters = [
        ResidualUpdater(db, graph, fact, fact_table, loss, strategy="swap")
        for _ in range(k)
    ]

    chains: List[List[DecisionTreeModel]] = [[] for _ in range(k)]
    for _ in range(params.num_iterations):
        new_trees: List[DecisionTreeModel] = []
        for i in range(k):
            tree = trainers[i].train()
            new_trees.append(tree)
        # Update every class's pred, then recompute all probabilities and
        # per-class gradients in one pass.
        for i, tree in enumerate(new_trees):
            _shift_pred(db, graph, fact, fact_table, tree,
                        params.learning_rate, f"pred{i}")
            chains[i].append(tree)
        _refresh_multiclass_gradients(db, fact_table, y, loss, k)
        for factorizer in factorizers:
            factorizer.invalidate_for_relation(fact)
    model = MulticlassBoostingModel(chains, init_scores, params.learning_rate, loss)
    factorizers[0].cleanup()
    return model


def _softmax_exprs(pred_exprs: List[str]) -> List[str]:
    denominator = " + ".join(f"EXP({p})" for p in pred_exprs)
    return [f"(EXP({p}) / ({denominator}))" for p in pred_exprs]


def _shift_pred(
    db, graph, fact, fact_table, tree, learning_rate: float, pred_column: str
) -> None:
    from repro.core.residual import leaf_conditions
    from repro.engine.update import apply_column_update

    pairs = leaf_conditions(graph, fact, tree, fact_alias="t")
    whens = " ".join(
        f"WHEN {condition} THEN t.{pred_column} + "
        f"{learning_rate * leaf.prediction!r}"
        for leaf, condition in pairs
    )
    expr = f"CASE {whens} ELSE t.{pred_column} END"
    result = db.execute(
        f"SELECT {expr} AS {pred_column} FROM {fact_table} AS t",
        tag="residual_update",
    )
    apply_column_update(
        db, fact_table, pred_column, result.column(pred_column).values, "swap"
    )


def _refresh_multiclass_gradients(db, fact_table, y, loss, k) -> None:
    from repro.engine.update import apply_column_update

    prob_exprs = _softmax_exprs([f"t.pred{i}" for i in range(k)])
    select_parts = []
    for i in range(k):
        select_parts.append(
            f"{loss.gradient_sql_class(f't.{y}', prob_exprs[i], i)} AS g{i}"
        )
        select_parts.append(
            f"{loss.hessian_sql_class(prob_exprs[i])} AS h{i}"
        )
    result = db.execute(
        f"SELECT {', '.join(select_parts)} FROM {fact_table} AS t",
        tag="residual_update",
    )
    for i in range(k):
        apply_column_update(db, fact_table, f"g{i}",
                            result.column(f"g{i}").values, "swap")
        apply_column_update(db, fact_table, f"h{i}",
                            result.column(f"h{i}").values, "swap")
