"""Decision tree model structure.

A trained tree is a binary tree of :class:`TreeNode`; internal nodes carry
the split predicate (and the relation it applies to), leaves carry the
prediction.  Leaf predicates along a root-to-leaf path form the node's
selection σ as a per-relation :data:`PredicateMap` — the representation
both residual updates and message passing consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.factorize.predicates import Predicate, PredicateMap, add_predicate


@dataclasses.dataclass
class TreeNode:
    """One node; ``predicate``/``relation`` are None at the root."""

    node_id: int
    depth: int
    predicate: Optional[Predicate] = None
    relation: Optional[str] = None
    parent: Optional["TreeNode"] = None
    left: Optional["TreeNode"] = None   # predicate side
    right: Optional["TreeNode"] = None  # ¬predicate side
    prediction: float = 0.0
    gain: float = 0.0
    # Aggregates over the node's σ(R⋈): semi-ring components by name.
    aggregates: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def path_predicates(self) -> PredicateMap:
        """σ of this node: conjunction of edge predicates from the root."""
        preds: PredicateMap = {}
        chain: List[TreeNode] = []
        cursor: Optional[TreeNode] = self
        while cursor is not None and cursor.predicate is not None:
            chain.append(cursor)
            cursor = cursor.parent
        for node in reversed(chain):
            preds = add_predicate(preds, node.relation, node.predicate)
        return preds

    def sql_condition(self, alias_for) -> str:
        """Render σ as SQL, with ``alias_for(relation)`` supplying aliases."""
        parts = []
        for relation, preds in self.path_predicates().items():
            alias = alias_for(relation)
            parts.extend(p.render(alias) for p in preds)
        return " AND ".join(parts) if parts else "TRUE"


class DecisionTreeModel:
    """A trained decision tree."""

    def __init__(self, root: TreeNode, feature_relations: Dict[str, str]):
        self.root = root
        #: feature column -> owning relation (for prediction and updates)
        self.feature_relations = dict(feature_relations)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def leaves(self) -> List[TreeNode]:
        out: List[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(x for x in (node.left, node.right) if x is not None)
        return sorted(out, key=lambda n: n.node_id)

    def nodes(self) -> List[TreeNode]:
        out: List[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(x for x in (node.left, node.right) if x is not None)
        return sorted(out, key=lambda n: n.node_id)

    @property
    def num_leaves(self) -> int:
        return len(self.leaves())

    def referenced_attributes(self) -> List[Tuple[str, str]]:
        """(relation, column) pairs used by any split — the update
        relation's attribute set A (Section 4.2.1)."""
        seen = []
        for node in self.nodes():
            if node.predicate is not None:
                pair = (node.relation, node.predicate.column)
                if pair not in seen:
                    seen.append(pair)
        return seen

    # ------------------------------------------------------------------
    # Prediction over in-memory feature arrays
    # ------------------------------------------------------------------
    def predict_arrays(self, features: Dict[str, np.ndarray]) -> np.ndarray:
        """Score rows given a column -> array mapping of feature values."""
        n = len(next(iter(features.values()))) if features else 0
        out = np.zeros(n, dtype=np.float64)
        self._route(self.root, np.ones(n, dtype=bool), features, out)
        return out

    def _route(
        self,
        node: TreeNode,
        mask: np.ndarray,
        features: Dict[str, np.ndarray],
        out: np.ndarray,
    ) -> None:
        if node.is_leaf:
            out[mask] = node.prediction
            return
        left = node.left
        if left is None or left.predicate is None:
            raise TrainingError("malformed tree: internal node without split")
        column = left.predicate.column
        if column not in features:
            raise TrainingError(f"missing feature column {column!r}")
        values = np.asarray(features[column])
        matches = _eval_predicate(left.predicate, values)
        self._route(left, mask & matches, features, out)
        self._route(node.right, mask & ~matches, features, out)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        def serialize(node: TreeNode) -> dict:
            data = {
                "node_id": node.node_id,
                "depth": node.depth,
                "prediction": node.prediction,
                "gain": node.gain,
                "aggregates": dict(node.aggregates),
            }
            if node.predicate is not None:
                data["relation"] = node.relation
                data["predicate"] = node.predicate.render()
            if not node.is_leaf:
                data["left"] = serialize(node.left)
                data["right"] = serialize(node.right)
            return data

        return {"tree": serialize(self.root), "features": self.feature_relations}

    def dump(self) -> str:
        """Readable indented text rendering (LightGBM-dump flavoured)."""
        lines: List[str] = []

        def walk(node: TreeNode, indent: int) -> None:
            pad = "  " * indent
            label = (
                f"{node.predicate.render()} [{node.relation}]"
                if node.predicate is not None
                else "root"
            )
            if node.is_leaf:
                lines.append(f"{pad}{label} -> leaf value={node.prediction:.6g}")
            else:
                lines.append(f"{pad}{label} (gain={node.gain:.6g})")
                walk(node.left, indent + 1)
                walk(node.right, indent + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def _eval_predicate(pred: Predicate, values: np.ndarray) -> np.ndarray:
    """Vectorized predicate evaluation with NULL routing."""
    if values.dtype == object:
        nulls = np.array([v is None for v in values])
        comparable = values
    else:
        values = values.astype(np.float64, copy=False)
        nulls = np.isnan(values)
        comparable = values
    with np.errstate(invalid="ignore"):
        if pred.op == "<=":
            mask = comparable <= pred.value
        elif pred.op == "<":
            mask = comparable < pred.value
        elif pred.op == ">":
            mask = comparable > pred.value
        elif pred.op == ">=":
            mask = comparable >= pred.value
        elif pred.op == "=":
            mask = comparable == pred.value
        elif pred.op == "!=":
            mask = comparable != pred.value
        elif pred.op == "IN":
            mask = np.isin(comparable, np.asarray(pred.value))
        elif pred.op == "NOT IN":
            mask = ~np.isin(comparable, np.asarray(pred.value))
        elif pred.op == "IS NULL":
            return nulls
        elif pred.op == "IS NOT NULL":
            return ~nulls
        else:  # pragma: no cover - Predicate validates ops
            raise TrainingError(f"unsupported op {pred.op}")
    mask = np.asarray(mask, dtype=bool)
    mask[nulls] = pred.include_null
    return mask
