"""LightGBM-compatible training parameters (Section 5.1, API compatibility).

JoinBoost "accepts the same training parameters as LightGBM"; this module
parses the common aliases into a validated :class:`TrainParams`.  Unknown
keys raise — silently ignoring a typo'd parameter is how models quietly
train wrong.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional, Union

from repro.exceptions import TrainingError

#: environment default for ``num_workers`` — lets CI force the whole test
#: suite through the parallel path (explicit parameters still win)
NUM_WORKERS_ENV = "JOINBOOST_NUM_WORKERS"

#: environment default for ``executor`` — lets CI force the whole test
#: suite through the process pool (explicit parameters still win)
EXECUTOR_ENV = "JOINBOOST_EXECUTOR"

_ALIASES = {
    "objective": "objective",
    "loss": "objective",
    "application": "objective",
    "num_leaves": "num_leaves",
    "max_leaves": "num_leaves",
    "max_leaf": "num_leaves",
    "max_depth": "max_depth",
    "learning_rate": "learning_rate",
    "eta": "learning_rate",
    "shrinkage_rate": "learning_rate",
    "n_estimators": "num_iterations",
    "num_iterations": "num_iterations",
    "num_trees": "num_iterations",
    "num_rounds": "num_iterations",
    "num_boost_round": "num_iterations",
    "reg_lambda": "reg_lambda",
    "lambda_l2": "reg_lambda",
    "lambda": "reg_lambda",
    "reg_alpha": "min_split_gain",
    "min_gain_to_split": "min_split_gain",
    "min_split_gain": "min_split_gain",
    "min_data_in_leaf": "min_child_samples",
    "min_child_samples": "min_child_samples",
    "bagging_fraction": "subsample",
    "subsample": "subsample",
    "sample_rate": "subsample",
    "feature_fraction": "colsample",
    "colsample_bytree": "colsample",
    "colsample": "colsample",
    "growth": "growth",
    "tree_learner_growth": "growth",
    "max_bin": "max_bin",
    "num_class": "num_class",
    "num_classes": "num_class",
    "seed": "seed",
    "random_state": "seed",
    "huber_delta": "huber_delta",
    "alpha": "quantile_alpha",
    "quantile_alpha": "quantile_alpha",
    "fair_c": "fair_c",
    "tweedie_variance_power": "tweedie_rho",
    "tweedie_rho": "tweedie_rho",
    "missing": "missing",
    "update_strategy": "update_strategy",
    "split_batching": "split_batching",
    "batch_splits": "split_batching",
    "frontier_batching": "split_batching",
    "frontier_state": "frontier_state",
    "leaf_state": "frontier_state",
    "encoding_cache": "encoding_cache",
    "key_encoding_cache": "encoding_cache",
    "num_workers": "num_workers",
    "workers": "num_workers",
    "num_threads": "num_workers",
    "n_jobs": "num_workers",
    "executor": "executor",
    "task_executor": "executor",
}


@dataclasses.dataclass
class TrainParams:
    """Validated training configuration."""

    objective: str = "regression"
    num_leaves: int = 8
    max_depth: int = -1  # -1 = unlimited (bounded by num_leaves)
    learning_rate: float = 0.1
    num_iterations: int = 100
    reg_lambda: float = 0.0
    min_split_gain: float = 0.0
    min_child_samples: int = 1
    subsample: float = 1.0
    colsample: float = 1.0
    growth: str = "best-first"  # or "depth-wise"
    max_bin: Optional[int] = None  # None = exact (group-by per value)
    num_class: int = 2
    seed: int = 0
    huber_delta: float = 1.0
    quantile_alpha: float = 0.5
    fair_c: float = 1.0
    tweedie_rho: float = 1.5
    missing: str = "right"  # NULL routing: "right" (default) or "both"
    update_strategy: str = "swap"  # residual updates: update|create|swap|naive
    # Frontier split evaluation: "auto" batches each round into one query
    # per relation where the schema allows (falling back silently), "on"
    # demands batching (raising when unavailable), "off" keeps the classic
    # one query per (leaf, feature).
    split_batching: str = "auto"
    # Leaf labeling for batched rounds: "incremental" maintains a
    # persistent leaf-membership column via narrow delta UPDATEs (falling
    # back to rebuild when the backend or tree cannot support it);
    # "rebuild" re-materializes a labeled fact copy every round.
    frontier_state: str = "incremental"
    # Version-stamped encoded-key cache (embedded engine): "auto"/"on"
    # factorize each join/group-by column once per training run; "off"
    # re-encodes per query (the pre-PR4 behavior, kept for ablations and
    # the CI parity gate).  External backends ignore the knob.
    encoding_cache: str = "auto"
    # Inter-query parallelism (Section 5.5.3): the worker-pool size the
    # dependency-DAG scheduler executes with.  "auto" = min(4, cpus);
    # 1 = exactly the serial path (no threads spawned — the parity gates
    # pin it).  The JOINBOOST_NUM_WORKERS env var supplies the default
    # when the caller does not set the parameter (the CI race-smoke leg
    # forces 4 that way); an explicit parameter always wins.
    num_workers: Union[int, str] = "auto"
    # Which pool the scheduler's workers are: "thread" (the default —
    # sqlite/duckdb release the GIL in their C cores) or "process" (real
    # OS processes behind the supervised pool in engine/procpool; only
    # engages on backends whose capabilities report process_safe, and
    # falls back to threads otherwise).  JOINBOOST_EXECUTOR supplies the
    # default when the caller does not set the parameter.
    executor: str = "thread"

    def __post_init__(self):
        if self.num_leaves < 2:
            raise TrainingError("num_leaves must be at least 2")
        if self.num_iterations < 1:
            raise TrainingError("num_iterations must be at least 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise TrainingError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise TrainingError("subsample must be in (0, 1]")
        if not 0.0 < self.colsample <= 1.0:
            raise TrainingError("colsample must be in (0, 1]")
        if self.growth not in ("best-first", "depth-wise"):
            raise TrainingError(
                f"growth must be 'best-first' or 'depth-wise', got {self.growth!r}"
            )
        if self.missing not in ("right", "both"):
            raise TrainingError("missing must be 'right' or 'both'")
        if self.update_strategy not in ("update", "create", "swap", "naive"):
            raise TrainingError(
                f"unknown update_strategy {self.update_strategy!r}"
            )
        if self.split_batching not in ("auto", "on", "off"):
            raise TrainingError(
                f"split_batching must be 'auto', 'on' or 'off', "
                f"got {self.split_batching!r}"
            )
        if self.frontier_state not in ("incremental", "rebuild"):
            raise TrainingError(
                f"frontier_state must be 'incremental' or 'rebuild', "
                f"got {self.frontier_state!r}"
            )
        if self.encoding_cache not in ("auto", "on", "off"):
            raise TrainingError(
                f"encoding_cache must be 'auto', 'on' or 'off', "
                f"got {self.encoding_cache!r}"
            )
        if self.max_bin is not None and self.max_bin < 2:
            raise TrainingError("max_bin must be at least 2")
        if self.min_child_samples < 1:
            raise TrainingError("min_child_samples must be at least 1")
        if self.num_workers != "auto":
            try:
                self.num_workers = int(self.num_workers)
            except (TypeError, ValueError):
                raise TrainingError(
                    f"num_workers must be 'auto' or a positive integer, "
                    f"got {self.num_workers!r}"
                ) from None
            if self.num_workers < 1:
                raise TrainingError(
                    f"num_workers must be at least 1, got {self.num_workers}"
                )
        if self.executor not in ("thread", "process"):
            raise TrainingError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )

    def resolved_workers(self) -> int:
        """The concrete worker-pool size for this run."""
        if self.num_workers == "auto":
            return max(1, min(4, os.cpu_count() or 1))
        return int(self.num_workers)

    @staticmethod
    def from_dict(params: Optional[Dict] = None, **overrides) -> "TrainParams":
        """Parse a LightGBM-style parameter dict (aliases accepted)."""
        merged: Dict[str, object] = {}
        for source in (params or {}), overrides:
            for key, value in source.items():
                canonical = _ALIASES.get(key.lower())
                if canonical is None:
                    raise TrainingError(f"unknown training parameter {key!r}")
                merged[canonical] = value
        if "num_workers" not in merged:
            env = (os.environ.get(NUM_WORKERS_ENV) or "").strip()
            if env:
                merged["num_workers"] = env
        if "executor" not in merged:
            env = (os.environ.get(EXECUTOR_ENV) or "").strip()
            if env:
                merged["executor"] = env
        return TrainParams(**merged)  # type: ignore[arg-type]

    def loss_kwargs(self) -> Dict[str, object]:
        """Constructor arguments for the configured objective's Loss."""
        name = self.objective.lower()
        if name == "huber":
            return {"delta": self.huber_delta}
        if name == "quantile":
            return {"alpha": self.quantile_alpha}
        if name == "fair":
            return {"c": self.fair_c}
        if name == "tweedie":
            return {"rho": self.tweedie_rho}
        if name in ("softmax", "multiclass"):
            return {"num_classes": self.num_class}
        return {}
