"""Pivot-transformation optimization (Appendix D.1 / Figure 19).

Sparse attribute-value tables (IMDB's ``person_info``: one row per
(person, type, value)) would naively be pivoted into a wide, mostly-NULL
matrix before training.  Cunningham et al.'s rewrite avoids that: an
aggregation over the pivoted column ``<type>`` is the same aggregation
over the original table *filtered to that type* — a selection instead of
a materialized pivot.

Two entry points:

* :func:`naive_pivot` — materializes the wide table (the slow baseline);
* :class:`PivotedRelation` — registers virtual pivot features; its
  :meth:`absorb_feature` runs the rewritten selection-based aggregation.

The paper reports a 3.8× node-split speedup from this rewrite on
``Person_Info``; ``tests/test_pivot.py`` checks equivalence and the bench
in the same file's timing harness exercises the gap.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import TrainingError


def naive_pivot(
    db,
    table: str,
    key: str,
    type_column: str,
    value_column: str,
    out_name: Optional[str] = None,
) -> str:
    """Materialize the wide pivot table (one column per type value).

    This is the baseline the rewrite avoids: the output has one row per
    key and one (mostly NULL) column per distinct type.
    """
    source = db.table(table)
    types = sorted(
        {str(v) for v in source.column(type_column).values}
    )
    keys = source.column(key).values
    type_vals = source.column(type_column).values
    values = source.column(value_column).as_float()

    unique_keys = np.unique(keys)
    index = {k: i for i, k in enumerate(unique_keys)}
    data: Dict[str, np.ndarray] = {key: unique_keys}
    for type_name in types:
        column = np.full(len(unique_keys), np.nan)
        mask = np.array([str(v) == type_name for v in type_vals])
        for k, v in zip(keys[mask], values[mask]):
            column[index[k]] = v
        data[_pivot_column(type_name)] = column
    out_name = out_name or db.temp_name(f"pivot_{table}")
    db.create_table(out_name, data)
    return out_name


def _pivot_column(type_name: str) -> str:
    return f"pv_{type_name}"


@dataclasses.dataclass
class PivotedRelation:
    """Virtual pivot over an attribute-value table.

    ``features()`` lists the virtual columns; ``absorb_feature`` computes
    the per-value (c, s) aggregate of a virtual feature by *selecting*
    the type — no pivot is ever materialized (the Figure 19 rewrite).
    """

    db: object
    table: str
    key: str
    type_column: str
    value_column: str

    def feature_types(self) -> List[str]:
        result = self.db.execute(
            f"SELECT DISTINCT {self.type_column} AS t FROM {self.table} "
            "ORDER BY t"
        )
        return [str(v) for v in result["t"]]

    def features(self) -> List[str]:
        return [_pivot_column(t) for t in self.feature_types()]

    def absorb_feature(
        self, feature: str, target_sql: str = "1"
    ) -> "object":
        """Per-value aggregate of a virtual pivot feature.

        Equivalent to ``SELECT pv_t, COUNT(*), SUM(target) FROM pivot
        GROUP BY pv_t`` but rewritten as a selection on the original
        narrow table: ``WHERE type = t GROUP BY value``.
        """
        type_name = self._type_of(feature)
        return self.db.execute(
            f"SELECT {self.value_column} AS {feature}, COUNT(*) AS c, "
            f"SUM({target_sql}) AS s "
            f"FROM {self.table} WHERE {self.type_column} = '{type_name}' "
            f"GROUP BY {self.value_column}",
            tag="feature",
        )

    def _type_of(self, feature: str) -> str:
        if not feature.startswith("pv_"):
            raise TrainingError(f"{feature!r} is not a virtual pivot feature")
        return feature[len("pv_"):]


def aggregate_over_naive_pivot(db, pivot_table: str, feature: str,
                               target_sql: str = "1"):
    """The unrewritten form: aggregate the materialized pivot column."""
    return db.execute(
        f"SELECT {feature}, COUNT(*) AS c, SUM({target_sql}) AS s "
        f"FROM {pivot_table} WHERE {feature} IS NOT NULL "
        f"GROUP BY {feature}",
        tag="feature",
    )
