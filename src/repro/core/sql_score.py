"""SQL scoring: trained models as pure ``CASE WHEN`` expressions.

The paper's duality (and Cromp et al.'s relational inference): a trained
tree is just a nested conditional over feature columns, so scoring can be
*pushed into any connected DBMS* as one SELECT — no model runtime on the
data path, no denormalization.  This module grows the serialization seed
(:mod:`repro.core.serialize`) and the join-SQL seed
(:mod:`repro.baselines.export`) into a scoring exporter:

* :func:`tree_case_sql` / :func:`model_score_sql` render any trained
  model class as a scoring expression in the engine-neutral SQL surface
  every connector translates (nested ``CASE WHEN``, the predicates'
  explicit NULL routing, float literals via ``repr`` so values round-trip
  bit-exactly);
* :func:`join_tree_sql` builds the join clause over the normalized
  schema — ``LEFT JOIN`` for scoring (a dangling fact key must surface
  as NULL and route by the model's missing direction, not drop the row),
  plain ``JOIN`` for the baselines' materialization path which reuses
  this builder;
* :func:`sql_scores` executes the scoring SELECT on a Connector with a
  minted row-id column so returned scores align with fact rows on any
  backend, and :func:`score_by_key` is the semi-join "score user id X"
  path: filter the fact table, LEFT JOIN only the dimension rows that
  user's keys reach, score in the DBMS.

NULL semantics carry over for free: ``Predicate.render`` emits explicit
``OR ... IS NULL`` / ``AND ... IS NOT NULL`` routing, and a bare
comparison against NULL is not-true in SQL — exactly the
``include_null=False`` branch of the vectorized evaluator, so SQL scores
are bit-identical to the recursive and compiled paths (enforced by
``tests/test_predict_compiled.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.core.boosting import GradientBoostingModel, MulticlassBoostingModel
from repro.core.forest import RandomForestModel
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.factorize.predicates import _sql_literal
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, rooted_tree

AliasFor = Callable[[str], str]

#: losses whose prediction transform is the exponential inverse link;
#: everything else scores on the identity transform.  (np.exp and the
#: backend's EXP may differ in the last ulp — the bit-identical parity
#: contract covers identity-transform objectives and softmax argmax.)
_EXP_LINK_LOSSES = ("poisson", "gamma", "tweedie")


def _float_lit(value: float) -> str:
    """Round-trippable float literal (repr is exact for float64)."""
    return repr(float(value))


# ---------------------------------------------------------------------------
# Expression rendering
# ---------------------------------------------------------------------------
def tree_case_sql(model: DecisionTreeModel, alias_for: AliasFor) -> str:
    """One tree as a nested CASE expression.

    Routing matches the vectorized evaluator exactly: the left child's
    predicate (with its explicit NULL routing) selects the THEN branch,
    everything else — including NULL comparisons — falls to ELSE.
    """

    def render(node: TreeNode) -> str:
        if node.is_leaf:
            return _float_lit(node.prediction)
        left = node.left
        right = node.right
        if left is None or left.predicate is None or right is None:
            raise TrainingError("malformed tree: internal node without split")
        relation = left.relation
        alias = alias_for(relation) if relation is not None else ""
        condition = left.predicate.render(alias)
        return (
            f"CASE WHEN {condition} THEN {render(left)} "
            f"ELSE {render(right)} END"
        )

    return render(model.root)


def _boosting_chain_sql(
    trees: Sequence[DecisionTreeModel],
    init_score: float,
    learning_rate: float,
    alias_for: AliasFor,
) -> str:
    """``init + lr*T1 + lr*T2 + ...`` — left-associated like the numpy
    accumulation, so SQL evaluation order matches float for float."""
    parts = [_float_lit(init_score)]
    lr = _float_lit(learning_rate)
    for tree in trees:
        parts.append(f"{lr} * ({tree_case_sql(tree, alias_for)})")
    return "(" + " + ".join(parts) + ")"


def _argmax_sql(score_exprs: Sequence[str]) -> str:
    """First-max argmax over class scores, as ``np.argmax`` resolves
    ties: class k wins when it is >= every later class and no earlier
    class already won."""
    k = len(score_exprs)
    whens = []
    for i in range(k - 1):
        condition = " AND ".join(
            f"{score_exprs[i]} >= {score_exprs[j]}" for j in range(i + 1, k)
        )
        whens.append(f"WHEN {condition} THEN {_float_lit(float(i))}")
    return (
        "CASE " + " ".join(whens) + f" ELSE {_float_lit(float(k - 1))} END"
    )


def model_score_sql(model: object, alias_for: AliasFor) -> str:
    """Any trained model class as one SQL scoring expression."""
    if isinstance(model, DecisionTreeModel):
        return f"({tree_case_sql(model, alias_for)})"
    if isinstance(model, GradientBoostingModel):
        raw = _boosting_chain_sql(
            model.trees, model.init_score, model.learning_rate, alias_for
        )
        if model.loss.name in _EXP_LINK_LOSSES:
            return f"EXP({raw})"
        return raw
    if isinstance(model, MulticlassBoostingModel):
        class_exprs = [
            _boosting_chain_sql(
                chain, model.init_scores[k], model.learning_rate, alias_for
            )
            for k, chain in enumerate(model.trees_per_class)
        ]
        return _argmax_sql(class_exprs)
    if isinstance(model, RandomForestModel):
        if not model.trees:
            raise TrainingError("forest has no trees")
        tree_exprs = [f"({tree_case_sql(t, alias_for)})" for t in model.trees]
        if not model.classification:
            total = " + ".join(tree_exprs)
            return f"(({total}) / {_float_lit(float(len(tree_exprs)))})"
        vote_exprs = []
        for k in range(model.num_classes):
            votes = " + ".join(
                f"CASE WHEN {t} = {_float_lit(float(k))} THEN 1.0 "
                "ELSE 0.0 END"
                for t in tree_exprs
            )
            vote_exprs.append(f"({votes})")
        return _argmax_sql(vote_exprs)
    raise TrainingError(f"cannot render SQL for {type(model).__name__}")


# ---------------------------------------------------------------------------
# Join-clause construction over the normalized schema
# ---------------------------------------------------------------------------
def join_tree_sql(
    graph: JoinGraph,
    fact: str,
    relations: Optional[Sequence[str]] = None,
    join_kind: str = "JOIN",
    fact_alias: str = "t",
) -> Tuple[Dict[str, str], List[str]]:
    """Aliases + join clauses walking the join tree rooted at ``fact``.

    ``relations`` restricts the walk to the relations on paths from the
    fact to any listed relation (None joins everything).  ``join_kind``
    is ``"JOIN"`` for the baselines' materialization and ``"LEFT JOIN"``
    for scoring, where dangling keys must produce NULL feature rows.
    """
    parent_map, children, _ = rooted_tree(graph, fact)
    keep: Optional[set] = None
    if relations is not None:
        keep = set()
        for relation in relations:
            cursor: Optional[str] = relation
            while cursor is not None and cursor not in keep:
                keep.add(cursor)
                cursor = parent_map.get(cursor)
    aliases = {fact: fact_alias}
    joins: List[str] = []
    frontier = [fact]
    while frontier:
        current = frontier.pop(0)
        for child in children[current]:
            if keep is not None and child not in keep:
                continue
            aliases[child] = f"r{len(aliases)}"
            edge = edge_between(graph, current, child)
            condition = " AND ".join(
                f"{aliases[current]}.{a} = {aliases[child]}.{b}"
                for a, b in zip(edge.keys_for(current), edge.keys_for(child))
            )
            joins.append(
                f"{join_kind} {child} AS {aliases[child]} ON {condition}"
            )
            frontier.append(child)
    return aliases, joins


def _model_relations(model: object, graph: JoinGraph, fact: str) -> List[str]:
    """Relations whose columns any tree of ``model`` references."""
    trees: List[DecisionTreeModel]
    if isinstance(model, DecisionTreeModel):
        trees = [model]
    elif isinstance(model, MulticlassBoostingModel):
        trees = [t for chain in model.trees_per_class for t in chain]
    elif isinstance(model, (GradientBoostingModel, RandomForestModel)):
        trees = list(model.trees)
    else:
        raise TrainingError(f"cannot render SQL for {type(model).__name__}")
    seen: List[str] = []
    for tree in trees:
        for relation, _ in tree.referenced_attributes():
            if relation is not None and relation not in seen:
                seen.append(relation)
    return [r for r in seen if r != fact]


def scoring_select_sql(
    graph: JoinGraph,
    model: object,
    fact: str,
    fact_table: Optional[str] = None,
    select_prefix: Sequence[str] = (),
    where: Optional[str] = None,
    order_by: Optional[str] = None,
    score_alias: str = "jb_score",
) -> str:
    """The full scoring SELECT: prefix columns + the model expression,
    LEFT JOINed over exactly the relations the model references.

    ``fact_table`` substitutes a physical table (e.g. a temp copy with a
    minted row id) for the fact while keeping the graph's edges — its
    join-key and feature columns must match the fact's names.
    """
    relations = _model_relations(model, graph, fact)
    aliases, joins = join_tree_sql(
        graph, fact, relations=relations, join_kind="LEFT JOIN"
    )

    def alias_for(relation: str) -> str:
        if relation not in aliases:
            raise TrainingError(
                f"model references relation {relation!r} outside the join "
                f"tree rooted at {fact!r}"
            )
        return aliases[relation]

    expr = model_score_sql(model, alias_for)
    select_parts = list(select_prefix) + [f"{expr} AS {score_alias}"]
    source = fact_table or fact
    sql = (
        f"SELECT {', '.join(select_parts)} "
        f"FROM {source} AS {aliases[fact]} {' '.join(joins)}"
    ).rstrip()
    if where:
        sql += f" WHERE {where}"
    if order_by:
        sql += f" ORDER BY {order_by}"
    return sql


# ---------------------------------------------------------------------------
# Execution on a Connector
# ---------------------------------------------------------------------------
def _export_column(col) -> np.ndarray:
    """A stored column as arrays any connector's create_table accepts,
    with NULLs preserved (masked ints surface as NaN, STR keeps None)."""
    if col.ctype.name == "STR":
        return col.values
    if getattr(col, "valid", None) is not None:
        return col.as_float()
    return col.values


def _scoring_input_columns(
    db, graph: JoinGraph, model: object, fact: str
) -> Dict[str, np.ndarray]:
    """Fact columns the scoring query touches: join keys of every edge at
    the fact plus fact-owned referenced features."""
    table = db.table(fact)
    names = set()
    for edge in graph.edges_of(fact):
        names.update(edge.keys_for(fact))
    for tree_relation, column in _referenced_columns(model):
        if tree_relation in (None, fact) and column in table.column_names():
            names.add(column)
    return {name: _export_column(table.column(name)) for name in sorted(names)}


def _referenced_columns(model: object) -> List[Tuple[Optional[str], str]]:
    if isinstance(model, DecisionTreeModel):
        trees = [model]
    elif isinstance(model, MulticlassBoostingModel):
        trees = [t for chain in model.trees_per_class for t in chain]
    else:
        trees = list(getattr(model, "trees", []))
    out: List[Tuple[Optional[str], str]] = []
    for tree in trees:
        out.extend(tree.referenced_attributes())
    return out


def sql_scores(
    db,
    graph: JoinGraph,
    model,
    fact: Optional[str] = None,
    tag: str = "score",
) -> np.ndarray:
    """Score every fact row inside the DBMS; returns fact-row-aligned
    float64 scores.

    A temp copy of the fact's scoring columns gains a minted ``jb_sid``
    row id, so alignment survives backends that do not promise scan
    order; the copy is dropped before returning.  The scoring SELECT
    runs through ``execute_read`` — pooled reader connections on
    backends that have them — tagged with ``tag`` so fault injection
    and tracing can target serving traffic specifically.
    """
    fact = fact or graph.target_relation
    data = _scoring_input_columns(db, graph, model, fact)
    n = db.table(fact).num_rows()
    data["jb_sid"] = np.arange(n, dtype=np.int64)
    temp = db.temp_name(f"score_{fact}")
    db.create_table(temp, data)
    try:
        sql = scoring_select_sql(
            graph, model, fact,
            fact_table=temp,
            select_prefix=["t.jb_sid AS jb_sid"],
            order_by="jb_sid",
        )
        result = db.execute_read(sql, tag=tag)
        if result is None:
            raise TrainingError("scoring query returned no result")
        sid = result.column("jb_sid").values.astype(np.int64)
        scores = result.column("jb_score").as_float()
        out = np.empty(n, dtype=np.float64)
        out[sid] = scores
        return out
    finally:
        db.drop_table(temp, if_exists=True)


def score_by_key(
    db,
    graph: JoinGraph,
    model,
    keys: Dict[str, object],
    fact: Optional[str] = None,
    extra_columns: Sequence[str] = (),
    tag: str = "score",
):
    """The online semi-join path: score the fact rows matching ``keys``.

    ``keys`` maps fact columns to values ("score user id X"); only the
    matching fact rows and the dimension rows their join keys reach are
    touched — no temp copy, no denormalization.  Returns the Relation
    with the key columns, any ``extra_columns``, and ``jb_score``.
    """
    fact = fact or graph.target_relation
    if not keys:
        raise TrainingError("score_by_key needs at least one key column")
    table = db.table(fact)
    for column in list(keys) + list(extra_columns):
        if column not in table.column_names():
            raise TrainingError(
                f"fact table {fact!r} has no column {column!r}"
            )
    condition = " AND ".join(
        f"t.{column} = {_sql_literal(value)}"  # type: ignore[arg-type]
        for column, value in keys.items()
    )
    prefix = [f"t.{c} AS {c}" for c in list(keys) + list(extra_columns)]
    sql = scoring_select_sql(
        graph, model, fact, select_prefix=prefix, where=condition
    )
    result = db.execute_read(sql, tag=tag)
    if result is None:
        raise TrainingError("scoring query returned no result")
    return result
