"""Decision-tree training — the paper's Algorithm 1.

Best-first growth keeps a max-heap of leaf nodes ordered by the criterion
reduction of their best split; each iteration pops the best leaf, splits
it, finds the best splits of the two children, and pushes them back.
Depth-wise growth orders by (depth, node id) instead.

All heavy computation — the best-split queries (line 14) — is SQL against
the factorizer; the Python driver is bookkeeping, exactly the division of
labour of Figure 4's ML Compiler.  Split search goes through the
:class:`~repro.core.frontier.FrontierEvaluator`, which batches each
evaluation round into one query per relation on snowflake schemas
(``split_batching="auto"``, the default) and otherwise issues the
classic one query per (leaf, feature).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TrainingError
from repro.core.frontier import FrontierEvaluator
from repro.core.params import TrainParams
from repro.core.split import Criterion, SplitCandidate, SplitFinder
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.factorize.executor import Factorizer
from repro.factorize.predicates import PredicateMap
from repro.joingraph.clusters import Cluster
from repro.joingraph.graph import JoinGraph


class DecisionTreeTrainer:
    """Trains one factorized decision tree over a join graph."""

    def __init__(
        self,
        db,
        graph: JoinGraph,
        factorizer: Factorizer,
        criterion: Criterion,
        params: TrainParams,
        clusters: Optional[Sequence[Cluster]] = None,
    ):
        self.db = db
        self.graph = graph
        self.factorizer = factorizer
        self.criterion = criterion
        self.params = params
        self.clusters = list(clusters) if clusters else None
        self.finder = SplitFinder(
            db,
            factorizer,
            criterion,
            min_child_samples=params.min_child_samples,
            missing=params.missing,
        )
        self.evaluator = FrontierEvaluator(
            db,
            graph,
            factorizer,
            criterion,
            self.finder,
            mode=params.split_batching,
            missing=params.missing,
            min_child_samples=params.min_child_samples,
            state_mode=params.frontier_state,
            num_workers=params.resolved_workers(),
            executor=params.executor,
        )
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    def train(
        self,
        feature_subset: Optional[Sequence[Tuple[str, str]]] = None,
        base_predicates: Optional[PredicateMap] = None,
        totals: Optional[Dict[str, float]] = None,
    ) -> DecisionTreeModel:
        """Grow one tree.

        ``feature_subset`` restricts candidate features (random forests'
        feature sampling); ``base_predicates`` precondition the whole tree
        (bagging by predicate); ``totals`` are the root aggregates if the
        caller already knows them.
        """
        features = list(feature_subset or self.graph.all_features())
        if not features:
            raise TrainingError("no features to split on")
        base_predicates = base_predicates or {}
        if totals is None:
            totals = self.factorizer.totals(base_predicates)

        root = TreeNode(node_id=next(self._ids), depth=0, aggregates=dict(totals))
        root.prediction = self.criterion.leaf_value(totals)
        model = DecisionTreeModel(
            root, {f: rel for rel, f in features}
        )
        # New tree: the incremental frontier state re-roots its persistent
        # leaf-membership column on the first batched round.
        self.evaluator.begin_tree(root, base_predicates)

        allowed = list(features)
        heap: List[Tuple[float, int, TreeNode, SplitCandidate]] = []
        candidate = self.evaluator.best_splits(
            [root], base_predicates, allowed
        ).get(root.node_id)
        if candidate is not None:
            heapq.heappush(heap, self._entry(root, candidate))

        num_leaves = 1
        while heap and num_leaves < self.params.num_leaves:
            _, _, node, cand = heapq.heappop(heap)
            if cand.gain <= self.params.min_split_gain:
                break
            if self.clusters is not None and len(allowed) == len(features):
                # CPT: the first realized split pins the cluster (§4.2.2).
                allowed = self._restrict_to_cluster(cand.relation, features)
            self._apply_split(node, cand)
            # Delta label update: relabel only the split leaf's rows.
            self.evaluator.notify_split(node)
            num_leaves += 1
            # Both children are one frontier round: batched mode turns the
            # 2 x |features| per-leaf queries into one query per relation.
            frontier = [
                child
                for child in (node.left, node.right)
                if self.params.max_depth < 0 or child.depth < self.params.max_depth
            ]
            child_candidates = self.evaluator.best_splits(
                frontier, base_predicates, allowed
            )
            for child in frontier:
                child_cand = child_candidates.get(child.node_id)
                if child_cand is not None and child_cand.gain > self.params.min_split_gain:
                    heapq.heappush(heap, self._entry(child, child_cand))
        return model

    def leaf_label_column(self, model: DecisionTreeModel) -> Optional[str]:
        """The persistent leaf-membership column for the tree just
        trained, or None when labels are unavailable/stale.  The boosting
        driver hands it to the residual updater's ``CASE jb_leaf`` fast
        path instead of per-leaf semi-join scans."""
        return self.evaluator.leaf_label_column(model)

    # ------------------------------------------------------------------
    def _entry(self, node: TreeNode, cand: SplitCandidate):
        if self.params.growth == "depth-wise":
            priority = (node.depth, node.node_id)
        else:  # best-first: largest gain first
            priority = (-cand.gain, node.node_id)
        return (priority, node.node_id, node, cand)

    def _apply_split(self, node: TreeNode, cand: SplitCandidate) -> None:
        node.gain = cand.gain
        left = TreeNode(
            node_id=next(self._ids),
            depth=node.depth + 1,
            predicate=cand.predicate,
            relation=cand.relation,
            parent=node,
            aggregates=dict(cand.left_aggregates),
        )
        right = TreeNode(
            node_id=next(self._ids),
            depth=node.depth + 1,
            predicate=cand.predicate.negate(),
            relation=cand.relation,
            parent=node,
            aggregates=dict(cand.right_aggregates),
        )
        left.prediction = self.criterion.leaf_value(left.aggregates)
        right.prediction = self.criterion.leaf_value(right.aggregates)
        node.left, node.right = left, right

    def _restrict_to_cluster(
        self, relation: str, features: Sequence[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        """Features of the (first) cluster containing ``relation``."""
        for cluster in self.clusters or ():
            if relation in cluster:
                members = set(cluster.members)
                return [(rel, f) for rel, f in features if rel in members]
        known = ", ".join(
            f"{cluster.fact}={sorted(cluster.members)}"
            for cluster in self.clusters or ()
        ) or "none"
        raise TrainingError(
            f"relation {relation!r} is outside every CPT cluster "
            f"(known clusters: {known})"
        )
