"""Histogram binning and the data-cube optimization (Appendix D.3).

LightGBM-style histogram training replaces each feature value with its
bin; with few bins and sparse data, JoinBoost can go further and
materialize the full dimensional *cuboid* — GROUP BY all (binned) feature
attributes with semi-ring aggregation — and train on that tiny relation
instead of the factorized join.  At 5 bins on Favorita the cuboid is ~25×
smaller than the fact table and training speeds up >100× (Figure 20).

Bin ids are mapped back to each bin's upper edge so trained predicates
stay in the original value space and the models score raw features.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.core.params import TrainParams
from repro.core.residual import ResidualUpdater
from repro.core.split import GradientCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.boosting import (
    GradientBoostingModel,
    IterationRecord,
    _init_score_sql,
)
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, rooted_tree
from repro.semiring.gradient import GradientSemiRing
from repro.semiring.losses import get_loss


def quantile_edges(values: np.ndarray, max_bin: int) -> np.ndarray:
    """Monotone bin upper-edges from quantiles (deduplicated)."""
    clean = values[~np.isnan(values)] if values.dtype.kind == "f" else values
    if len(clean) == 0:
        raise TrainingError("cannot bin an all-null column")
    quantiles = np.linspace(0.0, 1.0, max_bin + 1)[1:]
    edges = np.unique(np.quantile(clean.astype(np.float64), quantiles))
    return edges


def bin_column(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Replace each value with its bin's upper edge (NaN passes through)."""
    values = np.asarray(values, dtype=np.float64)
    out = np.full(len(values), np.nan)
    keep = ~np.isnan(values)
    ids = np.searchsorted(edges, values[keep], side="left")
    ids = np.clip(ids, 0, len(edges) - 1)
    out[keep] = edges[ids]
    return out


@dataclasses.dataclass
class BinnedGraph:
    """A join graph whose numeric features were replaced by bin edges."""

    graph: JoinGraph
    edges: Dict[Tuple[str, str], np.ndarray]  # (relation, feature) -> edges
    tables: List[str]  # temp tables to drop on cleanup

    def cleanup(self, db) -> None:
        for table in self.tables:
            db.drop_table(table, if_exists=True)


def bin_graph(db, graph: JoinGraph, max_bin: int) -> BinnedGraph:
    """Produce binned copies of every relation owning numeric features."""
    new_graph = JoinGraph(db)
    bin_edges: Dict[Tuple[str, str], np.ndarray] = {}
    temp_tables: List[str] = []
    renamed: Dict[str, str] = {}
    for info in graph.relations.values():
        numeric = [
            f for f in info.features if not graph.is_categorical(info.name, f)
        ]
        if not numeric:
            renamed[info.name] = info.name
            continue
        table = db.table(info.name)
        data = {
            name: table.column(name).values.copy()
            for name in table.column_names()
        }
        for feature in numeric:
            edges = quantile_edges(
                table.column(feature).as_float(), max_bin
            )
            bin_edges[(info.name, feature)] = edges
            data[feature] = bin_column(table.column(feature).as_float(), edges)
        binned_name = db.temp_name(f"binned_{info.name}")
        db.create_table(binned_name, data)
        temp_tables.append(binned_name)
        renamed[info.name] = binned_name
    for info in graph.relations.values():
        new_graph.add_relation(
            renamed[info.name],
            features=list(info.features),
            y=info.target,
            is_fact=info.is_fact,
            categorical=list(info.categorical),
        )
    for edge in graph.edges:
        new_graph.add_edge(
            renamed[edge.left], renamed[edge.right],
            list(edge.left_keys), list(edge.right_keys),
        )
    return BinnedGraph(graph=new_graph, edges=bin_edges, tables=temp_tables)


# ---------------------------------------------------------------------------
# Cuboid construction and training
# ---------------------------------------------------------------------------
def build_cuboid(
    db,
    graph: JoinGraph,
    lift_exprs: List[Tuple[str, str]],
    components: List[str],
) -> Tuple[str, List[Tuple[str, str]]]:
    """Materialize GROUP BY <all features> with semi-ring aggregation.

    Returns (cuboid table name, [(feature, source relation)] pairs).  The
    join is executed naively — with few bins the grouped result is tiny,
    which is the entire point of the optimization.
    """
    fact = graph.target_relation
    parent_map, children, _ = rooted_tree(graph, fact)
    aliases = {fact: "t"}
    joins: List[str] = []
    order = [fact]
    frontier = [fact]
    while frontier:
        current = frontier.pop(0)
        for child in children[current]:
            aliases[child] = f"r{len(aliases)}"
            edge = edge_between(graph, current, child)
            condition = " AND ".join(
                f"{aliases[current]}.{a} = {aliases[child]}.{b}"
                for a, b in zip(edge.keys_for(current), edge.keys_for(child))
            )
            joins.append(f"JOIN {child} AS {aliases[child]} ON {condition}")
            order.append(child)
            frontier.append(child)

    features = graph.all_features()
    feature_parts = [
        f"{aliases[rel]}.{feat} AS {feat}" for rel, feat in features
    ]
    agg_parts = [
        f"SUM({expr.replace('t.', aliases[fact] + '.')}) AS {comp}"
        for comp, expr in lift_exprs
    ]
    cuboid = db.temp_name("cuboid")
    sql = (
        f"CREATE TABLE {cuboid} AS SELECT {', '.join(feature_parts + agg_parts)} "
        f"FROM {fact} AS t {' '.join(joins)} "
        f"GROUP BY {', '.join(f'{aliases[rel]}.{feat}' for rel, feat in features)}"
    )
    db.execute(sql, tag="cuboid")
    return cuboid, features


def train_boosting_on_cuboid(
    db,
    graph: JoinGraph,
    params: Optional[dict] = None,
    **overrides,
) -> GradientBoostingModel:
    """Gradient boosting over the histogram cuboid (Figure 20).

    Only the rmse objective is supported (the cuboid stores (h, g)
    aggregates, and residual updates must be additive).
    """
    train_params = TrainParams.from_dict(params, **overrides)
    loss = get_loss(train_params.objective, **train_params.loss_kwargs())
    if not loss.supports_galaxy:
        raise TrainingError("cuboid training supports the rmse objective only")
    graph.validate()

    binned = (
        bin_graph(db, graph, train_params.max_bin)
        if train_params.max_bin is not None
        else None
    )
    working_graph = binned.graph if binned is not None else graph
    fact = working_graph.target_relation
    y = working_graph.target_column
    init = _init_score_sql(db, fact, y, loss)
    ring = GradientSemiRing()
    lift_exprs = ring.lift_pair_sql("1", f"({init!r} - t.{y})")
    cuboid, features = build_cuboid(db, working_graph, lift_exprs, list(ring.components))

    # Single-relation training graph over the cuboid.
    cuboid_graph = JoinGraph(db)
    feature_names = [feat for _, feat in features]
    categorical = [
        feat
        for rel, feat in features
        if working_graph.is_categorical(rel, feat)
    ]
    cuboid_graph.add_relation(
        cuboid, features=feature_names, categorical=categorical
    )
    factorizer = Factorizer(db, cuboid_graph, ring)
    factorizer.adopt_lifted(cuboid, cuboid)

    criterion = GradientCriterion(reg_lambda=train_params.reg_lambda)
    trainer = DecisionTreeTrainer(
        db, cuboid_graph, factorizer, criterion, train_params
    )
    updater = ResidualUpdater(
        db, cuboid_graph, cuboid, cuboid, loss, strategy="swap"
    )

    import time

    trees = []
    history: List[IterationRecord] = []
    for iteration in range(train_params.num_iterations):
        start = time.perf_counter()
        tree = trainer.train()
        train_seconds = time.perf_counter() - start
        start = time.perf_counter()
        # g is per-group Σ(p - y); the shift is lr·leaf times the group
        # count h, which apply_additive handles via the weight column.
        updater.apply_additive(tree, train_params.learning_rate, component="g")
        factorizer.invalidate_for_relation(cuboid)
        update_seconds = time.perf_counter() - start
        trees.append(tree)
        history.append(IterationRecord(iteration, train_seconds, update_seconds))
    model = GradientBoostingModel(
        trees, init, train_params.learning_rate, loss, history
    )
    factorizer.cleanup()
    if binned is not None:
        binned.cleanup(db)
    db.drop_table(cuboid, if_exists=True)
    return model
