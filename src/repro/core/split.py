"""Best-split search (Algorithm 1, line 14 — the hot loop).

For numeric features under a two-component criterion the search is a
*single SQL query* in the shape of the paper's Example 2: the factorized
absorption (grouped by the feature) is wrapped in window-function prefix
sums and the criterion expression, ordered descending, LIMIT 1.

Categorical features, missing='both' routing, and multi-component
classification criteria fetch the per-value aggregate (small — one row per
distinct value) and scan prefixes client-side, LightGBM style.

Criteria:

* :class:`VarianceCriterion` (c, s) — reduction in variance (regression
  trees / random forests);
* :class:`GradientCriterion` (h, g) — second-order gain of Appendix B with
  L2 regularization, component names parameterizable for per-class
  multiclass training;
* :class:`ClassificationCriterion` (c, c0..ck) — gini / entropy / chi2
  over the class-count semi-ring (Appendix A).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.factorize.executor import Factorizer
from repro.factorize.predicates import Predicate, PredicateMap
from repro.semiring.classcount import ClassCountSemiRing


class Criterion:
    """Maps semi-ring aggregates to gains and leaf values."""

    #: aggregate columns this criterion consumes
    components: Tuple[str, ...] = ()
    #: True when the numeric split can run as one SQL window query
    sql_capable = False

    def gain_aggs(
        self, left: Dict[str, float], totals: Dict[str, float]
    ) -> float:
        """Gain of splitting ``totals`` into ``left`` and its complement."""
        raise NotImplementedError

    def leaf_value(self, aggregates: Dict[str, float]) -> float:
        raise NotImplementedError

    def weight(self, aggregates: Dict[str, float]) -> float:
        """Mass used for min-child checks (count or hessian sum)."""
        if not self.components:
            raise TrainingError(
                f"criterion {type(self).__name__} declares no aggregate "
                "components; weight() needs at least one (the count or "
                "hessian column)"
            )
        return aggregates.get(self.components[0], 0.0)

    def min_weight(self, min_child_samples: int) -> float:
        return max(float(min_child_samples), 1e-9)

    def gain_sql(self, w: str, s: str, w_total: float, s_total: float) -> str:
        raise NotImplementedError  # only for sql_capable criteria

    def order_key(
        self, aggs: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Category ordering for subset splits (mean-response heuristic)."""
        raise NotImplementedError


class VarianceCriterion(Criterion):
    """Reduction in variance (Appendix A); q cancels, only (c, s) needed."""

    components = ("c", "s")
    sql_capable = True

    def gain_sql(self, w: str, s: str, w_total: float, s_total: float) -> str:
        st, ct = repr(float(s_total)), repr(float(w_total))
        # (s/c)*s keeps intermediate magnitudes small (overflow note, App. A).
        return (
            f"(-({st} / {ct}) * {st}"
            f" + ({s} / {w}) * {s}"
            f" + (({st} - {s}) / ({ct} - {w})) * ({st} - {s}))"
        )

    def gain_aggs(self, left, totals):
        w, s = left.get("c", 0.0), left.get("s", 0.0)
        w_total, s_total = totals.get("c", 0.0), totals.get("s", 0.0)
        if w <= 0 or w_total - w <= 0:
            return float("-inf")
        return (
            -(s_total / w_total) * s_total
            + (s / w) * s
            + ((s_total - s) / (w_total - w)) * (s_total - s)
        )

    def leaf_value(self, aggregates):
        c = aggregates.get("c", 0.0)
        return aggregates.get("s", 0.0) / c if c else 0.0

    def order_key(self, aggs):
        with np.errstate(invalid="ignore", divide="ignore"):
            return aggs["s"] / aggs["c"]


class GradientCriterion(Criterion):
    """Second-order gain −½G²/(H+λ) form (Appendix B)."""

    sql_capable = True

    def __init__(
        self,
        reg_lambda: float = 0.0,
        weight_component: str = "h",
        sum_component: str = "g",
    ):
        self.reg_lambda = float(reg_lambda)
        self.components = (weight_component, sum_component)

    def gain_sql(self, w: str, s: str, w_total: float, s_total: float) -> str:
        lam = repr(self.reg_lambda)
        gt, ht = repr(float(s_total)), repr(float(w_total))
        return (
            f"(0.5 * (({s} * {s}) / ({w} + {lam})"
            f" + (({gt} - {s}) * ({gt} - {s})) / (({ht} - {w}) + {lam})"
            f" - ({gt} * {gt}) / ({ht} + {lam})))"
        )

    def gain_aggs(self, left, totals):
        w_name, s_name = self.components
        w, s = left.get(w_name, 0.0), left.get(s_name, 0.0)
        w_total, s_total = totals.get(w_name, 0.0), totals.get(s_name, 0.0)
        lam = self.reg_lambda
        if w + lam <= 0 or (w_total - w) + lam <= 0:
            return float("-inf")
        return 0.5 * (
            s * s / (w + lam)
            + (s_total - s) ** 2 / ((w_total - w) + lam)
            - s_total**2 / (w_total + lam)
        )

    def leaf_value(self, aggregates):
        w_name, s_name = self.components
        denominator = aggregates.get(w_name, 0.0) + self.reg_lambda
        if denominator <= 0:
            return 0.0
        return -aggregates.get(s_name, 0.0) / denominator

    def min_weight(self, min_child_samples: int) -> float:
        # Hessians are not counts for general losses; only a numeric floor.
        return 1e-9

    def order_key(self, aggs):
        w_name, s_name = self.components
        with np.errstate(invalid="ignore", divide="ignore"):
            return aggs[s_name] / (aggs[w_name] + self.reg_lambda)


class ClassificationCriterion(Criterion):
    """Gini / entropy / chi-square over class counts (Appendix A)."""

    sql_capable = False

    def __init__(self, num_classes: int, measure: str = "gini"):
        if measure not in ("gini", "entropy", "chi2"):
            raise TrainingError(f"unknown classification measure {measure!r}")
        self.ring = ClassCountSemiRing(num_classes)
        self.measure = measure
        self.num_classes = num_classes
        self.components = self.ring.components

    def _tuple(self, aggs: Dict[str, float]) -> Tuple[float, ...]:
        return tuple(aggs.get(comp, 0.0) for comp in self.components)

    def gain_aggs(self, left, totals):
        left_t = self._tuple(left)
        total_t = self._tuple(totals)
        right_t = tuple(t - l for t, l in zip(total_t, left_t))
        if left_t[0] <= 0 or right_t[0] <= 0:
            return float("-inf")
        if self.measure == "gini":
            impurity = self.ring.gini
        elif self.measure == "entropy":
            impurity = self.ring.entropy
        else:
            return self.ring.chi_square(left_t, right_t)
        return impurity(total_t) - impurity(left_t) - impurity(right_t)

    def leaf_value(self, aggregates):
        return float(self.ring.mode(self._tuple(aggregates)))

    def order_key(self, aggs):
        # Order categories by first-class purity (binary-optimal; a
        # standard heuristic for k > 2).
        with np.errstate(invalid="ignore", divide="ignore"):
            return aggs[self.components[1]] / aggs["c"]


@dataclasses.dataclass
class SplitCandidate:
    """A candidate split and the aggregates of both children."""

    gain: float
    relation: str
    predicate: Predicate
    left_aggregates: Dict[str, float]
    right_aggregates: Dict[str, float]
    feature: str


class SplitFinder:
    """Evaluates the best split of one feature under a node's σ."""

    def __init__(
        self,
        db,
        factorizer: Factorizer,
        criterion: Criterion,
        min_child_samples: int = 1,
        missing: str = "right",
    ):
        self.db = db
        self.factorizer = factorizer
        self.criterion = criterion
        self.min_child_samples = min_child_samples
        self.missing = missing

    # ------------------------------------------------------------------
    def best_split(
        self,
        feature: str,
        relation: str,
        predicates: PredicateMap,
        totals: Dict[str, float],
        categorical: bool,
    ) -> Optional[SplitCandidate]:
        if self.criterion.weight(totals) <= 0:
            return None
        if (
            self.criterion.sql_capable
            and not categorical
            and self.missing == "right"
            and self._window_capable()
        ):
            return self._sql_split(feature, relation, predicates, totals)
        return self._client_side_split(
            feature, relation, predicates, totals, categorical
        )

    def _window_capable(self) -> bool:
        """Whether the backend can run the Example-2 window query; old
        engines (connector capability flag off) use the client-side scan."""
        capabilities = getattr(self.db, "capabilities", None)
        return capabilities is None or capabilities.window_functions

    # ------------------------------------------------------------------
    # Numeric, two-component criteria: single SQL query (Example 2 shape)
    # ------------------------------------------------------------------
    def _sql_split(
        self,
        feature: str,
        relation: str,
        predicates: PredicateMap,
        totals: Dict[str, float],
    ) -> Optional[SplitCandidate]:
        w_name, s_name = self.criterion.components
        w_total = totals.get(w_name, 0.0)
        s_total = totals.get(s_name, 0.0)
        inner, _ = self.factorizer.absorption_sql(relation, [feature], predicates)
        crit = self.criterion.gain_sql("cw", "sw", w_total, s_total)
        min_w = self.criterion.min_weight(self.min_child_samples)
        sql = (
            f"SELECT {feature}, cw, sw, {crit} AS criteria FROM ("
            f"  SELECT {feature}, SUM({w_name}) OVER (ORDER BY {feature}) AS cw,"
            f"         SUM({s_name}) OVER (ORDER BY {feature}) AS sw"
            f"  FROM ({inner}) WHERE {feature} IS NOT NULL"
            f") WHERE cw >= {min_w!r} AND ({w_total!r} - cw) >= {min_w!r} "
            f"ORDER BY criteria DESC LIMIT 1"
        )
        result = self.db.execute(sql, tag="feature")
        if result.num_rows == 0:
            return None
        row = result.first_row()
        if row["criteria"] is None or not np.isfinite(row["criteria"]):
            return None
        left = {w_name: float(row["cw"]), s_name: float(row["sw"])}
        right = {w_name: w_total - left[w_name], s_name: s_total - left[s_name]}
        predicate = Predicate(feature, "<=", _plain(row[feature]), include_null=False)
        return SplitCandidate(
            gain=float(row["criteria"]),
            relation=relation,
            predicate=predicate,
            left_aggregates=left,
            right_aggregates=right,
            feature=feature,
        )

    # ------------------------------------------------------------------
    # Client-side prefix scan over the per-value aggregate
    # ------------------------------------------------------------------
    def _client_side_split(
        self,
        feature: str,
        relation: str,
        predicates: PredicateMap,
        totals: Dict[str, float],
        categorical: bool,
    ) -> Optional[SplitCandidate]:
        result = self.factorizer.absorb(
            relation, [feature], predicates, tag="feature"
        )
        if result.num_rows == 0:
            return None
        f_col = result.column(feature)
        values = f_col.values
        nulls = f_col.is_null()
        if values.dtype.kind == "f":
            nulls = nulls | np.isnan(values)
        agg_arrays: Dict[str, np.ndarray] = {
            c: result.column(c).values.astype(np.float64)
            for c in self.criterion.components
        }
        return best_split_from_aggregates(
            self.criterion,
            relation,
            feature,
            values,
            nulls,
            agg_arrays,
            totals,
            categorical=categorical,
            missing=self.missing,
            min_child_samples=self.min_child_samples,
        )


def best_split_from_aggregates(
    criterion: Criterion,
    relation: str,
    feature: str,
    values: np.ndarray,
    nulls: np.ndarray,
    agg_arrays: Dict[str, np.ndarray],
    totals: Dict[str, float],
    categorical: bool,
    missing: str = "right",
    min_child_samples: int = 1,
) -> Optional[SplitCandidate]:
    """Prefix-scan a per-value aggregate for the best split of one feature.

    This is the shared client-side kernel: the per-leaf finder feeds it one
    absorption result, the batched frontier evaluator feeds it per-(leaf,
    feature) slices of one fused query — both must choose identical splits,
    so they share this code.  ``values``/``nulls``/``agg_arrays`` hold one
    row per distinct feature value (nulls included); ``totals`` are the
    node's aggregates.
    """
    comps = list(criterion.components)
    null_aggs = {c: float(a[nulls].sum()) for c, a in agg_arrays.items()}
    keep = ~nulls
    values = values[keep]
    agg_arrays = {c: a[keep] for c, a in agg_arrays.items()}
    if len(values) == 0:
        return None

    if categorical:
        order = np.argsort(criterion.order_key(agg_arrays), kind="stable")
    else:
        order = np.argsort(values.astype(np.float64), kind="stable")
    values = values[order]
    prefix = {c: np.cumsum(a[order]) for c, a in agg_arrays.items()}

    min_w = criterion.min_weight(min_child_samples)
    w_total = criterion.weight(totals)
    best: Optional[Tuple[float, int, bool]] = None
    has_nulls = null_aggs.get(comps[0], 0.0) > 0
    routings = (False, True) if (missing == "both" and has_nulls) else (False,)
    for null_left in routings:
        # The last index is the all-non-nulls-left split (nulls route
        # right); the min-weight filter rejects it unless nulls carry
        # mass — exactly the candidate set of the SQL window path.
        for i in range(len(values)):
            left = {c: float(prefix[c][i]) for c in comps}
            if null_left:
                left = {c: left[c] + null_aggs[c] for c in comps}
            w_left = criterion.weight(left)
            if w_left < min_w or (w_total - w_left) < min_w:
                continue
            gain = criterion.gain_aggs(left, totals)
            if np.isfinite(gain) and (best is None or gain > best[0]):
                best = (gain, i, null_left)
    if best is None:
        return None
    gain, idx, null_left = best
    left = {c: float(prefix[c][idx]) for c in comps}
    if null_left:
        left = {c: left[c] + null_aggs[c] for c in comps}
    right = {c: totals.get(c, 0.0) - left[c] for c in comps}

    if categorical:
        members = tuple(_plain(v) for v in values[: idx + 1])
        predicate = Predicate(feature, "IN", members, include_null=null_left)
    else:
        predicate = Predicate(
            feature, "<=", _plain(values[idx]), include_null=null_left
        )
    return SplitCandidate(
        gain=float(gain),
        relation=relation,
        predicate=predicate,
        left_aggregates=left,
        right_aggregates=right,
        feature=feature,
    )


def _plain(value):
    """Convert NumPy scalars to plain Python for Predicate literals."""
    if isinstance(value, (np.floating,)):
        out = float(value)
        return int(out) if out == int(out) and abs(out) < 1e15 else out
    if isinstance(value, (np.integer,)):
        return int(value)
    return value
