"""Guaranteed side-state cleanup for training sessions.

Training mints side state in the user's database: ``jb_tmp_*`` message
and lifted-fact tables, plus ``jb_``-prefixed working columns.  An
uninterrupted run drops them on its way out; a mid-training failure —
chaos-injected or real — used to strand them, leaving the connection
polluted and sometimes un-retrainable (a stale lifted temp shadows the
next run's).  :class:`TrainingSessionGuard` closes that hole: it
snapshots the temp namespace at entry and, when the guarded block
raises, tears down every factorizer it was told about and drops every
temp table minted inside the block, then re-raises the original error.

:func:`side_state_audit` is the checkable contract: after a guarded
failure it must report ``clean`` — no JoinBoost temps, no minted
columns on permanent tables — which the chaos tests assert directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.storage.catalog import TEMP_PREFIX


class TrainingSessionGuard:
    """Context manager: on failure, drop everything training minted.

    Cleanup is best-effort by design — it runs while the original
    exception is in flight, possibly against a backend that is itself
    misbehaving, so secondary errors are swallowed (the original error
    is the one the caller must see).  Factorizers registered via
    :meth:`register` get their own ``cleanup()`` first (they know their
    lifted/carry tables); a prefix sweep of newly-minted ``jb_tmp_*``
    tables catches the rest.
    """

    def __init__(self, db):
        self.db = db
        self._factorizers: List[object] = []
        self._preexisting: Optional[List[str]] = None
        #: how many temp tables the failure path dropped (0 on success)
        self.dropped_temps = 0
        self.cleaned_up = False

    def register(self, factorizer) -> "TrainingSessionGuard":
        """Add a factorizer whose ``cleanup()`` runs on failure."""
        self._factorizers.append(factorizer)
        return self

    def __enter__(self) -> "TrainingSessionGuard":
        self._preexisting = [
            name for name in self.db.table_names()
            if name.lower().startswith(TEMP_PREFIX)
        ]
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            return False
        self.cleanup()
        return False  # re-raise the original error

    def cleanup(self) -> None:
        """Tear down session side state (idempotent, swallows errors)."""
        if self.cleaned_up:
            return
        self.cleaned_up = True
        for factorizer in self._factorizers:
            try:
                factorizer.cleanup()
            except Exception:
                pass
        try:
            # Drop temps minted inside the guarded block; temps that
            # existed before the session (another model's working set)
            # are kept.
            self.dropped_temps = self.db.cleanup_temp(
                keep=self._preexisting or []
            )
        except Exception:
            # Last resort: per-table drops, ignoring individual failures.
            keep = {name.lower() for name in self._preexisting or []}
            for name in self._safe_table_names():
                if (
                    name.lower().startswith(TEMP_PREFIX)
                    and name.lower() not in keep
                ):
                    try:
                        self.db.drop_table(name, if_exists=True)
                        self.dropped_temps += 1
                    except Exception:
                        pass

    def _safe_table_names(self) -> List[str]:
        try:
            return list(self.db.table_names())
        except Exception:
            return []


def side_state_audit(db) -> Dict[str, object]:
    """What JoinBoost side state remains in ``db`` right now.

    Returns the ``jb_tmp_*`` temp tables still stored, any
    ``jb_``-prefixed columns minted onto *permanent* tables (leaf-
    membership columns live on lifted temps, so a non-empty list here
    means a cleanup bug), and a summary ``clean`` flag the chaos tests
    assert after guarded failures.
    """
    temp_tables = [
        name for name in db.table_names()
        if name.lower().startswith(TEMP_PREFIX)
    ]
    leaf_columns = []
    for name in db.table_names():
        if name.lower().startswith(TEMP_PREFIX):
            continue
        try:
            columns = db.table(name).column_names()
        except Exception:  # pragma: no cover - concurrent drops
            continue
        for column in columns:
            if column.lower().startswith("jb_"):
                leaf_columns.append(f"{name}.{column}")
    return {
        "temp_tables": temp_tables,
        "leaf_columns": leaf_columns,
        "clean": not temp_tables and not leaf_columns,
    }
