"""Model serialization: JSON-compatible dump/load for trained models.

LightGBM ships ``dump_model``/``model_from_string``; JoinBoost "returns
models identical to LightGBM" (Section 5.1), so this module provides the
equivalent round trip for every model class in the library.  The format
is plain JSON — no pickling — so saved models are portable and auditable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.exceptions import TrainingError
from repro.core.boosting import (
    GradientBoostingModel,
    MulticlassBoostingModel,
)
from repro.core.forest import RandomForestModel
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.factorize.predicates import Predicate
from repro.semiring.losses import get_loss


# ---------------------------------------------------------------------------
# Trees
# ---------------------------------------------------------------------------
def tree_to_dict(model: DecisionTreeModel) -> dict:
    def node_dict(node: TreeNode) -> dict:
        out: dict = {
            "node_id": node.node_id,
            "depth": node.depth,
            "prediction": node.prediction,
            "gain": node.gain,
            "aggregates": dict(node.aggregates),
        }
        if node.predicate is not None:
            out["relation"] = node.relation
            out["predicate"] = {
                "column": node.predicate.column,
                "op": node.predicate.op,
                "value": list(node.predicate.value)
                if isinstance(node.predicate.value, tuple)
                else node.predicate.value,
                "include_null": node.predicate.include_null,
            }
        if not node.is_leaf:
            out["left"] = node_dict(node.left)
            out["right"] = node_dict(node.right)
        return out

    return {
        "kind": "decision_tree",
        "root": node_dict(model.root),
        "feature_relations": dict(model.feature_relations),
    }


def tree_from_dict(data: dict) -> DecisionTreeModel:
    if not isinstance(data, dict) or data.get("kind") != "decision_tree":
        raise TrainingError("not a serialized decision tree")

    def build(node_data: dict, parent: Optional[TreeNode]) -> TreeNode:
        predicate = None
        if "predicate" in node_data:
            raw = node_data["predicate"]
            value = raw["value"]
            if isinstance(value, list):
                value = tuple(value)
            predicate = Predicate(
                column=raw["column"], op=raw["op"], value=value,
                include_null=raw["include_null"],
            )
        node = TreeNode(
            node_id=node_data["node_id"],
            depth=node_data["depth"],
            predicate=predicate,
            relation=node_data.get("relation"),
            parent=parent,
            prediction=node_data["prediction"],
            gain=node_data["gain"],
            aggregates=dict(node_data.get("aggregates", {})),
        )
        if "left" in node_data:
            node.left = build(node_data["left"], node)
            node.right = build(node_data["right"], node)
        return node

    try:
        root = build(data["root"], None)
        return DecisionTreeModel(root, data["feature_relations"])
    except (KeyError, TypeError, AttributeError) as exc:
        raise TrainingError(
            f"malformed serialized decision tree: {exc!r}"
        ) from exc


# ---------------------------------------------------------------------------
# Ensembles
# ---------------------------------------------------------------------------
def _loss_spec(loss) -> dict:
    spec: Dict[str, object] = {"name": loss.name}
    for attr in ("delta", "c", "alpha", "rho", "num_classes"):
        if hasattr(loss, attr):
            spec[attr] = getattr(loss, attr)
    return spec


def _loss_from_spec(spec: dict):
    kwargs = {k: v for k, v in spec.items() if k != "name"}
    return get_loss(spec["name"], **kwargs)


def model_to_dict(model) -> dict:
    """Serialize any trained model (tree / forest / boosting)."""
    if isinstance(model, DecisionTreeModel):
        return tree_to_dict(model)
    if isinstance(model, RandomForestModel):
        return {
            "kind": "random_forest",
            "classification": model.classification,
            "num_classes": model.num_classes,
            "trees": [tree_to_dict(t) for t in model.trees],
        }
    if isinstance(model, GradientBoostingModel):
        return {
            "kind": "gradient_boosting",
            "init_score": model.init_score,
            "learning_rate": model.learning_rate,
            "loss": _loss_spec(model.loss),
            "trees": [tree_to_dict(t) for t in model.trees],
        }
    if isinstance(model, MulticlassBoostingModel):
        return {
            "kind": "multiclass_boosting",
            "init_scores": list(model.init_scores),
            "learning_rate": model.learning_rate,
            "loss": _loss_spec(model.loss),
            "trees_per_class": [
                [tree_to_dict(t) for t in chain]
                for chain in model.trees_per_class
            ],
        }
    raise TrainingError(f"cannot serialize {type(model).__name__}")


def model_from_dict(data: dict):
    if not isinstance(data, dict):
        raise TrainingError("serialized model must be a JSON object")
    kind = data.get("kind")
    try:
        if kind == "decision_tree":
            return tree_from_dict(data)
        if kind == "random_forest":
            return RandomForestModel(
                [tree_from_dict(t) for t in data["trees"]],
                classification=data["classification"],
                num_classes=data["num_classes"],
            )
        if kind == "gradient_boosting":
            return GradientBoostingModel(
                [tree_from_dict(t) for t in data["trees"]],
                init_score=data["init_score"],
                learning_rate=data["learning_rate"],
                loss=_loss_from_spec(data["loss"]),
            )
        if kind == "multiclass_boosting":
            return MulticlassBoostingModel(
                [[tree_from_dict(t) for t in chain]
                 for chain in data["trees_per_class"]],
                init_scores=list(data["init_scores"]),
                learning_rate=data["learning_rate"],
                loss=_loss_from_spec(data["loss"]),
            )
    except (KeyError, TypeError, AttributeError) as exc:
        raise TrainingError(
            f"malformed serialized {kind!r} model: {exc!r}"
        ) from exc
    raise TrainingError(f"unknown serialized model kind {kind!r}")


def model_to_json(model) -> str:
    """Canonical JSON text for a model: sorted keys, no whitespace.

    The same logical model always produces the same bytes, so
    dump→load→dump is byte-stable and :func:`model_digest` is a
    deterministic version key.
    """
    return json.dumps(
        model_to_dict(model), sort_keys=True, separators=(",", ":")
    )


def model_from_json(text: str):
    """Inverse of :func:`model_to_json`."""
    try:
        data = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise TrainingError(f"invalid model JSON: {exc}") from exc
    return model_from_dict(data)


def model_digest(model) -> str:
    """sha256 of the canonical JSON — the serving-layer version key."""
    return hashlib.sha256(model_to_json(model).encode("utf-8")).hexdigest()


def save_model(model, path: str) -> None:
    """Write a model to a JSON file (canonical form)."""
    with open(path, "w") as handle:
        handle.write(model_to_json(model))


def load_model(path: str):
    """Read a model back from :func:`save_model` output."""
    with open(path) as handle:
        return model_from_json(handle.read())
