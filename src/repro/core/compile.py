"""Compiled prediction: trained trees flattened into contiguous arrays.

The seed scoring path (:meth:`DecisionTreeModel.predict_arrays`) recurses
node by node, computing a full-length boolean mask at *every* internal
node — O(nodes x rows) work per tree.  Serving "millions of users"
(ROADMAP item 1) needs the LightGBM evaluation shape instead: each tree
flattened into contiguous numpy arrays (feature index / threshold /
left-right child / leaf value, with explicit missing-direction and
categorical-set handling) and evaluated level by level, so each row does
O(depth) gathers regardless of tree width.

Bit-identity with the recursive path is the contract (the paper's models
are "identical to LightGBM", Section 5.1; the differential-parity suite
in ``tests/test_predict_compiled.py`` enforces it).  Two evaluation paths
keep that honest:

* the **numeric fast path** — rows sitting at nodes whose split is a
  numeric comparison over a float/int column evaluate via gathered
  thresholds and one vectorized comparison per opcode, with NaN rows
  routed by the node's missing direction exactly as
  :func:`~repro.core.tree._eval_predicate` routes them;
* the **generic fallback** — rows at categorical / string / set-valued
  splits (``IN``, ``=`` over object arrays, ``IS NULL``, ...) evaluate
  the node's original :class:`Predicate` over just the resident rows via
  the same ``_eval_predicate`` kernel the recursive path uses, so the
  semantics cannot drift.

Ensemble wrappers (:class:`CompiledGradientBoosting`,
:class:`CompiledMulticlassBoosting`, :class:`CompiledRandomForest`)
replicate the seed models' accumulation order operation for operation —
same ``init + lr * tree`` sequence, same ``stack(...).mean(axis=0)``,
same first-max ``argmax`` — so ensemble scores are bit-identical too.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TrainingError
from repro.core.boosting import GradientBoostingModel, MulticlassBoostingModel
from repro.core.forest import RandomForestModel
from repro.core.tree import DecisionTreeModel, TreeNode, _eval_predicate
from repro.factorize.predicates import Predicate
from repro.semiring.losses import SoftmaxLoss

#: opcodes for the numeric fast path; everything else takes the generic
#: per-node fallback through ``_eval_predicate``
_NUMERIC_OPS = {"<=": 0, "<": 1, ">": 2, ">=": 3, "=": 4, "!=": 5}
_GENERIC_OP = -1

#: (tree, row) entries per bank-descent chunk — sized so the level
#: temporaries (a handful of 8-byte arrays this long) stay in L2
_CHUNK_ENTRIES = 65_536

FeatureFrame = Dict[str, np.ndarray]

#: (stacked numeric matrix, column→matrix-column map, raw arrays)
PreparedFrame = Tuple[np.ndarray, np.ndarray, List[np.ndarray]]


def prepare_frame(
    columns: Sequence[str], features: FeatureFrame
) -> PreparedFrame:
    """Stage a feature frame for the flat evaluators.

    Numeric columns are stacked into one (n, k) float64 matrix so the
    hot loop gathers values with a single fancy index instead of a
    per-column pass.  Object/string columns map to -1 and are only
    touched by the generic fallback, which sees the raw arrays — the
    same inputs the recursive path hands ``_eval_predicate``.  Ensemble
    wrappers call this once per scoring call and share the result across
    member trees.
    """
    raw_cols: List[np.ndarray] = []
    numeric_cols: List[np.ndarray] = []
    mat_col = np.full(len(columns), -1, dtype=np.int32)
    for i, column in enumerate(columns):
        if column not in features:
            raise TrainingError(f"missing feature column {column!r}")
        raw = np.asarray(features[column])
        raw_cols.append(raw)
        if not (raw.dtype == object or raw.dtype.kind in ("U", "S")):
            mat_col[i] = len(numeric_cols)
            numeric_cols.append(raw.astype(np.float64, copy=False))
    if numeric_cols:
        matrix = np.column_stack(numeric_cols)
    else:
        n = len(raw_cols[0]) if raw_cols else 0
        matrix = np.zeros((n, 0), dtype=np.float64)
    return matrix, mat_col, raw_cols


@dataclasses.dataclass
class _NodeTables:
    """Mutable accumulator the flattening walk appends into."""

    feature: List[int]
    opcode: List[int]
    threshold: List[float]
    default_left: List[bool]
    left: List[int]
    right: List[int]
    value: List[float]
    predicates: List[Optional[Predicate]]


class _FlatEvaluator:
    """Shared level-synchronous descent over flat node tables.

    Subclasses (:class:`CompiledTree`, :class:`CompiledTreeBank`) fill
    the arrays; :meth:`_descend` walks rows from their start nodes to
    leaves.  The bank packs every tree of an ensemble into one node
    table, so a 100-tree model costs the same number of numpy calls per
    level as a single tree — the per-call overhead that dominates
    request-sized serving batches amortizes across the whole model.
    """

    columns: List[str]
    feature: np.ndarray
    opcode: np.ndarray
    threshold: np.ndarray
    default_left: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    predicates: List[Optional[Predicate]]

    def _compare(
        self, ops: np.ndarray, vals: np.ndarray, thr: np.ndarray
    ) -> np.ndarray:
        """Vectorized comparison for mixed opcodes (rare: the trainer
        only emits ``<=``, so the uniform path in :meth:`_descend`
        usually short-circuits past this)."""
        result = np.zeros(len(vals), dtype=bool)
        for op_name, op_code in _NUMERIC_OPS.items():
            osel = ops == op_code
            if not osel.any():
                continue
            if op_name == "<=":
                result[osel] = vals[osel] <= thr[osel]
            elif op_name == "<":
                result[osel] = vals[osel] < thr[osel]
            elif op_name == ">":
                result[osel] = vals[osel] > thr[osel]
            elif op_name == ">=":
                result[osel] = vals[osel] >= thr[osel]
            elif op_name == "=":
                result[osel] = vals[osel] == thr[osel]
            else:
                result[osel] = vals[osel] != thr[osel]
        return result

    def _descend(
        self,
        start_nodes: np.ndarray,
        frame_rows: np.ndarray,
        prepared: PreparedFrame,
        mask_cache: Optional[Dict[Predicate, np.ndarray]],
    ) -> np.ndarray:
        """Route every (start node, frame row) entry to its leaf node id.

        The loop carries only the still-active entries (node id + frame
        row, compressed together as entries reach leaves), so a leaf-wise
        (deep, unbalanced) tree costs sum-of-depths, not depth × n, and
        there is no full-width state scatter per level.
        """
        matrix, mat_col, raw_cols = prepared
        final = np.asarray(start_nodes, dtype=np.int32).copy()
        rows = np.nonzero(self.left[final] >= 0)[0]
        nodes = final[rows]
        frows = np.asarray(frame_rows)[rows]
        while len(rows):
            ops = self.opcode[nodes]
            mc = mat_col[self.feature[nodes]]
            numeric_ok = (ops >= 0) & (mc >= 0)

            if numeric_ok.all():
                # Whole level is numeric splits over numeric columns —
                # one gather, one comparison; NaN routes by default_left.
                vals = matrix[frows, mc]
                thr = self.threshold[nodes]
                with np.errstate(invalid="ignore"):
                    if (ops == 0).all():  # trainer emits only "<="
                        go_left = vals <= thr
                    else:
                        go_left = self._compare(ops, vals, thr)
                nulls = np.isnan(vals)
                if nulls.any():
                    go_left[nulls] = self.default_left[nodes][nulls]
            else:
                go_left = np.zeros(len(rows), dtype=bool)
                nsel = np.nonzero(numeric_ok)[0]
                if len(nsel):
                    nnodes = nodes[nsel]
                    vals = matrix[frows[nsel], mc[nsel]]
                    thr = self.threshold[nnodes]
                    node_ops = ops[nsel]
                    with np.errstate(invalid="ignore"):
                        if (node_ops == 0).all():
                            result = vals <= thr
                        else:
                            result = self._compare(node_ops, vals, thr)
                    nulls = np.isnan(vals)
                    result[nulls] = self.default_left[nnodes][nulls]
                    go_left[nsel] = result

                # Generic fallback: per-node evaluation of the original
                # Predicate via the same ``_eval_predicate`` kernel the
                # recursive path uses (elementwise, so evaluating the
                # full column and gathering cannot change any row's
                # routing).  Identical predicates recur across boosted
                # trees (e.g. the same categorical root split), so the
                # per-call mask cache dedupes them.
                pending = np.nonzero(~numeric_ok)[0]
                pnodes = nodes[pending]
                order = np.argsort(pnodes, kind="stable")
                pending = pending[order]
                pnodes = pnodes[order]
                boundaries = np.nonzero(np.diff(pnodes))[0] + 1
                for segment in np.split(np.arange(len(pending)), boundaries):
                    node_id = int(pnodes[segment[0]])
                    pred = self.predicates[node_id]
                    if pred is None:
                        # Numeric opcode but object-typed column values.
                        pred = self._rebuild_numeric_predicate(node_id)
                    raw = raw_cols[int(self.feature[node_id])]
                    seg_rows = frows[pending[segment]]
                    full = (
                        mask_cache.get(pred)
                        if mask_cache is not None
                        else None
                    )
                    if full is None:
                        full = _eval_predicate(pred, raw)
                        if mask_cache is not None:
                            mask_cache[pred] = full
                    go_left[pending[segment]] = full[seg_rows]

            nodes = np.where(go_left, self.left[nodes], self.right[nodes])
            at_leaf = self.left[nodes] < 0
            if at_leaf.any():
                final[rows[at_leaf]] = nodes[at_leaf]
                keep = ~at_leaf
                rows = rows[keep]
                nodes = nodes[keep]
                frows = frows[keep]
        return final

    def _rebuild_numeric_predicate(self, node_id: int) -> Predicate:
        op = [k for k, v in _NUMERIC_OPS.items() if v == self.opcode[node_id]][0]
        return Predicate(
            column=self.columns[int(self.feature[node_id])],
            op=op,
            value=float(self.threshold[node_id]),
            include_null=bool(self.default_left[node_id]),
        )


class CompiledTree(_FlatEvaluator):
    """One decision tree as flat arrays, evaluated level by level.

    ``feature[i]`` indexes :attr:`columns` (``-1`` marks a leaf),
    ``threshold[i]``/``opcode[i]`` encode the numeric comparison of the
    *left*-child predicate, ``default_left[i]`` is the missing direction
    (NULL/NaN rows go left when set), ``left[i]``/``right[i]`` are child
    node ids and ``value[i]`` the leaf prediction.  Non-numeric splits
    keep their :class:`Predicate` in :attr:`predicates` for the generic
    fallback.
    """

    def __init__(
        self,
        model: DecisionTreeModel,
        interner: Optional[Tuple[Dict[str, int], List[str]]] = None,
    ):
        # Ensemble wrappers pass one shared interner so every member tree
        # indexes the same column universe and the per-call frame
        # preparation happens once, not once per tree.
        col_index, columns = interner if interner is not None else ({}, [])
        self.columns: List[str] = columns
        tables = _NodeTables([], [], [], [], [], [], [], [])

        def intern(column: str) -> int:
            if column not in col_index:
                col_index[column] = len(self.columns)
                self.columns.append(column)
            return col_index[column]

        def flatten(node: TreeNode) -> int:
            idx = len(tables.feature)
            tables.feature.append(-1)
            tables.opcode.append(_GENERIC_OP)
            tables.threshold.append(np.nan)
            tables.default_left.append(False)
            tables.left.append(-1)
            tables.right.append(-1)
            tables.value.append(float(node.prediction))
            tables.predicates.append(None)
            if node.is_leaf:
                return idx
            left = node.left
            if left is None or left.predicate is None or node.right is None:
                raise TrainingError("malformed tree: internal node without split")
            pred = left.predicate
            tables.feature[idx] = intern(pred.column)
            tables.default_left[idx] = bool(pred.include_null)
            if pred.op in _NUMERIC_OPS and isinstance(
                pred.value, (int, float)
            ) and not isinstance(pred.value, bool):
                tables.opcode[idx] = _NUMERIC_OPS[pred.op]
                tables.threshold[idx] = float(pred.value)
            else:
                tables.predicates[idx] = pred
            tables.left[idx] = flatten(left)
            tables.right[idx] = flatten(node.right)
            return idx

        flatten(model.root)
        self.feature = np.asarray(tables.feature, dtype=np.int32)
        self.opcode = np.asarray(tables.opcode, dtype=np.int8)
        self.threshold = np.asarray(tables.threshold, dtype=np.float64)
        self.default_left = np.asarray(tables.default_left, dtype=bool)
        self.left = np.asarray(tables.left, dtype=np.int32)
        self.right = np.asarray(tables.right, dtype=np.int32)
        self.value = np.asarray(tables.value, dtype=np.float64)
        self.predicates = tables.predicates
        #: nodes needing the generic fallback (categorical / string / set)
        self.generic_nodes = np.asarray(
            [i for i, p in enumerate(self.predicates) if p is not None],
            dtype=np.int32,
        )

    @property
    def num_nodes(self) -> int:
        return len(self.feature)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def predict(
        self,
        features: FeatureFrame,
        prepared: Optional[PreparedFrame] = None,
        mask_cache: Optional[Dict[Predicate, np.ndarray]] = None,
    ) -> np.ndarray:
        """Route a feature frame to leaf values.

        Callers sharing work across several trees pass ``prepared`` (one
        shared :func:`prepare_frame` result) and ``mask_cache`` (a
        per-call dict deduplicating identical categorical predicates);
        standalone calls build both locally.
        """
        lengths = [len(v) for v in features.values()]
        n = lengths[0] if lengths else 0
        state = np.zeros(n, dtype=np.int32)
        if n == 0 or self.left[0] < 0:
            return self.value[state] if n else np.zeros(0, dtype=np.float64)
        if prepared is None:
            prepared = prepare_frame(self.columns, features)
        leaves = self._descend(state, np.arange(n), prepared, mask_cache)
        return self.value[leaves]


class CompiledTreeBank(_FlatEvaluator):
    """Every tree of an ensemble packed into one flat node table.

    Member trees must share one column universe (the ensemble wrappers
    compile them with a shared interner).  Child pointers are offset into
    the packed table; :meth:`leaf_matrix` descends all (tree, row) pairs
    simultaneously, so the whole ensemble costs one level loop instead of
    one per tree.
    """

    def __init__(self, trees: Sequence[CompiledTree]):
        if not trees:
            raise TrainingError("tree bank needs at least one tree")
        first = trees[0].columns
        if any(t.columns is not first for t in trees):
            raise TrainingError("bank trees must share one column universe")
        self.columns = first
        self.num_trees = len(trees)
        offsets = np.cumsum([0] + [t.num_nodes for t in trees])
        self.roots = offsets[:-1].astype(np.int32)
        self.feature = np.concatenate([t.feature for t in trees])
        self.opcode = np.concatenate([t.opcode for t in trees])
        self.threshold = np.concatenate([t.threshold for t in trees])
        self.default_left = np.concatenate([t.default_left for t in trees])
        self.left = np.concatenate(
            [np.where(t.left >= 0, t.left + off, -1)
             for t, off in zip(trees, offsets)]
        ).astype(np.int32)
        self.right = np.concatenate(
            [np.where(t.right >= 0, t.right + off, -1)
             for t, off in zip(trees, offsets)]
        ).astype(np.int32)
        self.value = np.concatenate([t.value for t in trees])
        self.predicates = [p for t in trees for p in t.predicates]

    def leaf_matrix(
        self,
        features: FeatureFrame,
        prepared: Optional[PreparedFrame] = None,
        mask_cache: Optional[Dict[Predicate, np.ndarray]] = None,
    ) -> np.ndarray:
        """(num_trees, n) leaf values — row t is tree t's prediction."""
        lengths = [len(v) for v in features.values()]
        n = lengths[0] if lengths else 0
        if n == 0:
            return np.zeros((self.num_trees, 0), dtype=np.float64)
        if prepared is None:
            prepared = prepare_frame(self.columns, features)
        if mask_cache is None:
            mask_cache = {}
        # Tree-major flat layout: entry t*n + r is (tree t, frame row r).
        # Large frames are chunked so the per-level temporaries stay
        # cache-resident; chunking is elementwise-invisible (each row's
        # routing is independent), so the output bits don't change.
        chunk = max(1, _CHUNK_ENTRIES // self.num_trees)
        out = np.empty((self.num_trees, n), dtype=np.float64)
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            state = np.repeat(self.roots, hi - lo)
            row_of = np.tile(np.arange(lo, hi), self.num_trees)
            leaves = self._descend(state, row_of, prepared, mask_cache)
            out[:, lo:hi] = self.value[leaves].reshape(self.num_trees, hi - lo)
        return out


# ---------------------------------------------------------------------------
# Ensemble wrappers — accumulation order mirrors the seed models exactly
# ---------------------------------------------------------------------------
class CompiledDecisionTree:
    """Compiled single tree with the seed model's scoring interface."""

    kind = "decision_tree"

    def __init__(self, model: DecisionTreeModel):
        self.tree = CompiledTree(model)
        self.required_features = list(self.tree.columns)

    def predict_arrays(self, features: FeatureFrame) -> np.ndarray:
        return self.tree.predict(features)


class CompiledGradientBoosting:
    """Compiled boosting chain: ``init + lr * tree_k`` in tree order."""

    kind = "gradient_boosting"

    def __init__(self, model: GradientBoostingModel):
        interner: Tuple[Dict[str, int], List[str]] = ({}, [])
        self.trees = [CompiledTree(t, interner) for t in model.trees]
        self.bank = CompiledTreeBank(self.trees) if self.trees else None
        self.columns = interner[1]
        self.init_score = model.init_score
        self.learning_rate = model.learning_rate
        self.loss = model.loss
        self.required_features = list(model.required_features)

    def raw_scores(self, features: FeatureFrame) -> np.ndarray:
        n = len(next(iter(features.values()))) if features else 0
        score = np.full(n, self.init_score, dtype=np.float64)
        if self.bank is None:
            return score
        leaves = self.bank.leaf_matrix(features)
        # Same per-tree accumulation order as the seed model: the sum is
        # built tree by tree, so the float rounding matches bit for bit.
        for t in range(leaves.shape[0]):
            score += self.learning_rate * leaves[t]
        return score

    def predict_arrays(self, features: FeatureFrame) -> np.ndarray:
        return self.loss.predict_transform(self.raw_scores(features))


class CompiledMulticlassBoosting:
    """K compiled chains; softmax / first-max argmax as the seed model."""

    kind = "multiclass_boosting"

    def __init__(self, model: MulticlassBoostingModel):
        interner: Tuple[Dict[str, int], List[str]] = ({}, [])
        self.trees_per_class = [
            [CompiledTree(t, interner) for t in chain]
            for chain in model.trees_per_class
        ]
        self.columns = interner[1]
        flat = [t for chain in self.trees_per_class for t in chain]
        self.bank = CompiledTreeBank(flat) if flat else None
        # bank row range [start, stop) of each class's chain
        self._chain_slices = []
        start = 0
        for chain in self.trees_per_class:
            self._chain_slices.append((start, start + len(chain)))
            start += len(chain)
        self.init_scores = list(model.init_scores)
        self.learning_rate = model.learning_rate
        self.required_features = list(model.required_features)

    @property
    def num_classes(self) -> int:
        return len(self.trees_per_class)

    def scores(self, features: FeatureFrame) -> np.ndarray:
        n = len(next(iter(features.values()))) if features else 0
        out = np.zeros((n, self.num_classes), dtype=np.float64)
        leaves = (
            self.bank.leaf_matrix(features) if self.bank is not None else None
        )
        for k, (start, stop) in enumerate(self._chain_slices):
            out[:, k] = self.init_scores[k]
            if leaves is None:
                continue
            for t in range(start, stop):
                out[:, k] += self.learning_rate * leaves[t]
        return out

    def predict_proba(self, features: FeatureFrame) -> np.ndarray:
        return SoftmaxLoss.softmax(self.scores(features))

    def predict_arrays(self, features: FeatureFrame) -> np.ndarray:
        return np.argmax(self.scores(features), axis=1).astype(np.float64)


class CompiledRandomForest:
    """Compiled bagged trees; mean / vote reduction as the seed model."""

    kind = "random_forest"

    def __init__(self, model: RandomForestModel):
        if not model.trees:
            raise TrainingError("forest has no trees")
        interner: Tuple[Dict[str, int], List[str]] = ({}, [])
        self.trees = [CompiledTree(t, interner) for t in model.trees]
        self.bank = CompiledTreeBank(self.trees)
        self.columns = interner[1]
        self.classification = model.classification
        self.num_classes = model.num_classes
        self.required_features = list(model.required_features)

    def predict_arrays(self, features: FeatureFrame) -> np.ndarray:
        # Identical to the seed's np.stack([...tree predictions...]):
        # the bank rows are the same per-tree leaf values.
        stacked = self.bank.leaf_matrix(features)
        if not self.classification:
            return stacked.mean(axis=0)
        votes = np.zeros((stacked.shape[1], self.num_classes))
        for row in stacked:
            for k in range(self.num_classes):
                votes[:, k] += row == k
        return votes.argmax(axis=1).astype(np.float64)


CompiledModel = Union[
    CompiledDecisionTree,
    CompiledGradientBoosting,
    CompiledMulticlassBoosting,
    CompiledRandomForest,
]


def compile_model(model: object) -> CompiledModel:
    """Flatten any trained model class into its compiled evaluator."""
    if isinstance(model, DecisionTreeModel):
        return CompiledDecisionTree(model)
    if isinstance(model, GradientBoostingModel):
        return CompiledGradientBoosting(model)
    if isinstance(model, MulticlassBoostingModel):
        return CompiledMulticlassBoosting(model)
    if isinstance(model, RandomForestModel):
        return CompiledRandomForest(model)
    raise TrainingError(f"cannot compile {type(model).__name__}")


def compiled_node_count(compiled: CompiledModel) -> int:
    """Total flattened nodes (serving census / cache sizing)."""
    if isinstance(compiled, CompiledDecisionTree):
        return compiled.tree.num_nodes
    if isinstance(compiled, CompiledMulticlassBoosting):
        return sum(
            t.num_nodes for chain in compiled.trees_per_class for t in chain
        )
    return sum(t.num_nodes for t in compiled.trees)


def predict_compiled(
    db, graph, model, fact: Optional[str] = None
) -> np.ndarray:
    """Score every fact row via the compiled path (drop-in for
    :func:`~repro.core.predict.predict_join`)."""
    from repro.core.predict import feature_frame

    compiled = model if _is_compiled(model) else compile_model(model)
    needed: Optional[Sequence[str]] = getattr(
        compiled, "required_features", None
    )
    frame = feature_frame(db, graph, columns=needed, fact=fact)
    return compiled.predict_arrays(frame)


def _is_compiled(model: object) -> bool:
    return isinstance(
        model,
        (
            CompiledDecisionTree,
            CompiledGradientBoosting,
            CompiledMulticlassBoosting,
            CompiledRandomForest,
        ),
    )
