"""Sampling over non-materialized joins (Section 5.5.2).

Random forests need uniform, independent samples of the join result R⋈
without materializing it.  Naively sampling each relation is neither
uniform nor join-safe, so JoinBoost uses *ancestral sampling*: treat R⋈ as
a probability table with mass 1/|R⋈| per tuple, sample the root relation
from its marginal (a COUNT semi-ring aggregation — computable factorized),
then walk the join tree sampling each child conditioned on the sampled
parent keys.

Two entry points:

* :func:`ancestral_sample` — the general algorithm over any acyclic graph;
* :func:`sample_fact_table` — the paper's snowflake fast path: when the
  fact table is 1-1 with R⋈, a uniform row sample of F is already a
  uniform sample of the join.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import JoinGraphError
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, rooted_tree
from repro.semiring.variance import VarianceSemiRing


def _downstream_weights(db, graph: JoinGraph, relation: str, parent: Optional[str]):
    """Per-row join multiplicity of ``relation``'s subtree (away from
    ``parent``), as arrays aligned with the relation's rows.

    The weight of row t is the number of R⋈ tuples that extend t through
    the subtree below ``relation`` — exactly the COUNT message product.
    """
    from repro.factorize.executor import Factorizer

    # A COUNT-only factorizer: no target lift, so every message is a count.
    counting = Factorizer(db, graph, VarianceSemiRing(), assume_ri=False,
                          cache_enabled=True)
    table = db.table(relation)
    n = table.num_rows()
    weights = np.ones(n, dtype=np.float64)
    for neighbor in graph.neighbors(relation):
        if neighbor == parent:
            continue
        info = counting.message(neighbor, relation, predicates={})
        edge = edge_between(graph, relation, neighbor)
        own_keys = edge.keys_for(relation)
        msg = db.table(info.table)
        # Map each row's key tuple to the message count (0 when absent).
        from repro.engine.operators import join_indices

        left = [table.column(k).values for k in own_keys]
        right = [msg.column(k).values for k in info.key_columns]
        l_idx, r_idx = join_indices(left, right, how="left")
        counts = msg.column("c").values.astype(np.float64)
        row_counts = np.zeros(n, dtype=np.float64)
        matched = r_idx >= 0
        row_counts[l_idx[matched]] = counts[r_idx[matched]]
        weights *= row_counts
    return weights


def ancestral_sample(
    db,
    graph: JoinGraph,
    n_samples: int,
    rng: Optional[np.random.Generator] = None,
    root: Optional[str] = None,
) -> Dict[str, np.ndarray]:
    """Draw ``n_samples`` uniform tuples of R⋈.

    Returns relation -> array of row indexes (one per sample); combining
    the indexed rows of every relation reconstructs the sampled R⋈ tuples.
    """
    rng = rng or np.random.default_rng()
    graph.validate()
    if root is None:
        root = graph.target_relation
    parent_map, children, _ = rooted_tree(graph, root)

    # Root: sample by marginal probability = downstream multiplicity.
    weights = _downstream_weights(db, graph, root, None)
    total = weights.sum()
    if total <= 0:
        raise JoinGraphError("join result is empty; nothing to sample")
    chosen: Dict[str, np.ndarray] = {}
    chosen[root] = rng.choice(
        len(weights), size=n_samples, replace=True, p=weights / total
    )

    # Children: conditional sampling given the sampled parent keys.
    order: List[str] = []
    frontier = [root]
    while frontier:
        current = frontier.pop(0)
        order.append(current)
        frontier.extend(children[current])

    for relation in order[1:]:
        parent = parent_map[relation]
        edge = edge_between(graph, relation, parent)
        parent_keys = edge.keys_for(parent)
        own_keys = edge.keys_for(relation)
        parent_table = db.table(parent)
        own_table = db.table(relation)
        weights = _downstream_weights(db, graph, relation, parent)

        # Bucket candidate child rows by join-key value.
        from repro.engine.operators import factorize

        own_key_arrays = [own_table.column(k).values for k in own_keys]
        parent_key_arrays = [
            parent_table.column(k).values[chosen[parent]] for k in parent_keys
        ]
        merged = [
            np.concatenate([np.asarray(a), np.asarray(b)])
            for a, b in zip(own_key_arrays, parent_key_arrays)
        ]
        codes, _, _, _ = factorize(merged)
        own_codes = codes[: len(own_key_arrays[0])]
        want_codes = codes[len(own_key_arrays[0]):]

        buckets: Dict[int, np.ndarray] = {}
        order_idx = np.argsort(own_codes, kind="stable")
        sorted_codes = own_codes[order_idx]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_codes)]])
        for s, e in zip(starts, ends):
            if e > s:
                buckets[int(sorted_codes[s])] = order_idx[s:e]

        picks = np.empty(n_samples, dtype=np.int64)
        for i, code in enumerate(want_codes):
            candidates = buckets.get(int(code))
            if candidates is None or len(candidates) == 0:
                raise JoinGraphError(
                    f"sampled {parent!r} row has no matching {relation!r} row; "
                    "join keys are not referentially intact"
                )
            w = weights[candidates]
            w_total = w.sum()
            if w_total <= 0:
                raise JoinGraphError("zero-weight candidate bucket")
            picks[i] = rng.choice(candidates, p=w / w_total)
        chosen[relation] = picks
    return chosen


def sample_fact_table(
    db,
    fact: str,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Snowflake fast path: uniform row sample of the fact table.

    Because F is 1-1 with R⋈ in a snowflake schema, this is a uniform
    sample of the join result (Section 5.5.2, minor optimizations).
    Returns the sampled row indexes (without replacement).
    """
    rng = rng or np.random.default_rng()
    n = db.table(fact).num_rows()
    size = max(1, int(round(n * fraction)))
    return rng.choice(n, size=min(size, n), replace=False)
