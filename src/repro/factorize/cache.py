"""Message cache: the work-sharing engine of Sections 3.3 and 5.5.1.

A message between relations depends only on (a) the directed edge it
crosses and (b) the selection predicates applied to relations in the
sending side's connected component — *not* on which relation is the
message-passing root.  The cache is therefore keyed by
``(child, parent, predicate-state of child's side)`` which automatically
yields both kinds of sharing the paper exploits:

* across the per-feature query batch of one tree node (LMFAO-style), and
* across tree nodes: after splitting on a relation R, only messages whose
  side contains R are invalidated; everything else is reused (the ~3×
  improvement of Figure 16a).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

PredicateState = FrozenSet[Tuple[str, str]]  # {(relation, condition sql)}


@dataclasses.dataclass
class MessageInfo:
    """A materialized message: its table, kind, and key columns.

    ``carried`` lists the (relation, column) pairs the message re-exposes
    as extra grouping columns (empty for ordinary messages); the carry
    cache needs it to rebuild alias references on a hit.
    """

    table: str
    kind: str  # 'count' | 'full'
    key_columns: Tuple[str, ...]
    child: str
    parent: str
    carried: Tuple[Tuple[str, str], ...] = ()


class MessageCache:
    """Keyed store of materialized message tables, with hit accounting.

    Ordinary messages key on ``(child, parent, predicate state)``.  Carry
    messages — which additionally group by a mutable leaf-membership
    column — key on the same triple plus an opaque ``scope`` (the
    frontier evaluator passes its leaf epoch), so one evaluation round's
    relations share materializations while a stale epoch can never be
    served.
    """

    def __init__(self, db, enabled: bool = True):
        self.db = db
        self.enabled = enabled
        self._store: Dict[Tuple, MessageInfo] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        child: str,
        parent: str,
        side_predicates: PredicateState,
        scope: Optional[Hashable] = None,
    ) -> Tuple:
        if scope is None:
            return (child, parent, side_predicates)
        return (child, parent, side_predicates, scope)

    def lookup(
        self,
        child: str,
        parent: str,
        side_predicates: PredicateState,
        scope: Optional[Hashable] = None,
    ) -> Optional[MessageInfo]:
        if not self.enabled:
            self.misses += 1
            return None
        info = self._store.get(self.key(child, parent, side_predicates, scope))
        if info is not None:
            self.hits += 1
        else:
            self.misses += 1
        return info

    def store(
        self,
        child: str,
        parent: str,
        side_predicates: PredicateState,
        info: MessageInfo,
        scope: Optional[Hashable] = None,
    ) -> None:
        if self.enabled:
            self._store[self.key(child, parent, side_predicates, scope)] = info

    def drop_scoped(self, keep_scope: Optional[Hashable] = None) -> int:
        """Drop every scoped (carry) entry whose scope differs from
        ``keep_scope`` — called when the leaf epoch advances."""
        doomed = [
            key for key in self._store
            if len(key) == 4 and key[3] != keep_scope
        ]
        for key in doomed:
            info = self._store.pop(key)
            self.db.drop_table(info.table, if_exists=True)
        return len(doomed)

    def invalidate_all(self, drop_tables: bool = True) -> int:
        """Clear the cache (e.g. after residual updates re-lift the fact
        table); optionally drop the backing tables."""
        count = len(self._store)
        if drop_tables:
            for info in self._store.values():
                self.db.drop_table(info.table, if_exists=True)
        self._store.clear()
        return count

    def invalidate_relation(self, relation: str, drop_tables: bool = True) -> int:
        """Drop every cached message whose sending side could include
        ``relation`` — conservative invalidation used after updates to a
        single base table."""
        doomed = [
            key for key, info in self._store.items() if relation in key[2] or True
        ]
        # Side membership is not stored on the key, so a per-relation
        # invalidation would need the graph; callers that know the graph
        # pass through Factorizer.invalidate_for_relation instead.
        return self.invalidate_all(drop_tables) if doomed else 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._store)}

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)
