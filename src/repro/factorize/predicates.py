"""Structured split predicates.

Tree nodes carry per-relation predicates.  They are structured (column,
op, value) triples rather than raw SQL strings so that

* they render with an explicit table alias (messages and base tables can
  share column names),
* they are hashable — the message cache keys on the predicate state of a
  component — and
* missing-value routing (Appendix D.2) is a flag, not string surgery.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from repro.exceptions import TrainingError

Value = Union[int, float, str, Tuple[Union[int, float, str], ...], None]

_OPS = {"<=", "<", ">", ">=", "=", "!=", "IN", "NOT IN", "IS NULL", "IS NOT NULL"}


def _sql_literal(value: Union[int, float, str]) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return repr(value)
    return repr(value)


@dataclasses.dataclass(frozen=True)
class Predicate:
    """One split predicate over a single column.

    ``include_null`` routes NULLs to this side of the split (the
    LightGBM-style missing handling of Appendix D.2).
    """

    column: str
    op: str
    value: Value = None
    include_null: bool = False

    def __post_init__(self):
        if self.op not in _OPS:
            raise TrainingError(f"unsupported predicate operator {self.op!r}")
        if self.op in ("IN", "NOT IN") and not isinstance(self.value, tuple):
            raise TrainingError(f"{self.op} predicates need a tuple of values")

    def render(self, alias: str = "") -> str:
        """SQL text with every column reference prefixed by ``alias``."""
        ref = f"{alias}.{self.column}" if alias else self.column
        if self.op in ("IS NULL", "IS NOT NULL"):
            return f"{ref} {self.op}"
        if self.op in ("IN", "NOT IN"):
            inner = ", ".join(_sql_literal(v) for v in self.value)  # type: ignore[union-attr]
            body = f"{ref} {self.op} ({inner})"
        else:
            body = f"{ref} {self.op} {_sql_literal(self.value)}"  # type: ignore[arg-type]
        if self.include_null:
            return f"({body} OR {ref} IS NULL)"
        return f"({body} AND {ref} IS NOT NULL)" if self.op in ("!=", "NOT IN") else body

    def negate(self) -> "Predicate":
        """The complementary predicate (¬σ); NULL routing flips."""
        flip = {
            "<=": ">",
            ">": "<=",
            "<": ">=",
            ">=": "<",
            "=": "!=",
            "!=": "=",
            "IN": "NOT IN",
            "NOT IN": "IN",
            "IS NULL": "IS NOT NULL",
            "IS NOT NULL": "IS NULL",
        }
        return Predicate(
            column=self.column,
            op=flip[self.op],
            value=self.value,
            include_null=not self.include_null
            if self.op not in ("IS NULL", "IS NOT NULL")
            else False,
        )

    def __str__(self) -> str:
        return self.render()


PredicateMap = dict  # relation name -> tuple[Predicate, ...]


def add_predicate(
    predicates: PredicateMap, relation: str, predicate: Predicate
) -> PredicateMap:
    """Functional update: a new map with ``predicate`` appended."""
    out = dict(predicates)
    out[relation] = tuple(out.get(relation, ())) + (predicate,)
    return out


def predicate_state(
    predicates: PredicateMap, relations
) -> frozenset:
    """Hashable predicate state restricted to ``relations`` (cache keys)."""
    state = set()
    for relation in relations:
        for pred in predicates.get(relation, ()):
            state.add((relation, pred.render("t")))
    return frozenset(state)


def render_conjunction(
    predicates: Tuple[Predicate, ...], alias: str = ""
) -> Optional[str]:
    """AND together a relation's predicates, or None when empty."""
    if not predicates:
        return None
    return " AND ".join(p.render(alias) for p in predicates)
