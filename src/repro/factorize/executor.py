"""The Factorizer: semi-ring aggregation over a join graph, in pure SQL.

This is the component the paper's architecture diagram (Figure 4) calls
the *Factorizer*: it decomposes each aggregation query into message-passing
and absorption queries, materializes messages as tables, and reuses them
across features and tree nodes via the :class:`MessageCache`.

The message recursion is root-independent: ``message(child, parent)``
aggregates ``child``'s component, which only depends on the directed edge
and the predicates inside ``child``'s side — so a single cache serves every
per-feature root choice and every tree node.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import JoinGraphError, TrainingError
from repro.engine.result import Relation
from repro.factorize.cache import MessageCache, MessageInfo
from repro.factorize.messages import (
    COUNT,
    FULL,
    IDENTITY,
    Annotation,
    aggregate_select_list,
    aggregated_kind,
    combine_annotations,
)
from repro.factorize.predicates import (
    PredicateMap,
    predicate_state,
    render_conjunction,
)
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, is_acyclic
from repro.semiring.base import SemiRing


@dataclasses.dataclass
class MultiAbsorption:
    """A prepared multi-group absorption rooted at one relation.

    Messages (standard and carry) are already materialized; callers
    assemble one or more SELECTs from the pieces — the frontier evaluator
    builds a ``UNION ALL`` branch per feature over the same ``from_sql`` —
    then drop ``temp_tables`` when done.
    """

    root: str
    #: ``FROM <table> AS t <joins>`` — shared by every branch
    from_sql: str
    #: root-relation predicate conjunction (None when unfiltered)
    where_sql: Optional[str]
    #: ``(component, SUM(...) expression)`` pairs for the select list
    agg_selects: List[Tuple[str, str]]
    #: alias-qualified references for carried columns: (relation, column)
    carry_refs: Dict[Tuple[str, str], str]
    #: carry-message tables to drop after the query runs
    temp_tables: List[str]

    def ref(self, relation: str, column: str) -> str:
        """The SQL reference of a carried (or root-owned) column."""
        return self.carry_refs[(relation, column)]


def prepare_training_paths(db, graph: JoinGraph, factorizer: "Factorizer") -> None:
    """One-time physical setup shared by every training driver.

    Pre-encodes the join-key columns (embedded encoded-key cache) and
    gives the backend its training-setup hook — the sqlite connector
    builds join-key indexes and runs ANALYZE.  Both halves are idempotent,
    so per-tree drivers (random forests) can call this per lift.
    """
    factorizer.warm_encodings()
    prepare = getattr(db, "prepare_training", None)
    if prepare is not None:
        prepare(graph, factorizer.lifted)


def configure_encoding_cache(db, mode: str) -> None:
    """Apply the ``encoding_cache`` training parameter to ``db``.

    ``"auto"``/``"on"`` enable the embedded engine's version-stamped
    encoded-key cache for the run; ``"off"`` disables it (every query
    re-encodes, the pre-cache behavior used by ablations and the CI
    parity gate).  Backends without an encoding cache ignore the knob.
    """
    cache = getattr(db, "encodings", None)
    if cache is not None:
        cache.enabled = mode != "off"


class Factorizer:
    """Executes factorized aggregations for one (graph, semi-ring) pair."""

    def __init__(
        self,
        db,
        graph: JoinGraph,
        semiring: SemiRing,
        assume_ri: bool = True,
        cache_enabled: bool = True,
        outer_joins: bool = False,
    ):
        graph.validate(require_target=False)
        if not is_acyclic(graph):
            raise JoinGraphError(
                "Factorizer requires an acyclic join graph; decompose first"
            )
        self.db = db
        self.graph = graph
        self.semiring = semiring
        self.assume_ri = assume_ri
        self.outer_joins = outer_joins
        self.cache = MessageCache(db, enabled=cache_enabled)
        self.lifted: Dict[str, str] = {}
        self._side: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self.message_requests = 0
        self.message_executions = 0
        self.carry_message_executions = 0
        self.carry_cache_hits = 0
        self.carry_cache_misses = 0
        # Message builds are the *shared* state of a parallel evaluation
        # round: two relations routed through the same hop must not race
        # the MessageCache into materializing the same message twice (the
        # loser's temp would leak).  One re-entrant lock makes each
        # lookup -> CREATE TABLE -> store sequence atomic; the fused
        # split queries themselves run outside it and overlap freely.
        self._build_lock = threading.RLock()
        if any(e.multiplicity is None for e in graph.edges):
            graph.analyze()
        self._compute_sides()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _compute_sides(self) -> None:
        """For each directed edge, the relations on the sending side."""
        for edge in self.graph.edges:
            for child, parent in ((edge.left, edge.right), (edge.right, edge.left)):
                side = {child}
                frontier = [child]
                while frontier:
                    current = frontier.pop()
                    for neighbor in self.graph.neighbors(current):
                        if neighbor == parent and current == child:
                            continue
                        if neighbor not in side and neighbor != parent:
                            side.add(neighbor)
                            frontier.append(neighbor)
                self._side[(child, parent)] = frozenset(side)

    def lift(
        self,
        lift_exprs: Optional[Sequence[Tuple[str, str]]] = None,
        source_table: Optional[str] = None,
    ) -> str:
        """Materialize the lifted copy of the target relation.

        ``lift_exprs`` defaults to the semi-ring's own lift of Y; gradient
        boosting passes loss-specific (h, g) expressions instead.
        ``source_table`` substitutes a different physical table for the
        target relation (random forests lift their per-tree sample).
        Returns the lifted table's name.  Non-target relations are not
        copied — they carry the 1 annotation implicitly.
        """
        target = self.graph.target_relation
        y_column = self.graph.target_column
        source = source_table or target
        exprs = list(lift_exprs) if lift_exprs is not None else self.semiring.lift_sql(y_column)
        base_cols = self.db.table(source).column_names()
        collisions = {c for c, _ in exprs} & {c.lower() for c in base_cols}
        if collisions:
            raise TrainingError(
                f"target relation {target!r} has columns colliding with "
                f"semi-ring components: {sorted(collisions)}"
            )
        lifted_name = self.db.temp_name(f"lift_{target}")
        select_parts = [f"t.{c}" for c in base_cols] + [
            f"{expr} AS {comp}" for comp, expr in exprs
        ]
        self.db.execute(
            f"CREATE TABLE {lifted_name} AS SELECT {', '.join(select_parts)} "
            f"FROM {source} AS t",
            tag="lift",
        )
        self.lifted[target] = lifted_name
        return lifted_name

    def lift_identity(self, relation: str) -> str:
        """Materialize a lifted copy of ``relation`` annotated with 1.

        Used for galaxy-schema update annotations (Section 4.2): each CPT
        cluster's fact table carries components initialized to the 1
        element; residual updates multiply them by lift(-p) in place.
        """
        exprs = self.semiring.identity_sql()
        base_cols = self.db.table(relation).column_names()
        collisions = {c for c, _ in exprs} & {c.lower() for c in base_cols}
        if collisions:
            raise TrainingError(
                f"relation {relation!r} has columns colliding with "
                f"semi-ring components: {sorted(collisions)}"
            )
        lifted_name = self.db.temp_name(f"lift_{relation}")
        select_parts = [f"t.{c}" for c in base_cols] + [
            f"{expr} AS {comp}" for comp, expr in exprs
        ]
        self.db.execute(
            f"CREATE TABLE {lifted_name} AS SELECT {', '.join(select_parts)} "
            f"FROM {relation} AS t",
            tag="lift",
        )
        self.lifted[relation] = lifted_name
        return lifted_name

    def adopt_lifted(self, relation: str, table_name: str) -> None:
        """Register an externally prepared lifted table (multiclass
        trainers share one table holding every class's components)."""
        self.lifted[relation] = table_name

    def warm_encodings(self) -> int:
        """Factorize every join-key column once, up front.

        Message passing touches the same join keys in every absorption
        query of the run; pre-encoding them at training setup moves the
        one unavoidable encode pass per column out of the first query's
        latency and guarantees each subsequent query is a cache lookup.
        No-op on backends without an encoding cache.  Returns the number
        of columns warmed.
        """
        cache = getattr(self.db, "encodings", None)
        if cache is None or not cache.enabled:
            return 0
        warmed = 0
        for edge in self.graph.edges:
            for relation in (edge.left, edge.right):
                table = self.db.table(self.storage_table(relation))
                for key in edge.keys_for(relation):
                    if key in table:
                        if cache.encoding_for(table.column(key)) is not None:
                            warmed += 1
        return warmed

    def storage_table(self, relation: str) -> str:
        """The physical table backing a relation (lifted copy if any)."""
        return self.lifted.get(relation, relation)

    def _own_annotation(self, relation: str, alias: str) -> Annotation:
        if relation in self.lifted:
            return Annotation.from_columns(FULL, alias, self.semiring)
        return Annotation.identity()

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def message(
        self, child: str, parent: str, predicates: Optional[PredicateMap] = None
    ) -> Optional[MessageInfo]:
        """Materialize (or fetch) the message child -> parent.

        Returns ``None`` when the message is an identity message that can
        be dropped (Appendix D): nothing lifted or filtered on the child's
        side and the join into ``parent`` is fan-out-free.
        """
        predicates = predicates or {}
        with self._build_lock:
            self.message_requests += 1
            side = self._side[(child, parent)]
            state = predicate_state(predicates, side)

            if self._droppable(child, parent, side, state):
                return None

            cached = self.cache.lookup(child, parent, state)
            if cached is not None:
                return cached

            info = self._materialize_message(child, parent, predicates, state)
            self.cache.store(child, parent, state, info)
            return info

    def _droppable(
        self,
        child: str,
        parent: str,
        side: FrozenSet[str],
        state: FrozenSet,
    ) -> bool:
        if not self.assume_ri:
            return False
        if state:
            return False
        if any(rel in self.lifted for rel in side):
            return False
        edge = edge_between(self.graph, child, parent)
        mult = edge.multiplicity or "m-n"
        if edge.right == child and mult in ("n-1", "1-1"):
            return True
        if edge.left == child and mult in ("1-n", "1-1"):
            return True
        return False

    def _incoming(
        self,
        relation: str,
        exclude: Optional[str],
        predicates: PredicateMap,
    ) -> List[MessageInfo]:
        infos: List[MessageInfo] = []
        for neighbor in self.graph.neighbors(relation):
            if neighbor == exclude:
                continue
            info = self.message(neighbor, relation, predicates)
            if info is not None:
                infos.append(info)
        return infos

    def _join_clauses(
        self, relation: str, infos: List[MessageInfo]
    ) -> Tuple[List[str], Annotation]:
        """JOIN fragments plus the folded annotation for ``relation``."""
        annotation = self._own_annotation(relation, "t")
        clauses: List[str] = []
        join_kind = "LEFT JOIN" if self.outer_joins else "JOIN"
        for i, info in enumerate(infos):
            alias = f"m{i}"
            edge = edge_between(self.graph, relation, info.child)
            own_keys = edge.keys_for(relation)
            msg_keys = info.key_columns
            condition = " AND ".join(
                f"t.{ok} = {alias}.{mk}" for ok, mk in zip(own_keys, msg_keys)
            )
            clauses.append(f"{join_kind} {info.table} AS {alias} ON {condition}")
            annotation = combine_annotations(
                self.semiring,
                annotation,
                Annotation.from_columns(
                    info.kind, alias, self.semiring, outer=self.outer_joins
                ),
            )
        return clauses, annotation

    def _materialize_message(
        self,
        child: str,
        parent: str,
        predicates: PredicateMap,
        state: FrozenSet,
    ) -> MessageInfo:
        edge = edge_between(self.graph, child, parent)
        keys = edge.keys_for(child)
        infos = self._incoming(child, exclude=parent, predicates=predicates)
        joins, annotation = self._join_clauses(child, infos)
        select_keys = [f"t.{k} AS {k}" for k in keys]
        agg_parts = [
            f"{expr} AS {comp}"
            for comp, expr in aggregate_select_list(self.semiring, annotation)
        ]
        where = render_conjunction(predicates.get(child, ()), alias="t")
        table = self.storage_table(child)
        msg_name = self.db.temp_name(f"msg_{child}_{parent}")
        sql = (
            f"CREATE TABLE {msg_name} AS "
            f"SELECT {', '.join(select_keys + agg_parts)} "
            f"FROM {table} AS t {' '.join(joins)}"
            + (f" WHERE {where}" if where else "")
            + f" GROUP BY {', '.join(f't.{k}' for k in keys)}"
        )
        self.db.execute(sql, tag="message")
        self.message_executions += 1
        return MessageInfo(
            table=msg_name,
            kind=aggregated_kind(annotation),
            key_columns=tuple(keys),
            child=child,
            parent=parent,
        )

    # ------------------------------------------------------------------
    # Absorption
    # ------------------------------------------------------------------
    def absorption_sql(
        self,
        root: str,
        group_attrs: Sequence[str],
        predicates: Optional[PredicateMap] = None,
    ) -> Tuple[str, List[str]]:
        """SELECT text aggregating components grouped by ``group_attrs``.

        Messages into ``root`` are materialized as a side effect; the
        returned SQL is self-contained and can be wrapped by callers (the
        split finder wraps it in window functions, Example 2 style).
        Returns (sql, component_columns).
        """
        predicates = predicates or {}
        infos = self._incoming(root, exclude=None, predicates=predicates)
        joins, annotation = self._join_clauses(root, infos)
        agg = aggregate_select_list(self.semiring, annotation)
        select_parts = [f"t.{a} AS {a}" for a in group_attrs] + [
            f"{expr} AS {comp}" for comp, expr in agg
        ]
        where = render_conjunction(predicates.get(root, ()), alias="t")
        sql = (
            f"SELECT {', '.join(select_parts)} "
            f"FROM {self.storage_table(root)} AS t {' '.join(joins)}"
            + (f" WHERE {where}" if where else "")
        )
        if group_attrs:
            sql += f" GROUP BY {', '.join(f't.{a}' for a in group_attrs)}"
        return sql, [comp for comp, _ in agg]

    def absorb(
        self,
        root: str,
        group_attrs: Sequence[str],
        predicates: Optional[PredicateMap] = None,
        tag: str = "absorption",
    ) -> Relation:
        sql, _ = self.absorption_sql(root, group_attrs, predicates)
        return self.db.execute(sql, tag=tag)

    def totals(
        self,
        predicates: Optional[PredicateMap] = None,
        tag: str = "totals",
        root: Optional[str] = None,
    ) -> Dict[str, float]:
        """Aggregate components over the whole (filtered) join result."""
        if root is None:
            try:
                root = self.graph.target_relation
            except JoinGraphError:
                root = (
                    next(iter(self.lifted))
                    if self.lifted
                    else next(iter(self.graph.relations))
                )
        relation = self.absorb(root, [], predicates, tag=tag)
        row = relation.first_row()
        return {k: (0.0 if v is None else float(v)) for k, v in row.items()}

    # ------------------------------------------------------------------
    # Multi-group absorption (batched frontier evaluation)
    # ------------------------------------------------------------------
    def multi_absorption(
        self,
        root: str,
        carry: Dict[str, Sequence[str]],
        predicates: Optional[PredicateMap] = None,
        table_override: Optional[Dict[str, str]] = None,
        carry_filters: Optional[Dict[Tuple[str, str], Sequence]] = None,
        cache_scope: Optional[Hashable] = None,
    ) -> MultiAbsorption:
        """Prepare an absorption at ``root`` with grouping columns carried
        in from *other* relations.

        ``carry`` maps relation -> columns to propagate to the root's
        scope: each message whose sending side contains a carry relation
        additionally groups by (and re-exposes) those columns, so the root
        query can group on them — this is how a leaf-membership label on
        the fact table reaches every relation's split query in one pass.
        ``table_override`` substitutes physical tables per relation (the
        rebuild mode's labeled copy of the lifted fact).

        ``carry_filters`` maps a carried (relation, column) to the values
        worth propagating — the incremental frontier passes the round's
        open leaf ids, so carry messages aggregate only rows that can
        contribute (cost proportional to the frontier, not the table).

        ``cache_scope`` controls carry-message reuse.  ``None`` keeps the
        historical behavior — carry messages are materialized fresh and
        listed in ``temp_tables`` for the caller to drop.  A hashable
        scope (the frontier's leaf epoch) caches them instead, shared by
        every relation evaluated in the same round; stale scopes are
        evicted via :meth:`begin_carry_scope`.  Temps materialized before
        a mid-build failure are dropped, not stranded.
        """
        predicates = predicates or {}
        override = table_override or {}
        carry_filters = carry_filters or {}
        if not self.cache.enabled:
            # A disabled cache makes store() a silent no-op: scoped carry
            # tables would be owned by nobody and leak.  Fall back to the
            # caller-dropped temp path.
            cache_scope = None
        temps: List[str] = []
        try:
            # The build lock covers the whole hop chain: a concurrent
            # round evaluating another relation re-uses (never re-builds)
            # any message this chain materializes, and vice versa.
            with self._build_lock:
                entries: List[Tuple[MessageInfo, Tuple[Tuple[str, str], ...]]] = []
                for neighbor in self.graph.neighbors(root):
                    entry = self._carry_message(
                        neighbor, root, predicates, carry, override, temps,
                        carry_filters, cache_scope,
                    )
                    if entry is not None:
                        entries.append(entry)
        except Exception:
            for temp in temps:
                self.db.drop_table(temp, if_exists=True)
            raise

        annotation = self._own_annotation(root, "t")
        joins: List[str] = []
        carry_refs: Dict[Tuple[str, str], str] = {}
        for column in carry.get(root, ()):
            carry_refs[(root, column)] = f"t.{column}"
        join_kind = "LEFT JOIN" if self.outer_joins else "JOIN"
        for i, (info, carried) in enumerate(entries):
            alias = f"m{i}"
            edge = edge_between(self.graph, root, info.child)
            own_keys = edge.keys_for(root)
            condition = " AND ".join(
                f"t.{ok} = {alias}.{mk}"
                for ok, mk in zip(own_keys, info.key_columns)
            )
            joins.append(f"{join_kind} {info.table} AS {alias} ON {condition}")
            annotation = combine_annotations(
                self.semiring,
                annotation,
                Annotation.from_columns(
                    info.kind, alias, self.semiring, outer=self.outer_joins
                ),
            )
            for rel_col in carried:
                carry_refs[rel_col] = f"{alias}.{rel_col[1]}"
        table = override.get(root, self.storage_table(root))
        return MultiAbsorption(
            root=root,
            from_sql=f"FROM {table} AS t {' '.join(joins)}".rstrip(),
            where_sql=render_conjunction(predicates.get(root, ()), alias="t"),
            agg_selects=aggregate_select_list(self.semiring, annotation),
            carry_refs=carry_refs,
            temp_tables=temps,
        )

    @staticmethod
    def _carry_condition(
        ref: str,
        rel_col: Tuple[str, str],
        carry_filters: Dict[Tuple[str, str], Sequence],
    ) -> str:
        """Earliest-hop pruning of carried columns: restrict to the
        frontier's values when known, else drop unlabeled rows."""
        values = carry_filters.get(rel_col)
        if values is not None:
            rendered = ", ".join(str(int(v)) for v in values)
            return f"{ref} IN ({rendered})"
        return f"{ref} IS NOT NULL"

    def _carry_message(
        self,
        child: str,
        parent: str,
        predicates: PredicateMap,
        carry: Dict[str, Sequence[str]],
        override: Dict[str, str],
        temps: List[str],
        carry_filters: Dict[Tuple[str, str], Sequence],
        cache_scope: Optional[Hashable],
    ) -> Optional[Tuple[MessageInfo, Tuple[Tuple[str, str], ...]]]:
        """Message child -> parent, propagating carry columns of the
        sending side; falls through to the cached standard path when the
        side carries nothing."""
        side = self._side[(child, parent)]
        if not any(rel in side for rel in carry):
            info = self.message(child, parent, predicates)
            return None if info is None else (info, ())

        self.message_requests += 1
        state = predicate_state(predicates, side)
        if cache_scope is not None:
            cached = self.cache.lookup(child, parent, state, scope=cache_scope)
            if cached is not None:
                self.carry_cache_hits += 1
                return (cached, cached.carried)
            self.carry_cache_misses += 1

        edge = edge_between(self.graph, child, parent)
        keys = edge.keys_for(child)
        entries: List[Tuple[MessageInfo, Tuple[Tuple[str, str], ...]]] = []
        for neighbor in self.graph.neighbors(child):
            if neighbor == parent:
                continue
            entry = self._carry_message(
                neighbor, child, predicates, carry, override, temps,
                carry_filters, cache_scope,
            )
            if entry is not None:
                entries.append(entry)

        annotation = self._own_annotation(child, "t")
        joins: List[str] = []
        carried: List[Tuple[str, str]] = []
        refs: List[str] = []
        for column in carry.get(child, ()):
            carried.append((child, column))
            refs.append(f"t.{column}")
        join_kind = "LEFT JOIN" if self.outer_joins else "JOIN"
        for i, (info, sub_carried) in enumerate(entries):
            alias = f"m{i}"
            sub_edge = edge_between(self.graph, child, info.child)
            own_keys = sub_edge.keys_for(child)
            condition = " AND ".join(
                f"t.{ok} = {alias}.{mk}"
                for ok, mk in zip(own_keys, info.key_columns)
            )
            joins.append(f"{join_kind} {info.table} AS {alias} ON {condition}")
            annotation = combine_annotations(
                self.semiring,
                annotation,
                Annotation.from_columns(
                    info.kind, alias, self.semiring, outer=self.outer_joins
                ),
            )
            for rel_col in sub_carried:
                carried.append(rel_col)
                refs.append(f"{alias}.{rel_col[1]}")

        select_parts = [f"t.{k} AS {k}" for k in keys]
        select_parts += [f"{ref} AS {col}" for (_, col), ref in zip(carried, refs)]
        select_parts += [
            f"{expr} AS {comp}"
            for comp, expr in aggregate_select_list(self.semiring, annotation)
        ]
        where_parts = []
        own = render_conjunction(predicates.get(child, ()), alias="t")
        if own:
            where_parts.append(own)
        # Rows outside every frontier leaf cannot contribute to any group —
        # drop them at the earliest hop (and, when the frontier's leaf ids
        # are known, everything outside the open leaves with them).
        where_parts += [
            self._carry_condition(ref, rel_col, carry_filters)
            for rel_col, ref in zip(carried, refs)
        ]
        group_refs = [f"t.{k}" for k in keys] + refs
        table = override.get(child, self.storage_table(child))
        msg_name = self.db.temp_name(f"msg_{child}_{parent}")
        sql = (
            f"CREATE TABLE {msg_name} AS "
            f"SELECT {', '.join(select_parts)} "
            f"FROM {table} AS t {' '.join(joins)}"
            + (f" WHERE {' AND '.join(where_parts)}" if where_parts else "")
            + f" GROUP BY {', '.join(group_refs)}"
        )
        self.db.execute(sql, tag="message")
        self.message_executions += 1
        self.carry_message_executions += 1
        info = MessageInfo(
            table=msg_name,
            kind=aggregated_kind(annotation),
            key_columns=tuple(keys),
            child=child,
            parent=parent,
            carried=tuple(carried),
        )
        if cache_scope is not None:
            # The cache owns the table now; eviction happens on epoch
            # advance (begin_carry_scope) or relation invalidation.
            self.cache.store(child, parent, state, info, scope=cache_scope)
        else:
            temps.append(msg_name)
        return (info, tuple(carried))

    def begin_carry_scope(self, scope: Optional[Hashable]) -> int:
        """Evict carry messages cached under any other scope (their leaf
        labels are stale once the frontier epoch advances)."""
        with self._build_lock:
            return self.cache.drop_scoped(keep_scope=scope)

    # ------------------------------------------------------------------
    # Cache control
    # ------------------------------------------------------------------
    def invalidate_for_relation(self, relation: str) -> int:
        """Drop cached messages whose sending side contains ``relation``
        (called after that relation's lifted data changes)."""
        doomed = []
        for key, info in list(self.cache._store.items()):
            child, parent = key[0], key[1]
            if relation in self._side[(child, parent)]:
                doomed.append(key)
        for key in doomed:
            info = self.cache._store.pop(key)
            self.db.drop_table(info.table, if_exists=True)
        return len(doomed)

    def invalidate_all(self) -> int:
        return self.cache.invalidate_all(drop_tables=True)

    def census(self) -> Dict[str, object]:
        """Message accounting for the Figure 9 reproduction."""
        out: Dict[str, object] = {
            "message_requests": self.message_requests,
            "message_executions": self.message_executions,
            "carry_message_executions": self.carry_message_executions,
            "carry_cache_hits": self.carry_cache_hits,
            "carry_cache_misses": self.carry_cache_misses,
            **self.cache.stats(),
        }
        encodings = getattr(self.db, "encodings", None)
        if encodings is not None:
            out["encoding_cache"] = encodings.stats()
        return out

    def cleanup(self) -> None:
        """Drop lifted copies and cached messages (end of training)."""
        self.invalidate_all()
        for table in self.lifted.values():
            self.db.drop_table(table, if_exists=True)
        self.lifted.clear()
