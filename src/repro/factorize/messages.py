"""Annotation algebra over SQL expressions.

During message passing each relation/message carries an *annotation* — a
set of semi-ring component expressions.  Three kinds occur:

* ``identity`` — the relation contributes the 1 element per tuple and the
  join is fan-out-free (N-to-1 into a filtered-nothing dimension): the
  message can be dropped entirely (Appendix D "Identity Messages").
* ``count``    — the subtree contributes k summed copies of 1 per key:
  only a COUNT column ``c`` is needed; multiplying scales components.
* ``full``     — all semi-ring components are present.

``combine_annotations`` implements ⊗ over these kinds symbolically, so the
factorizer can fold a relation's own annotation with any number of
incoming messages into a single SELECT's expressions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.exceptions import SemiRingError
from repro.semiring.base import SemiRing

COUNT_COLUMN = "c"

IDENTITY = "identity"
COUNT = "count"
FULL = "full"


@dataclasses.dataclass
class Annotation:
    """Symbolic semi-ring annotation: kind + component SQL expressions."""

    kind: str
    exprs: Dict[str, str] = dataclasses.field(default_factory=dict)

    @staticmethod
    def identity() -> "Annotation":
        return Annotation(IDENTITY, {})

    @staticmethod
    def count(expr: str) -> "Annotation":
        return Annotation(COUNT, {COUNT_COLUMN: expr})

    @staticmethod
    def full(exprs: Dict[str, str]) -> "Annotation":
        return Annotation(FULL, dict(exprs))

    @staticmethod
    def from_columns(
        kind: str, alias: str, semiring: SemiRing, outer: bool = False
    ) -> "Annotation":
        """Annotation referencing a stored table's component columns.

        With ``outer=True`` (message joined via LEFT JOIN for missing-key
        tolerance, Appendix D.2) absent rows must act as the semi-ring's
        1 element, so each component is COALESCEd to its 1-element value.
        """
        if kind == IDENTITY:
            return Annotation.identity()
        if kind == COUNT:
            expr = f"{alias}.{COUNT_COLUMN}"
            if outer:
                expr = f"COALESCE({expr}, 1)"
            return Annotation.count(expr)
        exprs = {}
        one = semiring.one()
        for comp, one_value in zip(semiring.components, one):
            expr = f"{alias}.{comp}"
            if outer:
                literal = int(one_value) if one_value == int(one_value) else one_value
                expr = f"COALESCE({expr}, {literal})"
            exprs[comp] = expr
        return Annotation.full(exprs)

    def storage_columns(self, semiring: SemiRing) -> List[str]:
        """Component column names this annotation materializes."""
        if self.kind == IDENTITY:
            return []
        if self.kind == COUNT:
            return [COUNT_COLUMN]
        return list(semiring.components)


def combine_annotations(
    semiring: SemiRing, left: Annotation, right: Annotation
) -> Annotation:
    """Symbolic ⊗ of two annotations."""
    if left.kind == IDENTITY:
        return right
    if right.kind == IDENTITY:
        return left
    if left.kind == COUNT and right.kind == COUNT:
        return Annotation.count(
            f"({left.exprs[COUNT_COLUMN]} * {right.exprs[COUNT_COLUMN]})"
        )
    if left.kind == FULL and right.kind == COUNT:
        return Annotation.full(
            semiring.scale_expr(left.exprs, right.exprs[COUNT_COLUMN])
        )
    if left.kind == COUNT and right.kind == FULL:
        return Annotation.full(
            semiring.scale_expr(right.exprs, left.exprs[COUNT_COLUMN])
        )
    if left.kind == FULL and right.kind == FULL:
        return Annotation.full(semiring.multiply_expr(left.exprs, right.exprs))
    raise SemiRingError(f"cannot combine annotations {left.kind}/{right.kind}")


def aggregate_select_list(
    semiring: SemiRing, annotation: Annotation
) -> List[Tuple[str, str]]:
    """SELECT fragments summing an annotation's components per group."""
    if annotation.kind == IDENTITY:
        return [(COUNT_COLUMN, "COUNT(*)")]
    if annotation.kind == COUNT:
        return [(COUNT_COLUMN, f"SUM({annotation.exprs[COUNT_COLUMN]})")]
    return [
        (comp, f"SUM({annotation.exprs[comp]})")
        for comp in semiring.components
    ]


def aggregated_kind(annotation: Annotation) -> str:
    """Kind of a message built by aggregating ``annotation``.

    Aggregating an identity annotation yields per-key counts, so the
    resulting *message* is count-kind, never identity.
    """
    if annotation.kind == IDENTITY:
        return COUNT
    return annotation.kind
