"""Factorized query execution: message passing as pure SQL rewriting."""

from repro.factorize.messages import Annotation, combine_annotations
from repro.factorize.cache import MessageCache, MessageInfo
from repro.factorize.executor import Factorizer
from repro.factorize.sampling import ancestral_sample, sample_fact_table

__all__ = [
    "Annotation",
    "combine_annotations",
    "MessageCache",
    "MessageInfo",
    "Factorizer",
    "ancestral_sample",
    "sample_fact_table",
]
