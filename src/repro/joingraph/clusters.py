"""Clustered Predicate Trees (Section 4.2.2) for galaxy schemas.

Galaxy schemas have several fact tables in M-N relationships; residual
updates over them would grow an update relation U that eventually spans
the whole join graph.  CPT sidesteps this by clustering relations so that
within each cluster one fact table has N-to-1 paths to every other member;
tree splits after the root are confined to one cluster, so every leaf
predicate can be pushed to that cluster's fact table as semi-joins and no
cycles ever form.

``cluster_graph`` reproduces the Figure 3 construction: each fact table
seeds a cluster, and dimensions reachable from it along N-to-1 edges
(never passing through another fact table) join the cluster.  A dimension
reachable from several facts belongs to several clusters.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.exceptions import JoinGraphError
from repro.joingraph.graph import JoinGraph


@dataclasses.dataclass
class Cluster:
    """One CPT cluster: a fact table plus its N-to-1 reachable dimensions."""

    fact: str
    members: List[str]

    def features(self, graph: JoinGraph) -> List[str]:
        out: List[str] = []
        for name in self.members:
            out.extend(graph.relations[name].features)
        return out

    def subgraph(self, graph: JoinGraph) -> JoinGraph:
        return graph.copy_with_relations(self.members)

    def __contains__(self, relation: str) -> bool:
        return relation in self.members


def cluster_graph(
    graph: JoinGraph, fact_tables: Optional[Sequence[str]] = None
) -> List[Cluster]:
    """Partition the join graph into CPT clusters.

    ``fact_tables`` may be given explicitly (the paper's Figure 3 marks
    them); otherwise relations flagged ``is_fact`` are used, falling back
    to :meth:`JoinGraph.detect_fact_tables`.
    """
    if fact_tables is None:
        fact_tables = [r.name for r in graph.relations.values() if r.is_fact]
    if not fact_tables:
        fact_tables = graph.detect_fact_tables()
    if not fact_tables:
        raise JoinGraphError(
            "could not determine fact tables; pass fact_tables explicitly"
        )
    if any(e.multiplicity is None for e in graph.edges):
        graph.analyze()

    fact_set = set(fact_tables)
    clusters: List[Cluster] = []
    for fact in fact_tables:
        members = [fact]
        frontier = [fact]
        seen = {fact}
        while frontier:
            current = frontier.pop()
            for edge in graph.edges_of(current):
                neighbor = edge.other(current)
                if neighbor in seen or neighbor in fact_set:
                    continue
                # Follow only N-to-1 edges away from the fact side: the
                # neighbour's keys must be unique so predicates there can
                # be pushed back as semi-joins without fan-out.
                mult = edge.multiplicity or "m-n"
                if edge.left == current and mult in ("n-1", "1-1"):
                    reachable = True
                elif edge.right == current and mult in ("1-n", "1-1"):
                    reachable = True
                else:
                    reachable = False
                if reachable:
                    seen.add(neighbor)
                    members.append(neighbor)
                    frontier.append(neighbor)
        clusters.append(Cluster(fact=fact, members=members))

    _check_coverage(graph, clusters)
    return clusters


def _check_coverage(graph: JoinGraph, clusters: List[Cluster]) -> None:
    """Every feature-bearing relation must land in some cluster."""
    covered = set()
    for cluster in clusters:
        covered.update(cluster.members)
    missing = [
        r.name
        for r in graph.relations.values()
        if r.features and r.name not in covered
    ]
    if missing:
        raise JoinGraphError(
            f"relations with features are outside every CPT cluster: {missing}"
        )


def cluster_for_feature(
    clusters: List[Cluster], graph: JoinGraph, feature: str
) -> List[Cluster]:
    """All clusters whose members declare ``feature``."""
    owner = graph.relation_for_feature(feature)
    return [c for c in clusters if owner in c]


def cluster_index(clusters: List[Cluster]) -> Dict[str, List[int]]:
    """relation name -> indexes of clusters containing it."""
    index: Dict[str, List[int]] = {}
    for i, cluster in enumerate(clusters):
        for member in cluster.members:
            index.setdefault(member, []).append(i)
    return index
