"""Junction trees over join graphs.

Message passing (Section 3.1) runs over a tree spanning the join graph:
pick a root, direct every edge toward it, and send messages leaf-to-root.
This module provides the rooted-tree construction, acyclicity checks, and
a simple hypertree decomposition that pre-joins the relations of a cycle
into one relation (footnote 1 / Section 4.2.2), which is how the update
relation U is absorbed when CPT is not in effect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import JoinGraphError
from repro.joingraph.graph import JoinEdge, JoinGraph


def is_acyclic(graph: JoinGraph) -> bool:
    """True when the relation-level join graph is a forest."""
    parent: Dict[str, str] = {name: name for name in graph.relations}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in graph.edges:
        a, b = find(edge.left), find(edge.right)
        if a == b:
            return False
        parent[a] = b
    return True


def rooted_tree(
    graph: JoinGraph, root: str
) -> Tuple[Dict[str, Optional[str]], Dict[str, List[str]], List[str]]:
    """Direct all edges toward ``root``.

    Returns ``(parent, children, order)`` where ``order`` is a bottom-up
    (leaves first) traversal — the order messages must be sent.
    """
    if root not in graph.relations:
        raise JoinGraphError(f"root {root!r} is not in the join graph")
    if not is_acyclic(graph):
        raise JoinGraphError(
            "message passing requires an acyclic join graph; "
            "apply hypertree decomposition first"
        )
    parent: Dict[str, Optional[str]] = {root: None}
    children: Dict[str, List[str]] = {name: [] for name in graph.relations}
    order: List[str] = []
    frontier = [root]
    visited = {root}
    bfs: List[str] = []
    while frontier:
        current = frontier.pop(0)
        bfs.append(current)
        for neighbor in graph.neighbors(current):
            if neighbor not in visited:
                visited.add(neighbor)
                parent[neighbor] = current
                children[current].append(neighbor)
                frontier.append(neighbor)
    if len(visited) != len(graph.relations):
        raise JoinGraphError("join graph is disconnected")
    order = list(reversed(bfs))  # leaves first, root last
    return parent, children, order


def edge_between(graph: JoinGraph, a: str, b: str) -> JoinEdge:
    for edge in graph.edges:
        if {edge.left, edge.right} == {a, b}:
            return edge
    raise JoinGraphError(f"no edge between {a!r} and {b!r}")


def find_cycle(graph: JoinGraph) -> Optional[List[str]]:
    """Return the relations of one cycle, or None if acyclic."""
    adjacency: Dict[str, List[str]] = {name: [] for name in graph.relations}
    for edge in graph.edges:
        adjacency[edge.left].append(edge.right)
        adjacency[edge.right].append(edge.left)

    visited: Dict[str, Optional[str]] = {}

    for start in graph.relations:
        if start in visited:
            continue
        stack: List[Tuple[str, Optional[str]]] = [(start, None)]
        while stack:
            node, from_node = stack.pop()
            if node in visited:
                continue
            visited[node] = from_node
            for neighbor in adjacency[node]:
                if neighbor == from_node:
                    continue
                if neighbor in visited:
                    # Reconstruct the cycle: path(node) ∪ path(neighbor).
                    path_a: List[str] = []
                    cursor: Optional[str] = node
                    while cursor is not None:
                        path_a.append(cursor)
                        cursor = visited[cursor]
                    path_b: List[str] = []
                    cursor = neighbor
                    while cursor is not None:
                        path_b.append(cursor)
                        cursor = visited[cursor]
                    common = set(path_a) & set(path_b)
                    meet = next(x for x in path_a if x in common)
                    cycle = (
                        path_a[: path_a.index(meet) + 1]
                        + list(reversed(path_b[: path_b.index(meet)]))
                    )
                    return cycle
                stack.append((neighbor, node))
    return None


def decompose_cycles(graph: JoinGraph, max_rounds: int = 16) -> JoinGraph:
    """Standard hypertree decomposition: pre-join each cycle's relations.

    The cycle's relations are joined (in the engine, via SQL), the result
    is registered as a temporary table, and the cycle is replaced by that
    single relation.  Repeats until acyclic.
    """
    current = graph
    for _ in range(max_rounds):
        cycle = find_cycle(current)
        if cycle is None:
            return current
        current = _merge_relations(current, cycle)
    raise JoinGraphError("hypertree decomposition did not converge")


def _merge_relations(graph: JoinGraph, cycle: Sequence[str]) -> JoinGraph:
    db = graph.db
    cycle = list(cycle)
    merged_name = db.temp_name("hyper")

    # Build the join SQL over the cycle, following its internal edges.
    aliases = {name: f"r{i}" for i, name in enumerate(cycle)}
    from_clause = f"{cycle[0]} AS {aliases[cycle[0]]}"
    joined = {cycle[0]}
    join_clauses: List[str] = []
    remaining = [e for e in graph.edges
                 if e.left in aliases and e.right in aliases]
    while len(joined) < len(cycle):
        progressed = False
        for edge in remaining:
            if edge.left in joined and edge.right not in joined:
                src, dst = edge.left, edge.right
            elif edge.right in joined and edge.left not in joined:
                src, dst = edge.right, edge.left
            else:
                continue
            cond = " AND ".join(
                f"{aliases[src]}.{sk} = {aliases[dst]}.{dk}"
                for sk, dk in zip(edge.keys_for(src), edge.keys_for(dst))
            )
            join_clauses.append(f"JOIN {dst} AS {aliases[dst]} ON {cond}")
            joined.add(dst)
            progressed = True
        if not progressed:
            raise JoinGraphError(f"cycle {cycle} is not edge-connected")

    # Project the union of all columns (first owner wins on collisions).
    seen_cols: Dict[str, str] = {}
    select_parts: List[str] = []
    for name in cycle:
        for col in db.table(name).column_names():
            if col.lower() not in seen_cols:
                seen_cols[col.lower()] = name
                select_parts.append(f"{aliases[name]}.{col} AS {col}")
    sql = (
        f"CREATE TABLE {merged_name} AS SELECT {', '.join(select_parts)} "
        f"FROM {from_clause} {' '.join(join_clauses)}"
    )
    db.execute(sql, tag="hypertree")

    # Rebuild the graph with the merged relation standing in for the cycle.
    out = JoinGraph(db)
    cycle_set = set(cycle)
    merged_features: List[str] = []
    merged_target: Optional[str] = None
    for name, info in graph.relations.items():
        if name in cycle_set:
            merged_features.extend(info.features)
            if info.target:
                merged_target = info.target
    out.add_relation(
        merged_name,
        features=merged_features,
        y=merged_target,
        is_fact=any(graph.relations[n].is_fact for n in cycle),
    )
    for name, info in graph.relations.items():
        if name not in cycle_set:
            out.add_relation(
                name, features=info.features, y=info.target, is_fact=info.is_fact
            )
    for edge in graph.edges:
        in_left = edge.left in cycle_set
        in_right = edge.right in cycle_set
        if in_left and in_right:
            continue  # internal to the merge
        left = merged_name if in_left else edge.left
        right = merged_name if in_right else edge.right
        out.edges.append(
            JoinEdge(left, right, list(edge.left_keys), list(edge.right_keys),
                     edge.multiplicity)
        )
    # Deduplicate parallel edges created by the merge.
    unique: Dict[frozenset, JoinEdge] = {}
    for edge in out.edges:
        unique.setdefault(frozenset((edge.left, edge.right)), edge)
    out.edges = list(unique.values())
    return out
