"""Join graphs: schema metadata, junction trees, and CPT clustering."""

from repro.joingraph.graph import JoinEdge, JoinGraph, RelationInfo
from repro.joingraph.hypertree import (
    decompose_cycles,
    is_acyclic,
    rooted_tree,
)
from repro.joingraph.clusters import Cluster, cluster_graph

__all__ = [
    "JoinGraph",
    "JoinEdge",
    "RelationInfo",
    "is_acyclic",
    "rooted_tree",
    "decompose_cycles",
    "Cluster",
    "cluster_graph",
]
