"""The join graph: JoinBoost's "training dataset" object.

Mirrors the paper's developer interface (Figure 4)::

    graph = JoinGraph(db)
    graph.add_relation("sales", y="net_profit")
    graph.add_relation("date", features=["holiday", "weekend"])
    graph.add_edge("sales", "date", ["date_id"])

If edges are omitted, :meth:`JoinGraph.infer_edges` derives them from
shared column names and raises if the graph is ambiguous or would need a
cross product, as Section 5.1 specifies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import JoinGraphError


@dataclasses.dataclass
class RelationInfo:
    """One relation participating in training."""

    name: str
    features: List[str] = dataclasses.field(default_factory=list)
    target: Optional[str] = None
    is_fact: bool = False
    #: features to treat as categorical (default: string-typed columns)
    categorical: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class JoinEdge:
    """An equi-join between two relations on parallel key lists.

    ``multiplicity`` is filled by :meth:`JoinGraph.analyze`:
    ``"n-1"`` means many left rows per right row (right keys unique),
    ``"1-n"`` the reverse, ``"1-1"`` both unique, ``"m-n"`` neither.
    """

    left: str
    right: str
    left_keys: List[str]
    right_keys: List[str]
    multiplicity: Optional[str] = None

    def keys_for(self, relation: str) -> List[str]:
        if relation == self.left:
            return self.left_keys
        if relation == self.right:
            return self.right_keys
        raise JoinGraphError(f"{relation!r} is not part of edge {self}")

    def other(self, relation: str) -> str:
        if relation == self.left:
            return self.right
        if relation == self.right:
            return self.left
        raise JoinGraphError(f"{relation!r} is not part of edge {self}")

    def join_condition(self, left_alias: str, right_alias: str) -> str:
        """SQL ON clause joining aliased sides of this edge."""
        parts = [
            f"{left_alias}.{lk} = {right_alias}.{rk}"
            for lk, rk in zip(self.left_keys, self.right_keys)
        ]
        return " AND ".join(parts)


class JoinGraph:
    """Relations + join edges + feature/target annotations."""

    def __init__(self, db):
        self.db = db
        self.relations: Dict[str, RelationInfo] = {}
        self.edges: List[JoinEdge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_relation(
        self,
        name: str,
        features: Optional[Sequence[str]] = None,
        y: Optional[str] = None,
        is_fact: bool = False,
        categorical: Optional[Sequence[str]] = None,
    ) -> "JoinGraph":
        if name in self.relations:
            raise JoinGraphError(f"relation {name!r} already added")
        if not self.db.has_table(name):
            raise JoinGraphError(f"table {name!r} does not exist in the database")
        table = self.db.table(name)
        for col in list(features or []) + ([y] if y else []):
            if col not in table:
                raise JoinGraphError(f"{name!r} has no column {col!r}")
        cat = list(categorical or [])
        for col in cat:
            if col not in (features or []):
                raise JoinGraphError(
                    f"categorical column {col!r} is not among the features"
                )
        # String columns are categorical whether declared or not.
        from repro.storage.column import ColumnType

        for col in features or []:
            if table.column(col).ctype is ColumnType.STR and col not in cat:
                cat.append(col)
        self.relations[name] = RelationInfo(
            name=name, features=list(features or []), target=y,
            is_fact=is_fact, categorical=cat,
        )
        return self

    def is_categorical(self, relation: str, feature: str) -> bool:
        return feature in self.relations[relation].categorical

    def add_edge(
        self,
        left: str,
        right: str,
        keys: Sequence[str],
        right_keys: Optional[Sequence[str]] = None,
    ) -> "JoinGraph":
        for rel in (left, right):
            if rel not in self.relations:
                raise JoinGraphError(f"unknown relation {rel!r}; add it first")
        left_keys = list(keys)
        rkeys = list(right_keys) if right_keys is not None else list(keys)
        if len(left_keys) != len(rkeys):
            raise JoinGraphError("left and right key lists differ in length")
        for col in left_keys:
            if col not in self.db.table(left):
                raise JoinGraphError(f"{left!r} has no join key {col!r}")
        for col in rkeys:
            if col not in self.db.table(right):
                raise JoinGraphError(f"{right!r} has no join key {col!r}")
        self.edges.append(JoinEdge(left, right, left_keys, rkeys))
        return self

    def infer_edges(self) -> "JoinGraph":
        """Derive edges from shared column names (Section 5.1).

        Raises if any pair shares no columns and the graph would be
        disconnected (cross product), or if the result is ambiguous
        (multiple connected components could be joined multiple ways).
        """
        names = list(self.relations)
        for i, left in enumerate(names):
            left_cols = set(c.lower() for c in self.db.table(left).column_names())
            for right in names[i + 1 :]:
                right_cols = set(
                    c.lower() for c in self.db.table(right).column_names()
                )
                shared = sorted(left_cols & right_cols)
                if shared:
                    self.edges.append(JoinEdge(left, right, shared, shared))
        if len(self.relations) > 1 and not self.is_connected():
            raise JoinGraphError(
                "could not infer a connected join graph; "
                "a cross product would be required"
            )
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def target_relation(self) -> str:
        """The relation holding Y (Section 3.3's R_Y)."""
        holders = [r.name for r in self.relations.values() if r.target]
        if not holders:
            raise JoinGraphError("no relation declares a target variable")
        if len(holders) > 1:
            raise JoinGraphError(f"multiple target relations: {holders}")
        return holders[0]

    @property
    def target_column(self) -> str:
        return self.relations[self.target_relation].target  # type: ignore[return-value]

    def all_features(self) -> List[Tuple[str, str]]:
        """(relation, feature) pairs in declaration order."""
        out: List[Tuple[str, str]] = []
        for rel in self.relations.values():
            out.extend((rel.name, f) for f in rel.features)
        return out

    def relation_for_feature(self, feature: str) -> str:
        owners = [
            r.name for r in self.relations.values() if feature in r.features
        ]
        if not owners:
            raise JoinGraphError(f"no relation declares feature {feature!r}")
        if len(owners) > 1:
            raise JoinGraphError(f"feature {feature!r} is ambiguous: {owners}")
        return owners[0]

    def edges_of(self, relation: str) -> List[JoinEdge]:
        return [e for e in self.edges if relation in (e.left, e.right)]

    def neighbors(self, relation: str) -> List[str]:
        return [e.other(relation) for e in self.edges_of(relation)]

    def is_connected(self) -> bool:
        if not self.relations:
            return True
        seen = {next(iter(self.relations))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.relations)

    def validate(self, require_target: bool = True) -> None:
        """Check the graph is usable for training."""
        if not self.relations:
            raise JoinGraphError("join graph has no relations")
        if require_target:
            _ = self.target_relation
        if not self.is_connected():
            raise JoinGraphError("join graph is disconnected (cross product)")
        seen_pairs = set()
        for edge in self.edges:
            pair = frozenset((edge.left, edge.right))
            if pair in seen_pairs:
                raise JoinGraphError(
                    f"multiple edges between {edge.left!r} and {edge.right!r}; "
                    "the join graph is ambiguous"
                )
            seen_pairs.add(pair)

    # ------------------------------------------------------------------
    # Statistics (edge multiplicities; used by CPT clustering and the
    # identity-message optimization)
    # ------------------------------------------------------------------
    def analyze(self) -> None:
        """Fill in each edge's multiplicity by probing key uniqueness."""
        for edge in self.edges:
            right_unique = self._keys_unique(edge.right, edge.right_keys)
            left_unique = self._keys_unique(edge.left, edge.left_keys)
            if left_unique and right_unique:
                edge.multiplicity = "1-1"
            elif right_unique:
                edge.multiplicity = "n-1"
            elif left_unique:
                edge.multiplicity = "1-n"
            else:
                edge.multiplicity = "m-n"

    def _keys_unique(self, relation: str, keys: List[str]) -> bool:
        key_list = ", ".join(keys)
        result = self.db.execute(
            f"SELECT COUNT(*) AS n, COUNT(DISTINCT {key_list}) AS d FROM {relation}"
            if len(keys) == 1
            else f"SELECT COUNT(*) AS n FROM {relation}"
        )
        if len(keys) == 1:
            row = result.first_row()
            return row["n"] == row["d"]
        total = result.scalar()
        distinct = self.db.execute(
            f"SELECT COUNT(*) AS d FROM (SELECT DISTINCT {key_list} FROM {relation})"
        ).scalar()
        return total == distinct

    def detect_fact_tables(self) -> List[str]:
        """Relations that sit on the N side of every incident edge."""
        if any(e.multiplicity is None for e in self.edges):
            self.analyze()
        facts = []
        for name in self.relations:
            incident = self.edges_of(name)
            if not incident:
                continue
            n_side = True
            for edge in incident:
                mult = edge.multiplicity or "m-n"
                if edge.left == name and mult in ("1-n", "1-1"):
                    n_side = False
                if edge.right == name and mult in ("n-1", "1-1"):
                    n_side = False
            if n_side:
                facts.append(name)
        return facts

    def copy_with_relations(self, keep: Sequence[str]) -> "JoinGraph":
        """Sub-graph restricted to ``keep`` (used per CPT cluster)."""
        sub = JoinGraph(self.db)
        keep_set = set(keep)
        for name in keep:
            info = self.relations[name]
            sub.relations[name] = RelationInfo(
                name=info.name,
                features=list(info.features),
                target=info.target,
                is_fact=info.is_fact,
                categorical=list(info.categorical),
            )
        for edge in self.edges:
            if edge.left in keep_set and edge.right in keep_set:
                sub.edges.append(
                    JoinEdge(
                        edge.left, edge.right,
                        list(edge.left_keys), list(edge.right_keys),
                        edge.multiplicity,
                    )
                )
        return sub

    def __repr__(self) -> str:
        return (
            f"JoinGraph(relations={list(self.relations)}, "
            f"edges={[(e.left, e.right) for e in self.edges]})"
        )
