"""Exception hierarchy for the JoinBoost reproduction.

Every error raised by this package derives from :class:`ReproError` so
applications can catch the whole family with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SQLError(ReproError):
    """Base class for errors in the SQL substrate."""


class TokenizeError(SQLError):
    """The SQL text could not be tokenized."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The SQL token stream could not be parsed."""

    def __init__(self, message: str, token: object = None):
        super().__init__(message)
        self.token = token


class PlanError(SQLError):
    """A parsed statement could not be planned (e.g. unknown column)."""


class ExecutionError(SQLError):
    """A planned statement failed during execution."""


class CatalogError(SQLError):
    """Catalog lookup or mutation failed (missing table, duplicate, ...)."""


class StorageError(ReproError):
    """Low-level storage failure (column type mismatch, codec error, ...)."""


class JoinGraphError(ReproError):
    """The join graph is invalid (ambiguous, cyclic where acyclic needed,
    disconnected, or a cross product would be required)."""


class SemiRingError(ReproError):
    """A semi-ring definition or operation is invalid for the request."""


class TrainingError(ReproError):
    """Model training could not proceed (bad parameters, empty data, ...)."""


class MemoryBudgetExceeded(ReproError):
    """A baseline exceeded its (simulated) memory budget.

    The export/materialize path of the single-table baselines enforces a
    memory budget the way a real machine enforces RAM: the materialized join
    is a real allocation, and this error reproduces the paper's
    "LightGBM runs out of memory" outcomes at large scale factors.
    """

    def __init__(self, requested_bytes: int, budget_bytes: int):
        super().__init__(
            f"materialization needs ~{requested_bytes:,} bytes, "
            f"budget is {budget_bytes:,} bytes"
        )
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
