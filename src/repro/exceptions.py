"""Exception hierarchy for the JoinBoost reproduction.

Every error raised by this package derives from :class:`ReproError` so
applications can catch the whole family with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SQLError(ReproError):
    """Base class for errors in the SQL substrate."""


class TokenizeError(SQLError):
    """The SQL text could not be tokenized."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The SQL token stream could not be parsed."""

    def __init__(self, message: str, token: object = None):
        super().__init__(message)
        self.token = token


class PlanError(SQLError):
    """A parsed statement could not be planned (e.g. unknown column)."""


class ExecutionError(SQLError):
    """A planned statement failed during execution."""


class CatalogError(SQLError):
    """Catalog lookup or mutation failed (missing table, duplicate, ...)."""


class BackendError(ReproError):
    """A connector could not be built or used (unknown name, missing
    optional dependency, unsupported operation).

    This is the root of the backend error taxonomy: callers of the
    connector layer never see raw driver exceptions (``sqlite3.Error``,
    ``duckdb.Error``), only :class:`BackendError` subclasses.
    """


class BackendExecutionError(BackendError, ExecutionError):
    """A statement failed inside a backend engine (permanent).

    Subclasses both :class:`BackendError` (the taxonomy contract: only
    ``BackendError`` subclasses escape a connector) and
    :class:`ExecutionError` (so every existing ``except ExecutionError``
    site keeps working).  ``attempts`` is attached by the retry layer
    when the error survived a retry loop.
    """

    #: set by the retry layer: how many attempts this error survived
    attempts: int = 1


class ChaosSpecError(BackendError, ValueError):
    """A ``JOINBOOST_CHAOS`` fault-plan spec string is malformed.

    Subclasses both :class:`BackendError` (the connector-layer taxonomy
    contract — chaos wiring lives in the backend stack) and the builtin
    :class:`ValueError` (a malformed spec is a bad *value*, and callers
    validating configuration expect ``except ValueError`` to catch it).
    The message always names the offending rule chunk, so a typo in a
    multi-rule spec is directly attributable.
    """


class TransientBackendError(BackendExecutionError):
    """A statement failed in a way that is expected to succeed on retry.

    Raised for driver errors that signal contention or momentary
    unavailability — sqlite ``database is locked`` / ``database is
    busy``, duckdb IO/connection hiccups, a dropped reader cursor —
    and for chaos-injected faults.  The retry policy
    (:mod:`repro.engine.retry`) retries exactly this type.
    """


class ServingError(ReproError):
    """The serving layer could not complete a scoring request.

    Root of the serving taxonomy (PR 10): the gateway and the
    prediction service never let raw backend or driver errors escape a
    request path — scoring failures surface as :class:`ServingError`
    subclasses with the underlying fault chained as ``__cause__``, so
    callers (and the circuit breakers) can tell overload from deadline
    from backend failure without string matching.
    """


class ServingBackendError(ServingError):
    """A backend scoring call (``score_sql``/``score_key``) failed.

    The serving twin of :class:`BackendExecutionError`: permanent —
    retrying the same statement is not expected to help.  ``transient``
    distinguishes the two fault classes for breaker accounting without
    an ``isinstance`` ladder.
    """

    #: whether a retry of the same call is expected to succeed
    transient: bool = False


class TransientServingError(ServingBackendError):
    """A backend scoring call failed in a retryable way.

    Wraps :class:`TransientBackendError` (sqlite busy/locked, chaos
    injection, a flaked reader cursor) crossing the serving boundary.
    """

    transient = True


class ServiceOverloadedError(ServingError):
    """Admission control shed the request: the bounded queue is full.

    Shedding is the contract — a request past the queue bound fails
    *immediately* with the queue-depth census attached, instead of
    adding unbounded latency for every request behind it.
    """

    def __init__(
        self,
        message: str,
        queued: int = 0,
        max_queue_depth: int = 0,
        in_flight: int = 0,
    ):
        super().__init__(message)
        self.queued = queued
        self.max_queue_depth = max_queue_depth
        self.in_flight = in_flight


class DeadlineExceededError(ServingError):
    """The request's deadline budget ran out before scoring completed.

    The budget (``JOINBOOST_SERVE_DEADLINE`` or per-request) is checked
    at admission and before every degradation-ladder step; a request
    cannot sit in the queue or walk the ladder past its deadline.
    """

    def __init__(
        self,
        message: str,
        deadline_seconds: float = 0.0,
        elapsed_seconds: float = 0.0,
    ):
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds


class CircuitOpenError(ServingError):
    """The requested path's circuit breaker is open and the caller asked
    for no degradation (``degrade=False``)."""


class CanaryParityError(ServingError):
    """A canary deploy was refused: shadow scores diverged from the live
    version.

    ``deploy(..., canary=True)`` scores a sample through the live and
    the candidate kernels and promotes only on bit-parity; a changed
    model must be promoted explicitly (``force=True``) or not at all.
    """

    def __init__(
        self,
        message: str,
        live_digest: str = "",
        candidate_digest: str = "",
        diverging_rows: int = 0,
    ):
        super().__init__(message)
        self.live_digest = live_digest
        self.candidate_digest = candidate_digest
        self.diverging_rows = diverging_rows


class StorageError(ReproError):
    """Low-level storage failure (column type mismatch, codec error, ...)."""


class JoinGraphError(ReproError):
    """The join graph is invalid (ambiguous, cyclic where acyclic needed,
    disconnected, or a cross product would be required)."""


class SemiRingError(ReproError):
    """A semi-ring definition or operation is invalid for the request."""


class TrainingError(ReproError):
    """Model training could not proceed (bad parameters, empty data, ...)."""


class MemoryBudgetExceeded(ReproError):
    """A baseline exceeded its (simulated) memory budget.

    The export/materialize path of the single-table baselines enforces a
    memory budget the way a real machine enforces RAM: the materialized join
    is a real allocation, and this error reproduces the paper's
    "LightGBM runs out of memory" outcomes at large scale factors.
    """

    def __init__(self, requested_bytes: int, budget_bytes: int):
        super().__init__(
            f"materialization needs ~{requested_bytes:,} bytes, "
            f"budget is {budget_bytes:,} bytes"
        )
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
