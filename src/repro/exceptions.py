"""Exception hierarchy for the JoinBoost reproduction.

Every error raised by this package derives from :class:`ReproError` so
applications can catch the whole family with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SQLError(ReproError):
    """Base class for errors in the SQL substrate."""


class TokenizeError(SQLError):
    """The SQL text could not be tokenized."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """The SQL token stream could not be parsed."""

    def __init__(self, message: str, token: object = None):
        super().__init__(message)
        self.token = token


class PlanError(SQLError):
    """A parsed statement could not be planned (e.g. unknown column)."""


class ExecutionError(SQLError):
    """A planned statement failed during execution."""


class CatalogError(SQLError):
    """Catalog lookup or mutation failed (missing table, duplicate, ...)."""


class BackendError(ReproError):
    """A connector could not be built or used (unknown name, missing
    optional dependency, unsupported operation).

    This is the root of the backend error taxonomy: callers of the
    connector layer never see raw driver exceptions (``sqlite3.Error``,
    ``duckdb.Error``), only :class:`BackendError` subclasses.
    """


class BackendExecutionError(BackendError, ExecutionError):
    """A statement failed inside a backend engine (permanent).

    Subclasses both :class:`BackendError` (the taxonomy contract: only
    ``BackendError`` subclasses escape a connector) and
    :class:`ExecutionError` (so every existing ``except ExecutionError``
    site keeps working).  ``attempts`` is attached by the retry layer
    when the error survived a retry loop.
    """

    #: set by the retry layer: how many attempts this error survived
    attempts: int = 1


class ChaosSpecError(BackendError, ValueError):
    """A ``JOINBOOST_CHAOS`` fault-plan spec string is malformed.

    Subclasses both :class:`BackendError` (the connector-layer taxonomy
    contract — chaos wiring lives in the backend stack) and the builtin
    :class:`ValueError` (a malformed spec is a bad *value*, and callers
    validating configuration expect ``except ValueError`` to catch it).
    The message always names the offending rule chunk, so a typo in a
    multi-rule spec is directly attributable.
    """


class TransientBackendError(BackendExecutionError):
    """A statement failed in a way that is expected to succeed on retry.

    Raised for driver errors that signal contention or momentary
    unavailability — sqlite ``database is locked`` / ``database is
    busy``, duckdb IO/connection hiccups, a dropped reader cursor —
    and for chaos-injected faults.  The retry policy
    (:mod:`repro.engine.retry`) retries exactly this type.
    """


class StorageError(ReproError):
    """Low-level storage failure (column type mismatch, codec error, ...)."""


class JoinGraphError(ReproError):
    """The join graph is invalid (ambiguous, cyclic where acyclic needed,
    disconnected, or a cross product would be required)."""


class SemiRingError(ReproError):
    """A semi-ring definition or operation is invalid for the request."""


class TrainingError(ReproError):
    """Model training could not proceed (bad parameters, empty data, ...)."""


class MemoryBudgetExceeded(ReproError):
    """A baseline exceeded its (simulated) memory budget.

    The export/materialize path of the single-table baselines enforces a
    memory budget the way a real machine enforces RAM: the materialized join
    is a real allocation, and this error reproduces the paper's
    "LightGBM runs out of memory" outcomes at large scale factors.
    """

    def __init__(self, requested_bytes: int, budget_bytes: int):
        super().__init__(
            f"materialization needs ~{requested_bytes:,} bytes, "
            f"budget is {budget_bytes:,} bytes"
        )
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
