"""Histogram-based GBDT and random forest over a single table.

This is the reproduction's LightGBM/XGBoost stand-in: the same algorithm
family those libraries implement — feature binning, per-leaf gradient
histograms accumulated with one pass, leaf-wise (best-first) growth,
histogram subtraction for siblings — operating on dense NumPy arrays of
the *materialized* join.  Residual updates are parallel writes to a raw
array (the ~0.2 s red line of Figure 5).

It is deliberately independent of the JoinBoost code path so that
quality-parity tests compare two implementations, not one implementation
with itself.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError


@dataclasses.dataclass
class _Split:
    feature: int
    bin_id: int
    threshold: float
    gain: float


@dataclasses.dataclass(eq=False)
class _Node:
    node_id: int
    depth: int
    rows: np.ndarray
    grad_sum: float
    hess_sum: float
    split: Optional[_Split] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0


class _HistTree:
    """One histogram tree; bins are precomputed by the ensemble."""

    def __init__(self, root: _Node, bin_edges: List[np.ndarray]):
        self.root = root
        self.bin_edges = bin_edges

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        out = np.zeros(binned.shape[0])
        stack = [(self.root, np.arange(binned.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if node.split is None:
                out[rows] = node.value
                continue
            go_left = binned[rows, node.split.feature] <= node.split.bin_id
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))
        return out


class _Binner:
    """Quantile binning shared by all trees of an ensemble."""

    def __init__(self, features: np.ndarray, max_bin: int):
        self.max_bin = max_bin
        self.edges: List[np.ndarray] = []
        for j in range(features.shape[1]):
            col = features[:, j]
            clean = col[~np.isnan(col)]
            if len(clean) == 0:
                self.edges.append(np.array([0.0]))
                continue
            qs = np.linspace(0, 1, min(max_bin, max(2, len(np.unique(clean)))) + 1)[1:-1]
            edges = np.unique(np.quantile(clean, qs))
            self.edges.append(edges)

    def transform(self, features: np.ndarray) -> np.ndarray:
        out = np.empty(features.shape, dtype=np.int32)
        for j in range(features.shape[1]):
            col = features[:, j]
            binned = np.searchsorted(self.edges[j], col, side="right")
            # Missing values get the last bin + 1 (routed right by <=).
            binned[np.isnan(col)] = len(self.edges[j]) + 1
            out[:, j] = binned
        return out


class HistGradientBoosting:
    """LightGBM-like regression GBDT (rmse objective)."""

    def __init__(
        self,
        num_iterations: int = 100,
        num_leaves: int = 8,
        learning_rate: float = 0.1,
        max_bin: int = 255,
        min_child_samples: int = 1,
        reg_lambda: float = 0.0,
    ):
        self.num_iterations = num_iterations
        self.num_leaves = num_leaves
        self.learning_rate = learning_rate
        self.max_bin = max_bin
        self.min_child_samples = min_child_samples
        self.reg_lambda = reg_lambda
        self.trees: List[_HistTree] = []
        self.init_score = 0.0
        self._binner: Optional[_Binner] = None
        #: per-iteration (train_seconds, update_seconds, rmse)
        self.history: List[Tuple[float, float, float]] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        y: np.ndarray,
        eval_rmse: bool = False,
    ) -> "HistGradientBoosting":
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if features.ndim != 2 or len(features) != len(y):
            raise TrainingError("features must be (n, d) aligned with y")
        self._binner = _Binner(features, self.max_bin)
        binned = self._binner.transform(features)
        self.init_score = float(np.mean(y))
        score = np.full(len(y), self.init_score)

        for _ in range(self.num_iterations):
            start = time.perf_counter()
            grad = score - y
            hess = np.ones_like(grad)
            tree = self._grow_tree(binned, grad, hess)
            train_seconds = time.perf_counter() - start

            start = time.perf_counter()
            # Residual update: a parallel write to a raw array.
            score += self.learning_rate * tree.predict_binned(binned)
            update_seconds = time.perf_counter() - start

            self.trees.append(tree)
            rmse = float(np.sqrt(np.mean((y - score) ** 2))) if eval_rmse else float("nan")
            self.history.append((train_seconds, update_seconds, rmse))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._binner is None:
            raise TrainingError("model is not fitted")
        binned = self._binner.transform(np.asarray(features, dtype=np.float64))
        out = np.full(binned.shape[0], self.init_score)
        for tree in self.trees:
            out += self.learning_rate * tree.predict_binned(binned)
        return out

    # ------------------------------------------------------------------
    def _grow_tree(
        self, binned: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> _HistTree:
        counter = iter(range(1 << 20))
        root = _Node(
            node_id=next(counter),
            depth=0,
            rows=np.arange(len(grad)),
            grad_sum=float(grad.sum()),
            hess_sum=float(hess.sum()),
        )
        root.value = self._leaf_value(root)
        leaves = [root]
        candidates: Dict[int, Optional[_Split]] = {
            root.node_id: self._best_split(binned, grad, hess, root)
        }
        while len(leaves) < self.num_leaves:
            best_node = None
            best = None
            for node in leaves:
                split = candidates.get(node.node_id)
                if split is not None and (best is None or split.gain > best.gain):
                    best, best_node = split, node
            if best is None or best.gain <= 0:
                break
            go_left = binned[best_node.rows, best.feature] <= best.bin_id
            left_rows = best_node.rows[go_left]
            right_rows = best_node.rows[~go_left]
            left = _Node(
                node_id=next(counter), depth=best_node.depth + 1, rows=left_rows,
                grad_sum=float(grad[left_rows].sum()),
                hess_sum=float(hess[left_rows].sum()),
            )
            # Histogram subtraction: the sibling's sums come for free.
            right = _Node(
                node_id=next(counter), depth=best_node.depth + 1, rows=right_rows,
                grad_sum=best_node.grad_sum - left.grad_sum,
                hess_sum=best_node.hess_sum - left.hess_sum,
            )
            left.value, right.value = self._leaf_value(left), self._leaf_value(right)
            best_node.split = best
            best_node.left, best_node.right = left, right
            leaves.remove(best_node)
            leaves += [left, right]
            candidates[left.node_id] = self._best_split(binned, grad, hess, left)
            candidates[right.node_id] = self._best_split(binned, grad, hess, right)
        return _HistTree(root, self._binner.edges)

    def _leaf_value(self, node: _Node) -> float:
        return -node.grad_sum / (node.hess_sum + self.reg_lambda + 1e-12)

    def _best_split(
        self, binned: np.ndarray, grad: np.ndarray, hess: np.ndarray, node: _Node
    ) -> Optional[_Split]:
        rows = node.rows
        if len(rows) < 2 * self.min_child_samples:
            return None
        best: Optional[_Split] = None
        lam = self.reg_lambda
        parent_obj = node.grad_sum**2 / (node.hess_sum + lam + 1e-12)
        for j in range(binned.shape[1]):
            codes = binned[rows, j]
            nbins = int(codes.max(initial=0)) + 1
            g_hist = np.bincount(codes, weights=grad[rows], minlength=nbins)
            h_hist = np.bincount(codes, weights=hess[rows], minlength=nbins)
            n_hist = np.bincount(codes, minlength=nbins)
            g_prefix = np.cumsum(g_hist)[:-1]
            h_prefix = np.cumsum(h_hist)[:-1]
            n_prefix = np.cumsum(n_hist)[:-1]
            valid = (n_prefix >= self.min_child_samples) & (
                (len(rows) - n_prefix) >= self.min_child_samples
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = 0.5 * (
                    g_prefix**2 / (h_prefix + lam + 1e-12)
                    + (node.grad_sum - g_prefix) ** 2
                    / (node.hess_sum - h_prefix + lam + 1e-12)
                    - parent_obj
                )
            gains[~valid] = -np.inf
            k = int(np.argmax(gains))
            if np.isfinite(gains[k]) and (best is None or gains[k] > best.gain):
                edges = self._binner.edges[j]
                threshold = edges[min(k, len(edges) - 1)] if len(edges) else 0.0
                best = _Split(feature=j, bin_id=k, threshold=float(threshold),
                              gain=float(gains[k]))
        return best


class HistRandomForest:
    """Bagged histogram trees (the LightGBM rf mode stand-in)."""

    def __init__(
        self,
        num_iterations: int = 100,
        num_leaves: int = 8,
        subsample: float = 0.1,
        colsample: float = 0.8,
        max_bin: int = 255,
        min_child_samples: int = 1,
        seed: int = 0,
    ):
        self.num_iterations = num_iterations
        self.num_leaves = num_leaves
        self.subsample = subsample
        self.colsample = colsample
        self.max_bin = max_bin
        self.min_child_samples = min_child_samples
        self.seed = seed
        self.models: List[Tuple[HistGradientBoosting, np.ndarray]] = []
        self.history: List[float] = []

    def fit(self, features: np.ndarray, y: np.ndarray) -> "HistRandomForest":
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        n, d = features.shape
        for _ in range(self.num_iterations):
            start = time.perf_counter()
            rows = rng.choice(n, size=max(1, int(n * self.subsample)), replace=False)
            cols = rng.choice(d, size=max(1, int(round(d * self.colsample))),
                              replace=False)
            member = HistGradientBoosting(
                num_iterations=1,
                num_leaves=self.num_leaves,
                learning_rate=1.0,
                max_bin=self.max_bin,
                min_child_samples=self.min_child_samples,
            )
            member.fit(features[np.ix_(rows, cols)], y[rows])
            self.models.append((member, cols))
            self.history.append(time.perf_counter() - start)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.models:
            raise TrainingError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.zeros(len(features))
        for member, cols in self.models:
            out += member.predict(features[:, cols])
        return out / len(self.models)
