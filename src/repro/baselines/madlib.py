"""MADLib stand-in: non-factorized in-DB decision tree over a row store.

MADLib (a PostgreSQL extension) trains over the *materialized* join with
user-defined aggregates executing row-at-a-time on a row-oriented engine.
Both inefficiencies are reproduced mechanically:

* the wide table is stored in :class:`RowTable` layout (strided column
  scans), and
* every candidate evaluation re-scans the wide table with a fresh
  group-by — no factorization, no message reuse, no shared lifts.

Figure 16b's ~16× gap against JoinBoost comes from these two costs.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.params import TrainParams
from repro.core.split import VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.tree import DecisionTreeModel
from repro.baselines.lmfao import _wide_table_sql
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.semiring.variance import VarianceSemiRing
from repro.storage.column import Column
from repro.storage.table import RowTable, StorageConfig


def train_madlib_tree(
    db,
    graph: JoinGraph,
    params: Optional[dict] = None,
    **overrides,
) -> Tuple[DecisionTreeModel, float]:
    """Train a decision tree the MADLib way; returns (model, seconds)."""
    train_params = TrainParams.from_dict(params, **overrides)
    start = time.perf_counter()

    # Materialize the join and convert it to row-oriented storage.
    fact = graph.target_relation
    sql, feature_names = _wide_table_sql(db, graph, fact)
    relation = db.execute(sql, tag="materialize")
    wide_name = db.temp_name("madlib_wide")
    row_table = RowTable(
        wide_name,
        relation.columns(),
        StorageConfig(layout="row"),
    )
    db.register(row_table)

    wide_graph = JoinGraph(db)
    categorical = [
        feat
        for rel, feat in graph.all_features()
        if graph.is_categorical(rel, feat)
    ]
    wide_graph.add_relation(
        wide_name,
        features=feature_names,
        y=graph.target_column,
        categorical=categorical,
    )
    # No factorization and no caching: every query re-scans the rows.
    factorizer = Factorizer(db, wide_graph, VarianceSemiRing(), cache_enabled=False)
    factorizer.lift()
    # The lifted copy must stay row-oriented too.
    lifted_name = factorizer.lifted[wide_name]
    lifted = db.table(lifted_name)
    db.catalog.drop(lifted_name)
    db.register(
        RowTable(lifted_name, list(lifted.columns()), StorageConfig(layout="row"))
    )

    trainer = DecisionTreeTrainer(
        db, wide_graph, factorizer, VarianceCriterion(), train_params
    )
    model = trainer.train()
    factorizer.cleanup()
    db.drop_table(wide_name, if_exists=True)
    return model, time.perf_counter() - start
