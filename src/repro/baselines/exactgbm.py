"""Exact (pre-sorted) decision tree and GBDT over a single table.

The Sklearn stand-in: every candidate threshold of every feature is
evaluated from a pre-sorted scan instead of histograms.  Asymptotically
this is O(n·d) *per node* with large constants, which is why Sklearn is
the slowest line in Figure 8a — and this implementation reproduces that
shape mechanically.

:class:`ExactDecisionTree` is also the *reference model* for the
equivalence tests: a factorized JoinBoost tree over a join graph must
produce exactly the same splits and leaf values as this tree trained on
the materialized join.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.exceptions import TrainingError


@dataclasses.dataclass(eq=False)
class _ExactNode:
    depth: int
    rows: np.ndarray
    value: float = 0.0
    feature: Optional[int] = None
    threshold: float = 0.0
    gain: float = 0.0
    left: Optional["_ExactNode"] = None
    right: Optional["_ExactNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class ExactDecisionTree:
    """Variance-reduction regression tree with exact splits."""

    def __init__(
        self,
        num_leaves: int = 8,
        min_child_samples: int = 1,
        max_depth: int = -1,
    ):
        self.num_leaves = num_leaves
        self.min_child_samples = min_child_samples
        self.max_depth = max_depth
        self.root: Optional[_ExactNode] = None

    def fit(self, features: np.ndarray, y: np.ndarray) -> "ExactDecisionTree":
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        root = _ExactNode(depth=0, rows=np.arange(len(y)))
        root.value = float(np.mean(y)) if len(y) else 0.0
        leaves = [root]
        candidates = {id(root): self._best_split(features, y, root)}
        while len(leaves) < self.num_leaves:
            best_node, best = None, None
            for node in leaves:
                cand = candidates.get(id(node))
                if cand is not None and (best is None or cand[2] > best[2]):
                    best, best_node = cand, node
            if best is None or best[2] <= 0:
                break
            feature, threshold, gain = best
            go_left = features[best_node.rows, feature] <= threshold
            left = _ExactNode(depth=best_node.depth + 1, rows=best_node.rows[go_left])
            right = _ExactNode(depth=best_node.depth + 1, rows=best_node.rows[~go_left])
            left.value = float(np.mean(y[left.rows]))
            right.value = float(np.mean(y[right.rows]))
            best_node.feature, best_node.threshold = feature, threshold
            best_node.gain = gain
            best_node.left, best_node.right = left, right
            leaves.remove(best_node)
            leaves += [left, right]
            for child in (left, right):
                if self.max_depth < 0 or child.depth < self.max_depth:
                    candidates[id(child)] = self._best_split(features, y, child)
        self.root = root
        return self

    def _best_split(self, features, y, node):
        rows = node.rows
        if len(rows) < 2 * self.min_child_samples:
            return None
        y_node = y[rows]
        s_total, c_total = float(y_node.sum()), float(len(rows))
        base = -(s_total / c_total) * s_total
        best = None
        for j in range(features.shape[1]):
            col = features[rows, j]
            order = np.argsort(col, kind="stable")
            col_sorted = col[order]
            y_sorted = y_node[order]
            cw = np.arange(1, len(rows) + 1, dtype=np.float64)
            sw = np.cumsum(y_sorted)
            # Only boundaries where the value changes are valid thresholds.
            boundary = np.flatnonzero(col_sorted[:-1] != col_sorted[1:])
            if len(boundary) == 0:
                continue
            cw_b, sw_b = cw[boundary], sw[boundary]
            valid = (cw_b >= self.min_child_samples) & (
                (c_total - cw_b) >= self.min_child_samples
            )
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = (
                    base
                    + (sw_b / cw_b) * sw_b
                    + ((s_total - sw_b) / (c_total - cw_b)) * (s_total - sw_b)
                )
            gains[~valid] = -np.inf
            k = int(np.argmax(gains))
            if np.isfinite(gains[k]) and (best is None or gains[k] > best[2]):
                best = (j, float(col_sorted[boundary[k]]), float(gains[k]))
        return best

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise TrainingError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.zeros(len(features))
        stack = [(self.root, np.arange(len(features)))]
        while stack:
            node, rows = stack.pop()
            if node.is_leaf:
                out[rows] = node.value
                continue
            go_left = features[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[go_left]))
            stack.append((node.right, rows[~go_left]))
        return out

    def structure(self) -> List[tuple]:
        """(depth, feature, threshold) tuples for split-equality tests."""
        out: List[tuple] = []

        def walk(node: _ExactNode) -> None:
            if node.is_leaf:
                out.append((node.depth, None, round(node.value, 9)))
                return
            out.append((node.depth, node.feature, round(node.threshold, 9)))
            walk(node.left)
            walk(node.right)

        walk(self.root)
        return out


class ExactGradientBoosting:
    """Boosting over exact trees (the slow Sklearn line)."""

    def __init__(
        self,
        num_iterations: int = 100,
        num_leaves: int = 8,
        learning_rate: float = 0.1,
        min_child_samples: int = 1,
    ):
        self.num_iterations = num_iterations
        self.num_leaves = num_leaves
        self.learning_rate = learning_rate
        self.min_child_samples = min_child_samples
        self.trees: List[ExactDecisionTree] = []
        self.init_score = 0.0
        self.history: List[float] = []

    def fit(self, features: np.ndarray, y: np.ndarray) -> "ExactGradientBoosting":
        import time

        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.init_score = float(np.mean(y))
        score = np.full(len(y), self.init_score)
        for _ in range(self.num_iterations):
            start = time.perf_counter()
            tree = ExactDecisionTree(
                num_leaves=self.num_leaves,
                min_child_samples=self.min_child_samples,
            ).fit(features, y - score)
            score += self.learning_rate * tree.predict(features)
            self.trees.append(tree)
            self.history.append(time.perf_counter() - start)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        out = np.full(len(features), self.init_score)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(features)
        return out
