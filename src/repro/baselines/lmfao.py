"""Figure 16a's in-DB decision-tree ablation variants.

Four ways to train the same tree, isolating where JoinBoost's speedups
come from:

* ``naive``     — materialize R⋈ as a wide table, group-by per feature
  per node.  No factorization.
* ``batch``     — LMFAO's logical optimizations: factorized message
  passing with work shared *within* one node's batch of per-feature
  queries, but messages recomputed from scratch for every node.
* ``joinboost`` — batch plus the inter-node message cache (§5.5.1) plus
  batched frontier evaluation (one fused split query per relation per
  round); ``naive`` and ``batch`` pin ``split_batching="off"`` so the
  bracket isolates exactly these optimizations.

The real LMFAO adds a compiled execution engine on top of ``batch``;
running both through the same SQL engine isolates the *algorithmic*
difference, which is what Figure 16a's "benefit of message sharing among
nodes" bracket measures.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.exceptions import TrainingError
from repro.core.frontier import FrontierEvaluator
from repro.core.params import TrainParams
from repro.core.split import VarianceCriterion
from repro.core.trainer import DecisionTreeTrainer
from repro.core.tree import DecisionTreeModel
from repro.factorize.executor import Factorizer
from repro.joingraph.graph import JoinGraph
from repro.joingraph.hypertree import edge_between, rooted_tree
from repro.semiring.variance import VarianceSemiRing

VARIANTS = ("naive", "batch", "joinboost")


def _per_leaf_params(params: TrainParams) -> TrainParams:
    """The ablation baselines must not enjoy frontier batching — that is
    one of the optimizations the ``joinboost`` variant demonstrates."""
    import dataclasses

    return dataclasses.replace(params, split_batching="off")


def train_tree_variant(
    db,
    graph: JoinGraph,
    variant: str,
    params: Optional[dict] = None,
    **overrides,
) -> Tuple[DecisionTreeModel, float]:
    """Train one decision tree with the chosen ablation variant.

    Returns (model, seconds).
    """
    if variant not in VARIANTS:
        raise TrainingError(f"unknown variant {variant!r}; choose {VARIANTS}")
    train_params = TrainParams.from_dict(params, **overrides)
    start = time.perf_counter()
    if variant == "naive":
        model = _train_naive(db, graph, train_params)
    else:
        model = _train_factorized(
            db, graph, train_params, share_across_nodes=(variant == "joinboost")
        )
    return model, time.perf_counter() - start


def _train_factorized(
    db, graph: JoinGraph, params: TrainParams, share_across_nodes: bool
) -> DecisionTreeModel:
    ring = VarianceSemiRing()
    factorizer = Factorizer(db, graph, ring, cache_enabled=True)
    factorizer.lift()
    criterion = VarianceCriterion()
    if share_across_nodes:
        trainer = DecisionTreeTrainer(db, graph, factorizer, criterion, params)
        model = trainer.train()
    else:
        trainer = _PerNodeCacheTrainer(db, graph, factorizer, criterion, params)
        model = trainer.train()
    factorizer.cleanup()
    return model


class _PerNodeCacheEvaluator(FrontierEvaluator):
    """LMFAO-style: flush the message cache before every GetBestSplit.

    Work is still shared across the per-feature queries *within* a node
    (the batch optimization), but nothing carries over between nodes —
    so the variant runs per-leaf (frontier batching would itself share
    one pass across nodes, which is the thing being ablated away).
    """

    def _per_leaf(self, nodes, base_predicates, features):
        out = {}
        for node in nodes:
            self.factorizer.invalidate_all()
            out.update(super()._per_leaf([node], base_predicates, features))
        return out


class _PerNodeCacheTrainer(DecisionTreeTrainer):
    """DecisionTreeTrainer with the per-node-cache ablation evaluator."""

    def __init__(self, db, graph, factorizer, criterion, params, **kwargs):
        super().__init__(db, graph, factorizer, criterion, params, **kwargs)
        self.evaluator = _PerNodeCacheEvaluator(
            db,
            graph,
            factorizer,
            criterion,
            self.finder,
            mode="off",
            missing=params.missing,
            min_child_samples=params.min_child_samples,
        )


def _train_naive(db, graph: JoinGraph, params: TrainParams) -> DecisionTreeModel:
    """Materialize the wide table, then train over the single relation."""
    fact = graph.target_relation
    wide_name = db.temp_name("wide")
    sql, feature_names = _wide_table_sql(db, graph, fact)
    db.execute(f"CREATE TABLE {wide_name} AS {sql}", tag="materialize")

    wide_graph = JoinGraph(db)
    categorical = [
        feat
        for rel, feat in graph.all_features()
        if graph.is_categorical(rel, feat)
    ]
    wide_graph.add_relation(
        wide_name,
        features=feature_names,
        y=graph.target_column,
        categorical=categorical,
    )
    ring = VarianceSemiRing()
    factorizer = Factorizer(db, wide_graph, ring, cache_enabled=False)
    factorizer.lift()
    trainer = DecisionTreeTrainer(
        db, wide_graph, factorizer, VarianceCriterion(),
        _per_leaf_params(params),
    )
    model = trainer.train()
    factorizer.cleanup()
    db.drop_table(wide_name, if_exists=True)
    return model


def _wide_table_sql(db, graph: JoinGraph, fact: str) -> Tuple[str, list]:
    parent_map, children, _ = rooted_tree(graph, fact)
    aliases = {fact: "t"}
    joins = []
    frontier = [fact]
    while frontier:
        current = frontier.pop(0)
        for child in children[current]:
            aliases[child] = f"r{len(aliases)}"
            edge = edge_between(graph, current, child)
            condition = " AND ".join(
                f"{aliases[current]}.{a} = {aliases[child]}.{b}"
                for a, b in zip(edge.keys_for(current), edge.keys_for(child))
            )
            joins.append(f"JOIN {child} AS {aliases[child]} ON {condition}")
            frontier.append(child)
    select_parts = []
    feature_names = []
    for relation, feature in graph.all_features():
        select_parts.append(f"{aliases[relation]}.{feature} AS {feature}")
        feature_names.append(feature)
    target_rel = graph.target_relation
    select_parts.append(
        f"{aliases[target_rel]}.{graph.target_column} AS {graph.target_column}"
    )
    return (
        f"SELECT {', '.join(select_parts)} FROM {fact} AS t {' '.join(joins)}",
        feature_names,
    )
