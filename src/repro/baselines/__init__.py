"""Baselines the paper compares against, rebuilt from scratch.

* :mod:`repro.baselines.histgbm` — histogram GBDT / random forest over a
  single in-memory table (the LightGBM / XGBoost stand-in);
* :mod:`repro.baselines.exactgbm` — pre-sorted exact GBDT (Sklearn-like);
* :mod:`repro.baselines.export` — the join-materialize / export / load
  pipeline every single-table library must pay, with a real memory budget;
* :mod:`repro.baselines.lmfao` — factorized decision-tree variants that
  isolate the paper's Figure 16 ablation (Naive / Batch / JoinBoost);
* :mod:`repro.baselines.madlib` — non-factorized in-DB training over a
  row store (the MADLib stand-in).
"""

from repro.baselines.histgbm import (
    HistGradientBoosting,
    HistRandomForest,
)
from repro.baselines.exactgbm import ExactGradientBoosting, ExactDecisionTree
from repro.baselines.export import ExportedDataset, materialize_and_export
from repro.baselines.lmfao import train_tree_variant
from repro.baselines.madlib import train_madlib_tree

__all__ = [
    "HistGradientBoosting",
    "HistRandomForest",
    "ExactGradientBoosting",
    "ExactDecisionTree",
    "ExportedDataset",
    "materialize_and_export",
    "train_tree_variant",
    "train_madlib_tree",
]
