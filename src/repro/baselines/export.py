"""The materialize / export / load pipeline single-table libraries pay.

Every figure comparing JoinBoost with an ML library includes the "0th
iteration" cost: materialize R⋈ inside the DBMS, export it to CSV, and
parse it back into arrays.  These are real operations here — a real join,
a real file, a real parse — so the dotted "Join+Export" line of Figure 8
emerges from mechanism, not from a constant.

A memory budget guards materialization: the estimated dense size of R⋈
is compared against the configured budget (scaled down with the data from
the paper's 125 GB boxes), raising :class:`MemoryBudgetExceeded` exactly
where the paper reports "LightGBM runs out of memory".
"""

from __future__ import annotations

import csv
import dataclasses
import os
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import MemoryBudgetExceeded, TrainingError
from repro.joingraph.graph import JoinGraph

#: default budget for the materialized matrix (bytes); benches override.
DEFAULT_MEMORY_BUDGET = 2 * 1024**3  # 2 GiB


@dataclasses.dataclass
class ExportedDataset:
    """The single-table training input an ML library consumes."""

    features: np.ndarray  # dense (n, d) float matrix
    y: np.ndarray
    feature_names: List[str]
    materialize_seconds: float
    export_seconds: float
    load_seconds: float
    csv_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.materialize_seconds + self.export_seconds + self.load_seconds


def estimate_join_bytes(db, graph: JoinGraph, fact: Optional[str] = None) -> int:
    """Dense float64 size of the materialized training matrix."""
    fact = fact or graph.target_relation
    rows = db.table(fact).num_rows()
    cols = len(graph.all_features()) + 1
    return rows * cols * 8


def materialize_and_export(
    db,
    graph: JoinGraph,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    keep_csv: bool = False,
) -> ExportedDataset:
    """Materialize R⋈, write it to CSV, read it back as arrays."""
    fact = graph.target_relation
    estimated = estimate_join_bytes(db, graph, fact)
    if estimated > memory_budget:
        raise MemoryBudgetExceeded(estimated, memory_budget)

    # 1. Materialize the join inside the DBMS (real SQL join).
    start = time.perf_counter()
    sql, columns = _join_sql(db, graph, fact)
    relation = db.execute(sql, tag="materialize")
    materialize_seconds = time.perf_counter() - start

    # 2. Export to CSV (real file I/O).
    start = time.perf_counter()
    handle, path = tempfile.mkstemp(prefix="repro-export-", suffix=".csv")
    os.close(handle)
    arrays = [relation.column(c).values for c in columns]
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(columns)
        for row in zip(*arrays):
            writer.writerow(row)
    csv_bytes = os.path.getsize(path)
    export_seconds = time.perf_counter() - start

    # 3. Load the CSV (real parse).
    start = time.perf_counter()
    loaded = np.genfromtxt(path, delimiter=",", skip_header=1, dtype=np.float64)
    if loaded.ndim == 1:
        loaded = loaded.reshape(-1, len(columns))
    load_seconds = time.perf_counter() - start
    if not keep_csv:
        os.unlink(path)

    y_index = columns.index(graph.target_column)
    feature_idx = [i for i in range(len(columns)) if i != y_index]
    return ExportedDataset(
        features=loaded[:, feature_idx],
        y=loaded[:, y_index],
        feature_names=[columns[i] for i in feature_idx],
        materialize_seconds=materialize_seconds,
        export_seconds=export_seconds,
        load_seconds=load_seconds,
        csv_bytes=csv_bytes,
    )


def _join_sql(db, graph: JoinGraph, fact: str) -> Tuple[str, List[str]]:
    """SELECT joining the whole graph, projecting features + target.

    The join clause comes from the shared scoring builder
    (:func:`repro.core.sql_score.join_tree_sql`) with inner-join
    semantics — materialization drops dangling rows, matching what a
    single-table library would train on.
    """
    from repro.core.sql_score import join_tree_sql

    aliases, joins = join_tree_sql(graph, fact, join_kind="JOIN")
    columns: List[str] = []
    select_parts: List[str] = []
    for relation, feature in graph.all_features():
        select_parts.append(f"{aliases[relation]}.{feature} AS {feature}")
        columns.append(feature)
    target_rel = graph.target_relation
    target = graph.target_column
    select_parts.append(f"{aliases[target_rel]}.{target} AS {target}")
    columns.append(target)
    sql = f"SELECT {', '.join(select_parts)} FROM {fact} AS t {' '.join(joins)}"
    return sql, columns


def load_feature_matrix(
    db, graph: JoinGraph
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """In-memory materialization without the CSV round trip (tests)."""
    fact = graph.target_relation
    sql, columns = _join_sql(db, graph, fact)
    relation = db.execute(sql, tag="materialize")
    y_index = columns.index(graph.target_column)
    arrays = [relation.column(c).as_float() for c in columns]
    matrix = np.column_stack(arrays)
    feature_idx = [i for i in range(len(columns)) if i != y_index]
    return (
        matrix[:, feature_idx],
        matrix[:, y_index],
        [columns[i] for i in feature_idx],
    )
