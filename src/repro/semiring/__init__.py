"""Semi-ring library (the paper's Tables 1 and 2).

Each semi-ring knows its component columns, the SQL fragments for ⊕
(component-wise SUM under GROUP BY), ⊗ (the join-multiplication formulas),
the ``lift`` of a base tuple, and — where it exists — the residual-update
multiplier ``lift(-p)`` that makes factorized gradient boosting possible
(Definition 1, addition-to-multiplication preserving).
"""

from repro.semiring.base import SemiRing, get_semiring, register_semiring
from repro.semiring.variance import VarianceSemiRing
from repro.semiring.classcount import ClassCountSemiRing
from repro.semiring.gradient import GradientSemiRing, MulticlassGradientSemiRing
from repro.semiring.losses import LOSSES, Loss, get_loss
from repro.semiring.properties import (
    check_semiring_axioms,
    is_addition_to_multiplication_preserving,
    SignSemiRing,
)

__all__ = [
    "SemiRing",
    "get_semiring",
    "register_semiring",
    "VarianceSemiRing",
    "ClassCountSemiRing",
    "GradientSemiRing",
    "MulticlassGradientSemiRing",
    "Loss",
    "LOSSES",
    "get_loss",
    "check_semiring_axioms",
    "is_addition_to_multiplication_preserving",
    "SignSemiRing",
]
