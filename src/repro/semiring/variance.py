"""The variance semi-ring (Table 1) — supports the rmse criterion.

Elements are (c, s, q) = (count, Σy, Σy²); the aggregated element over a
tuple set gives ``variance = q - s²/c``.  The lift is
``lift(y) = (1, y, y²)`` and it is *addition-to-multiplication preserving*
(Definition 1): ``lift(y1 + y2) = lift(y1) ⊗ lift(y2)``, which is exactly
what makes factorized residual updates possible for gradient boosting —
multiplying an aggregate by ``lift(-p)`` shifts every underlying y by -p.

The paper notes (Section 5.3.1 / Appendix A) that the q component cancels
out of the variance-*reduction* criterion, so training can carry (c, s)
only; ``include_q=False`` (the default) enables that optimization.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.semiring.base import Element, SemiRing, register_semiring


@register_semiring
class VarianceSemiRing(SemiRing):
    """(Z, R, R) with the ⊕/⊗ of Table 1."""

    name = "variance"

    def __init__(self, include_q: bool = False):
        self.include_q = include_q
        self.components = ("c", "s", "q") if include_q else ("c", "s")

    # -- Python face -----------------------------------------------------
    def zero(self) -> Element:
        return (0.0,) * len(self.components)

    def one(self) -> Element:
        return (1.0,) + (0.0,) * (len(self.components) - 1)

    def multiply(self, a: Element, b: Element) -> Element:
        self._check(a), self._check(b)
        if self.include_q:
            c1, s1, q1 = a
            c2, s2, q2 = b
            return (c1 * c2, s1 * c2 + s2 * c1, q1 * c2 + q2 * c1 + 2 * s1 * s2)
        c1, s1 = a
        c2, s2 = b
        return (c1 * c2, s1 * c2 + s2 * c1)

    def lift(self, value) -> Element:
        y = float(value)
        if self.include_q:
            return (1.0, y, y * y)
        return (1.0, y)

    # -- SQL face ----------------------------------------------------------
    def lift_sql(self, y_expr: str) -> List[Tuple[str, str]]:
        out = [("c", "1"), ("s", f"({y_expr})")]
        if self.include_q:
            out.append(("q", f"(({y_expr}) * ({y_expr}))"))
        return out

    def multiply_expr(self, left, right):
        out = {
            "c": f"({left['c']} * {right['c']})",
            "s": f"({left['s']} * {right['c']} + {right['s']} * {left['c']})",
        }
        if self.include_q:
            out["q"] = (
                f"({left['q']} * {right['c']} + {right['q']} * {left['c']}"
                f" + 2 * {left['s']} * {right['s']})"
            )
        return out

    # -- residual update (⊗ lift(-p)) -------------------------------------
    def residual_update_sql(self, alias: str, neg_pred_expr: str) -> List[Tuple[str, str]]:
        """⊗ with ``lift(-p)`` where ``neg_pred_expr`` is the SQL for -p.

        lift(-p) = (1, -p, p²), so::

            c' = c
            s' = s + (-p) * c
            q' = q + p²·c + 2·s·(-p)
        """
        prefix = f"{alias}." if alias else ""
        out = [
            ("c", f"{prefix}c"),
            ("s", f"({prefix}s + ({neg_pred_expr}) * {prefix}c)"),
        ]
        if self.include_q:
            out.append((
                "q",
                f"({prefix}q + ({neg_pred_expr}) * ({neg_pred_expr}) * {prefix}c"
                f" + 2 * {prefix}s * ({neg_pred_expr}))",
            ))
        return out

    # -- statistics ---------------------------------------------------------
    @staticmethod
    def variance(c: float, s: float, q: float) -> float:
        """Total variance statistic of an aggregated (c, s, q)."""
        if c <= 0:
            return 0.0
        return q - s * s / c

    @staticmethod
    def mean(c: float, s: float) -> float:
        return s / c if c else 0.0
