"""The class-count semi-ring (Table 1) — classification criteria.

Elements are (c, c¹, ..., cᵏ): total count plus one count per class.  The
lift of a tuple with class label i is (1, 0, ..., 1@i, ..., 0).  Supports
gini impurity, information gain (entropy) and chi-square (Appendix A).

Note this lift is *not* addition-to-multiplication preserving — class
labels do not add — so gradient boosting over galaxy schemas is not
available for it; classification boosting goes through the (multiclass)
gradient semi-ring on snowflake schemas instead, exactly as in the paper.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.exceptions import SemiRingError
from repro.semiring.base import Element, SemiRing, register_semiring


@register_semiring
class ClassCountSemiRing(SemiRing):
    """(Z, Z, ..., Z) with k class-count slots."""

    name = "classcount"

    def __init__(self, num_classes: int = 2):
        if num_classes < 2:
            raise SemiRingError("classification needs at least 2 classes")
        self.num_classes = num_classes
        self.components = ("c",) + tuple(f"c{i}" for i in range(num_classes))

    # -- Python face -----------------------------------------------------
    def zero(self) -> Element:
        return (0.0,) * len(self.components)

    def one(self) -> Element:
        return (1.0,) + (0.0,) * self.num_classes

    def multiply(self, a: Element, b: Element) -> Element:
        self._check(a), self._check(b)
        c1, rest1 = a[0], a[1:]
        c2, rest2 = b[0], b[1:]
        return (c1 * c2,) + tuple(
            x1 * c2 + c1 * x2 for x1, x2 in zip(rest1, rest2)
        )

    def lift(self, value) -> Element:
        label = int(value)
        if not 0 <= label < self.num_classes:
            raise SemiRingError(
                f"class label {label} out of range [0, {self.num_classes})"
            )
        counts = [0.0] * self.num_classes
        counts[label] = 1.0
        return (1.0, *counts)

    # -- SQL face ----------------------------------------------------------
    def lift_sql(self, y_expr: str) -> List[Tuple[str, str]]:
        out = [("c", "1")]
        for i in range(self.num_classes):
            out.append((f"c{i}", f"(CASE WHEN ({y_expr}) = {i} THEN 1 ELSE 0 END)"))
        return out

    def multiply_expr(self, left, right):
        out = {"c": f"({left['c']} * {right['c']})"}
        for i in range(self.num_classes):
            out[f"c{i}"] = (
                f"({left[f'c{i}']} * {right['c']} + {left['c']} * {right[f'c{i}']})"
            )
        return out

    # -- classification criteria (Appendix A) -------------------------------
    @staticmethod
    def gini(counts: Sequence[float]) -> float:
        """Gini impurity of a (c, c¹..cᵏ) aggregate, weighted by count."""
        total, classes = counts[0], counts[1:]
        if total <= 0:
            return 0.0
        return total * (1.0 - sum((ci / total) ** 2 for ci in classes))

    @staticmethod
    def entropy(counts: Sequence[float]) -> float:
        """Entropy (for information gain), weighted by count."""
        total, classes = counts[0], counts[1:]
        if total <= 0:
            return 0.0
        out = 0.0
        for ci in classes:
            if ci > 0:
                p = ci / total
                out -= p * math.log(p)
        return total * out

    @staticmethod
    def chi_square(
        left: Sequence[float], right: Sequence[float]
    ) -> float:
        """Chi-square statistic of a binary split (Appendix A)."""
        c_left, c_right = left[0], right[0]
        total = c_left + c_right
        if total <= 0 or c_left <= 0 or c_right <= 0:
            return 0.0
        stat = 0.0
        for ci_left, ci_right in zip(left[1:], right[1:]):
            ci = ci_left + ci_right
            for observed, part in ((ci_left, c_left), (ci_right, c_right)):
                expected = ci * part / total
                if expected > 0:
                    stat += (observed - expected) ** 2 / expected
        return stat

    def mode(self, counts: Sequence[float]) -> int:
        """Majority class of an aggregate (leaf prediction)."""
        classes = counts[1:]
        return max(range(self.num_classes), key=lambda i: classes[i])
