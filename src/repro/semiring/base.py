"""Semi-ring protocol and registry.

A semi-ring here is a commutative semi-ring (D, ⊕, ⊗, 0, 1) together with a
``lift`` function from base-tuple values into D (Section 3.1).  All the
semi-rings used for tree training have *component-wise* ⊕ — their elements
are fixed-width tuples of reals added coordinate-wise — which is what makes
the SQL translation simple: ⊕-aggregation is ``SUM`` per component column,
and ⊗ is a per-component arithmetic expression over the two join sides.

Two faces are exposed:

* a **Python face** (``zero``/``one``/``add``/``multiply``/``lift``) over
  plain tuples, used by property tests and the in-memory fast paths, and
* a **SQL face** (``lift_sql``/``multiply_sql``/``identity_sql``) producing
  the expression strings the factorizer splices into its messages.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import SemiRingError

Element = Tuple[float, ...]


class SemiRing:
    """Base class; subclasses define components and the two faces."""

    name: str = "abstract"
    #: component column names in storage order (e.g. ("c", "s") or ("h", "g"))
    components: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Python face
    # ------------------------------------------------------------------
    def zero(self) -> Element:
        raise NotImplementedError

    def one(self) -> Element:
        raise NotImplementedError

    def add(self, a: Element, b: Element) -> Element:
        """⊕ — component-wise for every semi-ring in this library."""
        self._check(a), self._check(b)
        return tuple(x + y for x, y in zip(a, b))

    def multiply(self, a: Element, b: Element) -> Element:
        raise NotImplementedError

    def lift(self, value) -> Element:
        """Annotate a base-tuple target value (Table 1/2 "Lift")."""
        raise NotImplementedError

    def _check(self, element: Element) -> None:
        if len(element) != len(self.components):
            raise SemiRingError(
                f"{self.name} element must have {len(self.components)} "
                f"components, got {len(element)}"
            )

    # ------------------------------------------------------------------
    # SQL face
    # ------------------------------------------------------------------
    def lift_sql(self, y_expr: str) -> List[Tuple[str, str]]:
        """(component, sql_expr) pairs lifting target expression ``y_expr``."""
        raise NotImplementedError

    def identity_sql(self) -> List[Tuple[str, str]]:
        """Lift of the 1 element (non-target relations)."""
        one = self.one()
        return [(comp, _fmt(val)) for comp, val in zip(self.components, one)]

    def multiply_expr(
        self, left: Dict[str, str], right: Dict[str, str]
    ) -> Dict[str, str]:
        """⊗ over component->SQL-expression dicts (the general form)."""
        raise NotImplementedError

    def multiply_sql(self, left: str, right: str) -> List[Tuple[str, str]]:
        """(component, sql_expr) for ⊗ of ``left.comp`` and ``right.comp``."""
        lhs = {comp: f"{left}.{comp}" for comp in self.components}
        rhs = {comp: f"{right}.{comp}" for comp in self.components}
        product = self.multiply_expr(lhs, rhs)
        return [(comp, product[comp]) for comp in self.components]

    def scale_expr(self, exprs: Dict[str, str], count_expr: str) -> Dict[str, str]:
        """⊗ with ``count_expr`` copies of the 1 element, over expressions.

        Valid whenever 1 = (1, 0, ..., 0); subclasses with a different 1
        (e.g. multiclass pairs) override.
        """
        one = self.one()
        if any(v != 0 for v in one[1:]) or one[0] != 1:
            raise SemiRingError(f"{self.name} needs a custom scale_expr")
        return {
            comp: f"({expr} * {count_expr})" for comp, expr in exprs.items()
        }

    def sum_sql(self, alias: str = "") -> List[Tuple[str, str]]:
        """⊕-aggregation fragments: SUM over each component column."""
        prefix = f"{alias}." if alias else ""
        return [(comp, f"SUM({prefix}{comp})") for comp in self.components]

    # ------------------------------------------------------------------
    # Count-scaling (multiplying by an un-lifted relation whose annotation
    # is k copies of 1, i.e. the element lift-of-1 added k times).
    # ------------------------------------------------------------------
    def scale_sql(self, alias: str, count_expr: str) -> List[Tuple[str, str]]:
        """⊗ with ``count_expr`` copies of the 1 element.

        For component-wise semi-rings whose 1 element is (1, 0, ..., 0) this
        is simply multiplying every component by the count; subclasses with
        a different 1 must override.
        """
        one = self.one()
        if any(v != 0 for v in one[1:]) or one[0] != 1:
            raise SemiRingError(f"{self.name} needs a custom scale_sql")
        prefix = f"{alias}." if alias else ""
        return [
            (comp, f"({prefix}{comp} * {count_expr})") for comp in self.components
        ]

    def __repr__(self) -> str:
        return f"<SemiRing {self.name} components={self.components}>"


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


_REGISTRY: Dict[str, type] = {}


def register_semiring(cls: type) -> type:
    """Class decorator: register a semi-ring under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def get_semiring(name: str, **kwargs) -> SemiRing:
    """Instantiate a registered semi-ring by name."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        raise SemiRingError(
            f"unknown semi-ring {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def registered_semirings() -> List[str]:
    return sorted(_REGISTRY)
