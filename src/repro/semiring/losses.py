"""Loss functions for gradient boosting (the paper's Table 3).

Each loss provides first/second-order statistics with respect to the raw
prediction score, following the standard convention ``g = ∂l/∂p`` so the
optimal leaf value is ``-G / (H + λ)`` (Appendix B).  As the paper notes,
several of these are the practically-normalized forms LightGBM ships (e.g.
L1's hessian is 1), not textbook derivatives.

Both a NumPy face (``gradient``/``hessian`` over arrays) and a SQL face
(``gradient_sql``/``hessian_sql`` producing expressions over the fact
table's y and prediction columns) are provided; the SQL face is what keeps
training "only SQL" for snowflake schemas.

Only L2/rmse admits the addition-to-multiplication-preserving lift needed
for galaxy-schema residual updates (``supports_galaxy``); every other loss
requires per-row y and prediction, hence snowflake schemas — the exact
restriction stated in Section 5.1.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import SemiRingError


class Loss:
    """A boosting objective with NumPy and SQL faces."""

    name = "abstract"
    supports_galaxy = False

    # -- NumPy face -------------------------------------------------------
    def loss(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def hessian(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def init_score(self, y: np.ndarray) -> float:
        """Base prediction before the first tree."""
        return float(np.mean(y))

    def predict_transform(self, score: np.ndarray) -> np.ndarray:
        """Map raw scores to the output scale (identity by default)."""
        return score

    # -- SQL face -----------------------------------------------------------
    def gradient_sql(self, y: str, pred: str) -> str:
        raise NotImplementedError

    def hessian_sql(self, y: str, pred: str) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Loss {self.name}>"


class L2Loss(Loss):
    """rmse — the only loss whose lift is add-to-mul preserving."""

    name = "l2"
    supports_galaxy = True

    def loss(self, y, pred):
        return 0.5 * (y - pred) ** 2

    def gradient(self, y, pred):
        return pred - y

    def hessian(self, y, pred):
        return np.ones_like(y, dtype=np.float64)

    def gradient_sql(self, y: str, pred: str) -> str:
        return f"({pred} - {y})"

    def hessian_sql(self, y: str, pred: str) -> str:
        return "1"


class L1Loss(Loss):
    name = "l1"

    def loss(self, y, pred):
        return np.abs(y - pred)

    def gradient(self, y, pred):
        return np.sign(pred - y)

    def hessian(self, y, pred):
        return np.ones_like(y, dtype=np.float64)

    def init_score(self, y):
        return float(np.median(y))

    def gradient_sql(self, y: str, pred: str) -> str:
        return f"SIGN({pred} - {y})"

    def hessian_sql(self, y: str, pred: str) -> str:
        return "1"


class HuberLoss(Loss):
    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise SemiRingError("huber delta must be positive")
        self.delta = float(delta)

    def loss(self, y, pred):
        err = np.abs(y - pred)
        return np.where(
            err <= self.delta, 0.5 * err**2, self.delta * (err - 0.5 * self.delta)
        )

    def gradient(self, y, pred):
        err = pred - y
        return np.clip(err, -self.delta, self.delta)

    def hessian(self, y, pred):
        return np.ones_like(y, dtype=np.float64)

    def gradient_sql(self, y: str, pred: str) -> str:
        d = repr(self.delta)
        return f"LEAST(GREATEST(({pred} - {y}), -{d}), {d})"

    def hessian_sql(self, y: str, pred: str) -> str:
        return "1"


class FairLoss(Loss):
    name = "fair"

    def __init__(self, c: float = 1.0):
        if c <= 0:
            raise SemiRingError("fair c must be positive")
        self.c = float(c)

    def loss(self, y, pred):
        err = np.abs(y - pred)
        return self.c * err - self.c**2 * np.log(err / self.c + 1.0)

    def gradient(self, y, pred):
        err = pred - y
        return self.c * err / (np.abs(err) + self.c)

    def hessian(self, y, pred):
        err = pred - y
        return self.c**2 / (np.abs(err) + self.c) ** 2

    def gradient_sql(self, y: str, pred: str) -> str:
        c = repr(self.c)
        return f"({c} * ({pred} - {y}) / (ABS({pred} - {y}) + {c}))"

    def hessian_sql(self, y: str, pred: str) -> str:
        c = repr(self.c)
        return f"({c} * {c} / (POWER(ABS({pred} - {y}) + {c}, 2)))"


class PoissonLoss(Loss):
    """Log-link Poisson regression: the raw score is log-rate."""

    name = "poisson"

    def loss(self, y, pred):
        return np.exp(pred) - y * pred

    def gradient(self, y, pred):
        return np.exp(pred) - y

    def hessian(self, y, pred):
        return np.exp(pred)

    def init_score(self, y):
        return float(np.log(max(np.mean(y), 1e-9)))

    def predict_transform(self, score):
        return np.exp(score)

    def gradient_sql(self, y: str, pred: str) -> str:
        return f"(EXP({pred}) - {y})"

    def hessian_sql(self, y: str, pred: str) -> str:
        return f"EXP({pred})"


class QuantileLoss(Loss):
    name = "quantile"

    def __init__(self, alpha: float = 0.5):
        if not 0 < alpha < 1:
            raise SemiRingError("quantile alpha must be in (0, 1)")
        self.alpha = float(alpha)

    def loss(self, y, pred):
        err = y - pred
        return np.where(err >= 0, self.alpha * err, (self.alpha - 1.0) * err)

    def gradient(self, y, pred):
        err = y - pred
        return np.where(err >= 0, -self.alpha, 1.0 - self.alpha)

    def hessian(self, y, pred):
        return np.ones_like(y, dtype=np.float64)

    def init_score(self, y):
        return float(np.quantile(y, self.alpha))

    def gradient_sql(self, y: str, pred: str) -> str:
        a = repr(self.alpha)
        return f"(CASE WHEN ({y} - {pred}) >= 0 THEN -{a} ELSE 1 - {a} END)"

    def hessian_sql(self, y: str, pred: str) -> str:
        return "1"


class MAPELoss(Loss):
    name = "mape"

    def loss(self, y, pred):
        return np.abs(y - pred) / np.maximum(1.0, np.abs(y))

    def gradient(self, y, pred):
        return np.sign(pred - y) / np.maximum(1.0, np.abs(y))

    def hessian(self, y, pred):
        return np.ones_like(y, dtype=np.float64)

    def init_score(self, y):
        return float(np.median(y))

    def gradient_sql(self, y: str, pred: str) -> str:
        return f"(SIGN({pred} - {y}) / GREATEST(1, ABS({y})))"

    def hessian_sql(self, y: str, pred: str) -> str:
        return "1"


class GammaLoss(Loss):
    """Log-link gamma regression."""

    name = "gamma"

    def loss(self, y, pred):
        return y * np.exp(-pred) + pred

    def gradient(self, y, pred):
        return 1.0 - y * np.exp(-pred)

    def hessian(self, y, pred):
        return y * np.exp(-pred)

    def init_score(self, y):
        return float(np.log(max(np.mean(y), 1e-9)))

    def predict_transform(self, score):
        return np.exp(score)

    def gradient_sql(self, y: str, pred: str) -> str:
        return f"(1 - {y} * EXP(-({pred})))"

    def hessian_sql(self, y: str, pred: str) -> str:
        return f"({y} * EXP(-({pred})))"


class TweedieLoss(Loss):
    name = "tweedie"

    def __init__(self, rho: float = 1.5):
        if not 1.0 < rho < 2.0:
            raise SemiRingError("tweedie rho must be in (1, 2)")
        self.rho = float(rho)

    def loss(self, y, pred):
        one, two = 1.0 - self.rho, 2.0 - self.rho
        return -y * np.exp(one * pred) / one + np.exp(two * pred) / two

    def gradient(self, y, pred):
        one, two = 1.0 - self.rho, 2.0 - self.rho
        return -y * np.exp(one * pred) + np.exp(two * pred)

    def hessian(self, y, pred):
        one, two = 1.0 - self.rho, 2.0 - self.rho
        return -one * y * np.exp(one * pred) + two * np.exp(two * pred)

    def init_score(self, y):
        return float(np.log(max(np.mean(y), 1e-9)))

    def predict_transform(self, score):
        return np.exp(score)

    def gradient_sql(self, y: str, pred: str) -> str:
        one, two = repr(1.0 - self.rho), repr(2.0 - self.rho)
        return f"(-{y} * EXP({one} * {pred}) + EXP({two} * {pred}))"

    def hessian_sql(self, y: str, pred: str) -> str:
        one, two = repr(1.0 - self.rho), repr(2.0 - self.rho)
        return (
            f"(-({one}) * {y} * EXP({one} * {pred})"
            f" + ({two}) * EXP({two} * {pred}))"
        )


class SoftmaxLoss(Loss):
    """Multiclass cross-entropy; per-class g/h from softmax probabilities.

    The per-class statistics need all class scores (for the softmax
    denominator), so the SQL face takes the probability column directly —
    the trainer materializes per-class probability columns first.
    """

    name = "softmax"

    def __init__(self, num_classes: int = 2):
        if num_classes < 2:
            raise SemiRingError("softmax needs >= 2 classes")
        self.num_classes = num_classes

    @staticmethod
    def softmax(scores: np.ndarray) -> np.ndarray:
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def loss(self, y, scores):
        probs = self.softmax(np.atleast_2d(scores))
        rows = np.arange(len(y))
        return -np.log(np.clip(probs[rows, y.astype(int)], 1e-12, None))

    def gradient_class(self, y: np.ndarray, probs: np.ndarray, k: int) -> np.ndarray:
        return probs[:, k] - (y.astype(int) == k).astype(np.float64)

    def hessian_class(self, y: np.ndarray, probs: np.ndarray, k: int) -> np.ndarray:
        factor = self.num_classes / (self.num_classes - 1.0)
        return factor * probs[:, k] * (1.0 - probs[:, k])

    def gradient_sql_class(self, y: str, prob: str, k: int) -> str:
        return f"({prob} - (CASE WHEN {y} = {k} THEN 1 ELSE 0 END))"

    def hessian_sql_class(self, prob: str) -> str:
        factor = repr(self.num_classes / (self.num_classes - 1.0))
        return f"({factor} * {prob} * (1 - {prob}))"

    def gradient(self, y, pred):  # pragma: no cover - interface completeness
        raise SemiRingError("softmax gradients are per-class; use gradient_class")

    def hessian(self, y, pred):  # pragma: no cover - interface completeness
        raise SemiRingError("softmax hessians are per-class; use hessian_class")


LOSSES: Dict[str, Callable[..., Loss]] = {
    "l2": L2Loss,
    "rmse": L2Loss,
    "regression": L2Loss,
    "mse": L2Loss,
    "l1": L1Loss,
    "mae": L1Loss,
    "huber": HuberLoss,
    "fair": FairLoss,
    "poisson": PoissonLoss,
    "quantile": QuantileLoss,
    "mape": MAPELoss,
    "gamma": GammaLoss,
    "tweedie": TweedieLoss,
    "softmax": SoftmaxLoss,
    "multiclass": SoftmaxLoss,
}


def get_loss(name: str, **kwargs) -> Loss:
    """Instantiate a loss by any of its registered aliases."""
    try:
        factory = LOSSES[name.lower()]
    except KeyError:
        raise SemiRingError(
            f"unknown objective {name!r}; known: {sorted(LOSSES)}"
        ) from None
    return factory(**kwargs)
