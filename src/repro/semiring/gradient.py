"""Gradient semi-rings (Table 2) — second-order boosting statistics.

Regression elements are (h, g): Σhessian and Σgradient of the loss with
respect to the current prediction.  The ⊗ rule mirrors the variance
semi-ring with h in the count slot::

    (h1, g1) ⊗ (h2, g2) = (h1·h2, g1·h2 + g2·h1)

and the lift of a fact row is (h(t), g(t)) from Table 3's loss formulas.
The aggregated (H, G) of a leaf gives the optimal prediction
``p* = -G / (H + λ)`` and the split gain of Appendix B.

For rmse (h ≡ 1) the lift ``g ↦ (1, g)`` is addition-to-multiplication
preserving, so galaxy-schema residual updates work by joining with
``lift(lr·p)`` — the gradient for L2 shifts additively with the prediction.
Other losses need per-row y and prediction, hence snowflake schemas only
(the paper's exact restriction).

Multiclass elements are ((h¹, g¹), ..., (hᵏ, gᵏ)) — flattened here to
(h0, g0, h1, g1, ...) — with pair-wise ⊗.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import SemiRingError
from repro.semiring.base import Element, SemiRing, register_semiring


@register_semiring
class GradientSemiRing(SemiRing):
    """(R, R) regression gradient semi-ring of Table 2.

    ``suffix`` renames the components (e.g. ``suffix="2"`` gives
    ``("h2", "g2")``) so per-class multiclass trainers can share one
    lifted table holding all classes' columns.
    """

    name = "gradient"
    components = ("h", "g")

    def __init__(self, suffix: str = ""):
        self.suffix = suffix
        self.components = (f"h{suffix}", f"g{suffix}")

    @property
    def h(self) -> str:
        return self.components[0]

    @property
    def g(self) -> str:
        return self.components[1]

    def zero(self) -> Element:
        return (0.0, 0.0)

    def one(self) -> Element:
        return (1.0, 0.0)

    def multiply(self, a: Element, b: Element) -> Element:
        self._check(a), self._check(b)
        h1, g1 = a
        h2, g2 = b
        return (h1 * h2, g1 * h2 + g2 * h1)

    def lift(self, value) -> Element:
        """Lift a gradient with unit hessian (the rmse case)."""
        return (1.0, float(value))

    def lift_pair(self, hessian: float, gradient: float) -> Element:
        return (float(hessian), float(gradient))

    # -- SQL face ----------------------------------------------------------
    def lift_sql(self, y_expr: str) -> List[Tuple[str, str]]:
        """Unit-hessian lift; general losses use :meth:`lift_pair_sql`."""
        return [(self.h, "1"), (self.g, f"({y_expr})")]

    def lift_pair_sql(self, h_expr: str, g_expr: str) -> List[Tuple[str, str]]:
        return [(self.h, f"({h_expr})"), (self.g, f"({g_expr})")]

    def multiply_expr(self, left, right):
        h, g = self.components
        return {
            h: f"({left[h]} * {right[h]})",
            g: f"({left[g]} * {right[h]} + {right[g]} * {left[h]})",
        }

    def residual_update_sql(self, alias: str, delta_expr: str) -> List[Tuple[str, str]]:
        """⊗ with lift(δ) = (1, δ): shifts every gradient by δ.

        For L2 loss g = p - y, so after a leaf adds lr·p* to the prediction
        the gradient shifts by exactly δ = lr·p* — the galaxy-schema update.
        """
        prefix = f"{alias}." if alias else ""
        h, g = self.components
        return [
            (h, f"{prefix}{h}"),
            (g, f"({prefix}{g} + ({delta_expr}) * {prefix}{h})"),
        ]

    # -- boosting statistics (Appendix B) -----------------------------------
    @staticmethod
    def leaf_value(g_sum: float, h_sum: float, reg_lambda: float = 0.0) -> float:
        denominator = h_sum + reg_lambda
        if denominator <= 0:
            return 0.0
        return -g_sum / denominator

    @staticmethod
    def objective(g_sum: float, h_sum: float, reg_lambda: float = 0.0) -> float:
        denominator = h_sum + reg_lambda
        if denominator <= 0:
            return 0.0
        return -0.5 * g_sum * g_sum / denominator

    @classmethod
    def split_gain(
        cls,
        g_left: float,
        h_left: float,
        g_total: float,
        h_total: float,
        reg_lambda: float = 0.0,
        reg_alpha: float = 0.0,
    ) -> float:
        """Reduction in loss from splitting (G,H) into left and complement."""
        g_right = g_total - g_left
        h_right = h_total - h_left
        before = cls.objective(g_total, h_total, reg_lambda)
        after = cls.objective(g_left, h_left, reg_lambda) + cls.objective(
            g_right, h_right, reg_lambda
        )
        return before - after - reg_alpha


@register_semiring
class MulticlassGradientSemiRing(SemiRing):
    """Classification gradient semi-ring of Table 2 (k (h, g) pairs)."""

    name = "multiclass_gradient"

    def __init__(self, num_classes: int = 2):
        if num_classes < 2:
            raise SemiRingError("multiclass gradient needs >= 2 classes")
        self.num_classes = num_classes
        comps: List[str] = []
        for i in range(num_classes):
            comps += [f"h{i}", f"g{i}"]
        self.components = tuple(comps)

    def zero(self) -> Element:
        return (0.0,) * len(self.components)

    def one(self) -> Element:
        return (1.0, 0.0) * self.num_classes

    def multiply(self, a: Element, b: Element) -> Element:
        self._check(a), self._check(b)
        out: List[float] = []
        for i in range(self.num_classes):
            h1, g1 = a[2 * i], a[2 * i + 1]
            h2, g2 = b[2 * i], b[2 * i + 1]
            out += [h1 * h2, g1 * h2 + g2 * h1]
        return tuple(out)

    def lift(self, value) -> Element:
        """Unit-hessian lift of per-class gradients from a label."""
        label = int(value)
        out: List[float] = []
        for i in range(self.num_classes):
            out += [1.0, 1.0 if i == label else 0.0]
        return tuple(out)

    def lift_pairs_sql(self, pairs: List[Tuple[str, str]]) -> List[Tuple[str, str]]:
        """Lift per-class (h_expr, g_expr) SQL pairs."""
        if len(pairs) != self.num_classes:
            raise SemiRingError("need one (h, g) expression pair per class")
        out: List[Tuple[str, str]] = []
        for i, (h_expr, g_expr) in enumerate(pairs):
            out += [(f"h{i}", f"({h_expr})"), (f"g{i}", f"({g_expr})")]
        return out

    def lift_sql(self, y_expr: str) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        for i in range(self.num_classes):
            out += [
                (f"h{i}", "1"),
                (f"g{i}", f"(CASE WHEN ({y_expr}) = {i} THEN 1 ELSE 0 END)"),
            ]
        return out

    def multiply_expr(self, left, right):
        out = {}
        for i in range(self.num_classes):
            h, g = f"h{i}", f"g{i}"
            out[h] = f"({left[h]} * {right[h]})"
            out[g] = f"({left[g]} * {right[h]} + {right[g]} * {left[h]})"
        return out

    def scale_expr(self, exprs, count_expr):
        # k summed copies of the 1 element is (k, 0, k, 0, ...): every
        # pair scales by k.
        return {comp: f"({expr} * {count_expr})" for comp, expr in exprs.items()}

    def scale_sql(self, alias: str, count_expr: str) -> List[Tuple[str, str]]:
        prefix = f"{alias}." if alias else ""
        out: List[Tuple[str, str]] = []
        for i in range(self.num_classes):
            out += [
                (f"h{i}", f"({prefix}h{i} * {count_expr})"),
                (f"g{i}", f"({prefix}g{i} * {count_expr})"),
            ]
        return out
