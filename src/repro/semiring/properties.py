"""Algebraic property checks (Definition 1 and the semi-ring axioms).

These are used by the hypothesis test-suite, and they also document the
paper's central algebraic argument:

* the **variance** lift is addition-to-multiplication preserving, so rmse
  residual updates factorize (Proposition 4.1);
* the **sign/mae** "semi-ring" is *not* — Σsign(y - p) cannot be derived
  from (Σ1, Σsign(y)) — which is exactly why JoinBoost restricts galaxy
  schemas to rmse.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.semiring.base import Element, SemiRing


def _close(a: Element, b: Element, tol: float = 1e-7) -> bool:
    return len(a) == len(b) and all(
        math.isclose(x, y, rel_tol=tol, abs_tol=tol) for x, y in zip(a, b)
    )


def check_semiring_axioms(
    ring: SemiRing, elements: Iterable[Element], tol: float = 1e-7
) -> List[str]:
    """Check commutative semi-ring axioms over sample elements.

    Returns a list of human-readable violations (empty = all axioms hold
    on the sample).
    """
    elements = list(elements)
    zero, one = ring.zero(), ring.one()
    violations: List[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            violations.append(message)

    for a in elements:
        check(_close(ring.add(a, zero), a, tol), f"a ⊕ 0 != a for {a}")
        check(_close(ring.multiply(a, one), a, tol), f"a ⊗ 1 != a for {a}")
        check(_close(ring.multiply(a, zero), zero, tol), f"a ⊗ 0 != 0 for {a}")
        for b in elements:
            check(
                _close(ring.add(a, b), ring.add(b, a), tol),
                f"⊕ not commutative for {a}, {b}",
            )
            check(
                _close(ring.multiply(a, b), ring.multiply(b, a), tol),
                f"⊗ not commutative for {a}, {b}",
            )
            for c in elements:
                check(
                    _close(
                        ring.add(ring.add(a, b), c),
                        ring.add(a, ring.add(b, c)),
                        tol,
                    ),
                    f"⊕ not associative for {a}, {b}, {c}",
                )
                check(
                    _close(
                        ring.multiply(ring.multiply(a, b), c),
                        ring.multiply(a, ring.multiply(b, c)),
                        tol,
                    ),
                    f"⊗ not associative for {a}, {b}, {c}",
                )
                check(
                    _close(
                        ring.multiply(a, ring.add(b, c)),
                        ring.add(ring.multiply(a, b), ring.multiply(a, c)),
                        tol,
                    ),
                    f"⊗ does not distribute over ⊕ for {a}, {b}, {c}",
                )
    return violations


def is_addition_to_multiplication_preserving(
    ring: SemiRing, values: Iterable[float], tol: float = 1e-7
) -> bool:
    """Definition 1: lift(d1 + d2) == lift(d1) ⊗ lift(d2) on the samples."""
    values = list(values)
    for d1 in values:
        for d2 in values:
            lifted_sum = ring.lift(d1 + d2)
            product = ring.multiply(ring.lift(d1), ring.lift(d2))
            if not _close(lifted_sum, product, tol):
                return False
    return True


class SignSemiRing(SemiRing):
    """The naive (count, Σsign) structure for mae — the paper's
    counterexample.

    Its lift ``y ↦ (1, sign(y))`` is *not* addition-to-multiplication
    preserving: ``sign(a + b)`` is not a function of ``sign(a), sign(b)``
    (e.g. a=3, b=-1 vs a=1, b=-3).  The property checker above returns
    ``False`` for it, which the tests assert — reproducing why JoinBoost
    cannot factorize mae residual updates.
    """

    name = "sign"
    components = ("c", "sgn")

    def zero(self) -> Element:
        return (0.0, 0.0)

    def one(self) -> Element:
        return (1.0, 0.0)

    def multiply(self, a: Element, b: Element) -> Element:
        # Mirror the variance-style rule; no rule can make lift preserving.
        c1, s1 = a
        c2, s2 = b
        return (c1 * c2, s1 * c2 + s2 * c1)

    def lift(self, value) -> Element:
        v = float(value)
        return (1.0, (v > 0) - (v < 0))


def residual_update_matches_relift(
    ring: SemiRing, ys: Iterable[float], pred: float, tol: float = 1e-7
) -> bool:
    """Proposition 4.1 on concrete data: updating the *aggregate* by
    ⊗ lift(-p) equals re-lifting the residuals y - p and re-aggregating."""
    ys = list(ys)
    aggregate = ring.zero()
    for y in ys:
        aggregate = ring.add(aggregate, ring.lift(y))
    updated = ring.multiply(aggregate, ring.lift(-pred))
    relifted = ring.zero()
    for y in ys:
        relifted = ring.add(relifted, ring.lift(y - pred))
    return _close(updated, relifted, tol)
