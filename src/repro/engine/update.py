"""Physical strategies for full-column (residual) updates.

Section 5.3/5.4 of the paper compares four ways to replace the semi-ring
column of the fact table each boosting iteration:

* ``naive``  — materialize the update relation and re-create F = F ⋈ U
  (handled at the logical layer in :mod:`repro.core.residual`; here it maps
  to ``create`` applied to the join result).
* ``update`` — ``UPDATE F SET s = ...`` in place; pays WAL + MVCC +
  (de)compression on the stored column.
* ``create`` — ``CREATE TABLE F_updated AS SELECT ...``; re-copies all k
  extra columns, cost grows with k.
* ``swap``   — compute the new column into a scratch table, then pointer-
  swap it into F (the paper's D-Swap patch / DP dataframe assignment).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import StorageError
from repro.storage.column import Column
from repro.storage.table import ColumnTable, ExternalColumnStore, Table

STRATEGIES = ("update", "create", "swap")


def apply_column_update(
    db,
    table_name: str,
    column_name: str,
    new_values: np.ndarray,
    strategy: str = "update",
) -> None:
    """Replace ``table.column_name`` with ``new_values`` using ``strategy``.

    Dispatches through the connector protocol: any ``db`` exposing
    ``replace_column`` (external backends map every strategy to their own
    physical write) handles it; the embedded strategies below are the
    fallback for a bare catalog-compatible object.
    """
    replace = getattr(db, "replace_column", None)
    if replace is not None:
        replace(table_name, column_name, np.asarray(new_values), strategy)
        return
    embedded_column_update(db, table_name, column_name, new_values, strategy)


def embedded_column_update(
    db,
    table_name: str,
    column_name: str,
    new_values: np.ndarray,
    strategy: str = "update",
) -> None:
    """The embedded engine's physical strategies (Section 5.3/5.4)."""
    table = db.table(table_name)
    if strategy == "update":
        _update_in_place(table, column_name, new_values)
    elif strategy == "create":
        _create_new_table(db, table, column_name, new_values)
    elif strategy == "swap":
        _pointer_swap(db, table, column_name, new_values)
    else:
        raise StorageError(f"unknown update strategy {strategy!r}")


def _update_in_place(table: Table, column_name: str, new_values: np.ndarray) -> None:
    old = table.column(column_name)
    table.set_column(Column(column_name, np.asarray(new_values), old.ctype))


def _create_new_table(db, table: Table, column_name: str, new_values: np.ndarray) -> None:
    """Re-create the table with the new column; all other columns copy."""
    old = table.column(column_name)
    columns = []
    for name in table.column_names():
        if name == column_name:
            columns.append(Column(column_name, np.asarray(new_values), old.ctype))
        else:
            # The copy is the CREATE-k cost the paper measures.
            columns.append(table.column(name).copy())
    rebuilt = Table.from_columns(table.name, columns, table.config,
                                 wal=getattr(db, "_wal", None),
                                 mvcc=getattr(db, "_mvcc", None))
    db.catalog.drop(table.name)
    db.catalog.create(rebuilt)


def _pointer_swap(db, table: Table, column_name: str, new_values: np.ndarray) -> None:
    old = table.column(column_name)
    fresh = Column(column_name, np.asarray(new_values), old.ctype)
    if isinstance(table, ExternalColumnStore):
        # DP mode: a dataframe column assignment is already a pointer store.
        table.set_column(fresh)
        return
    if not isinstance(table, ColumnTable):
        raise StorageError("column swap requires columnar storage")
    scratch_name = db.temp_name("swap")
    scratch = ColumnTable(scratch_name, [fresh], table.config)
    db.catalog.create(scratch)
    try:
        table.swap_column(column_name, scratch, column_name)
    finally:
        db.catalog.drop(scratch_name)


def supported_strategies(table: Table) -> Dict[str, bool]:
    """Which strategies the table's backend supports."""
    swap_ok = isinstance(table, ExternalColumnStore) or (
        isinstance(table, ColumnTable) and table.config.allow_column_swap
    )
    return {"update": True, "create": True, "swap": swap_ok}
