"""Physical strategies for full-column (residual) updates.

Section 5.3/5.4 of the paper compares four ways to replace the semi-ring
column of the fact table each boosting iteration:

* ``naive``  — materialize the update relation and re-create F = F ⋈ U
  (handled at the logical layer in :mod:`repro.core.residual`; here it maps
  to ``create`` applied to the join result).
* ``update`` — ``UPDATE F SET s = ...`` in place; pays WAL + MVCC +
  (de)compression on the stored column.
* ``create`` — ``CREATE TABLE F_updated AS SELECT ...``; re-copies all k
  extra columns, cost grows with k.
* ``swap``   — compute the new column into a scratch table, then pointer-
  swap it into F (the paper's D-Swap patch / DP dataframe assignment).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import StorageError
from repro.storage.column import Column, ColumnType
from repro.storage.table import ColumnTable, ExternalColumnStore, Table

STRATEGIES = ("update", "create", "swap")


def apply_masked_update(
    db,
    table_name: str,
    column_name: str,
    new_values: np.ndarray,
    mask: np.ndarray,
) -> int:
    """Write only the ``mask`` positions of one stored column.

    This is the physical half of the narrow predicated ``UPDATE`` the
    incremental frontier state issues: the logical write touches only the
    rows whose leaf membership changed.  It reuses the column-swap
    permission — a table whose configuration allows pointer swaps has no
    WAL, MVCC or compression to honor, so a masked-merged copy of the
    column is pointer-swapped into the store with no logging, no value
    re-inference and no dtype round-trip.  (The merge is a fresh buffer,
    never a write through the stored array: stored arrays can be
    buffer-aliased with other columns or tables — ``UPDATE t SET a = b``,
    ``CREATE TABLE AS SELECT`` — and an in-place write would corrupt
    every alias.)  Anything else goes through the logged ``set_column``
    slow path, preserving the backend cost model of Section 5.4.
    Returns the rows written.
    """
    table = db.table(table_name)
    mask = np.asarray(mask, dtype=bool)
    count = int(mask.sum())
    old = table.column(column_name)
    new_values = np.asarray(new_values)

    swap_path = (
        count > 0
        and isinstance(table, ColumnTable)
        and table.config.allow_column_swap
        and table.config.compression is None
        and not table.config.wal
        and not table.config.mvcc
        and not table.config.scan_copy
        and isinstance(table._store.get(column_name), Column)
        and old.valid is None
    )
    if swap_path and old.ctype is not ColumnType.STR:
        if old.ctype is ColumnType.INT and new_values.dtype.kind in "iub":
            fresh = old.values.copy()
            fresh[mask] = new_values[mask].astype(np.int64)
            # swap_in bumps the column's version stamp, so encoded-key
            # caches keyed on (uid, name, version) see the mutation.
            table.swap_in(Column(column_name, fresh, old.ctype))
            return count
        if old.ctype is ColumnType.FLOAT:
            as_float = new_values.astype(np.float64, copy=False)
            if not np.isnan(as_float[mask]).any():
                fresh = old.values.copy()
                fresh[mask] = as_float[mask]
                table.swap_in(Column(column_name, fresh, old.ctype))
                return count

    # Merge + full write (logged) — the general path.
    if old.ctype is ColumnType.STR:
        merged = old.values.astype(object, copy=True)
        merged[mask] = new_values[mask]
    elif old.ctype is ColumnType.INT and new_values.dtype.kind in "iub" \
            and old.valid is None:
        merged = old.values.copy()
        merged[mask] = new_values[mask]
    else:
        merged = np.where(mask, new_values.astype(np.float64, copy=False),
                          old.as_float())
    table.set_column(Column(column_name, merged, old.ctype))
    return count


def apply_column_update(
    db,
    table_name: str,
    column_name: str,
    new_values: np.ndarray,
    strategy: str = "update",
) -> None:
    """Replace ``table.column_name`` with ``new_values`` using ``strategy``.

    Dispatches through the connector protocol: any ``db`` exposing
    ``replace_column`` (external backends map every strategy to their own
    physical write) handles it; the embedded strategies below are the
    fallback for a bare catalog-compatible object.
    """
    replace = getattr(db, "replace_column", None)
    if replace is not None:
        replace(table_name, column_name, np.asarray(new_values), strategy)
        return
    embedded_column_update(db, table_name, column_name, new_values, strategy)


def embedded_column_update(
    db,
    table_name: str,
    column_name: str,
    new_values: np.ndarray,
    strategy: str = "update",
) -> None:
    """The embedded engine's physical strategies (Section 5.3/5.4)."""
    table = db.table(table_name)
    if strategy == "update":
        _update_in_place(table, column_name, new_values)
    elif strategy == "create":
        _create_new_table(db, table, column_name, new_values)
    elif strategy == "swap":
        _pointer_swap(db, table, column_name, new_values)
    else:
        raise StorageError(f"unknown update strategy {strategy!r}")


def _update_in_place(table: Table, column_name: str, new_values: np.ndarray) -> None:
    old = table.column(column_name)
    table.set_column(Column(column_name, np.asarray(new_values), old.ctype))


def _create_new_table(db, table: Table, column_name: str, new_values: np.ndarray) -> None:
    """Re-create the table with the new column; all other columns copy."""
    old = table.column(column_name)
    columns = []
    for name in table.column_names():
        if name == column_name:
            columns.append(Column(column_name, np.asarray(new_values), old.ctype))
        else:
            # The copy is the CREATE-k cost the paper measures.
            columns.append(table.column(name).copy())
    rebuilt = Table.from_columns(table.name, columns, table.config,
                                 wal=getattr(db, "_wal", None),
                                 mvcc=getattr(db, "_mvcc", None))
    db.catalog.drop(table.name)
    db.catalog.create(rebuilt)


def _pointer_swap(db, table: Table, column_name: str, new_values: np.ndarray) -> None:
    old = table.column(column_name)
    fresh = Column(column_name, np.asarray(new_values), old.ctype)
    if isinstance(table, ExternalColumnStore):
        # DP mode: a dataframe column assignment is already a pointer store.
        table.set_column(fresh)
        return
    if not isinstance(table, ColumnTable):
        raise StorageError("column swap requires columnar storage")
    scratch_name = db.temp_name("swap")
    scratch = ColumnTable(scratch_name, [fresh], table.config)
    db.catalog.create(scratch)
    try:
        table.swap_column(column_name, scratch, column_name)
    finally:
        db.catalog.drop(scratch_name)


def supported_strategies(table: Table) -> Dict[str, bool]:
    """Which strategies the table's backend supports."""
    swap_ok = isinstance(table, ExternalColumnStore) or (
        isinstance(table, ColumnTable) and table.config.allow_column_swap
    )
    return {"update": True, "create": True, "swap": swap_ok}
