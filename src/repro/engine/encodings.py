"""Version-stamped encoded-key cache (the PR 4 tentpole).

JoinBoost's message passing issues hundreds of near-identical aggregation
queries per tree over the *same* immutable base relations; LMFAO makes the
matching observation that static structure shared by a query batch should
be computed once.  In this engine the repeated static work is *dictionary
encoding*: every GROUP BY key and join key column was re-encoded
(``np.unique`` over the full column) on every query.

:class:`EncodingCache` memoizes :class:`~repro.engine.operators.
ColumnEncoding` objects keyed by ``(table uid, column name, version)``:

* **table uid** — minted at table construction and preserved by catalog
  renames, so entries survive renames and can never be confused across
  tables that reuse a name;
* **version** — the storage layer bumps a per-column monotonic stamp on
  every mutating path (``set_column``, masked updates, column swaps,
  drops; WAL replay and MVCC commits flow through ``set_column``), so
  staleness is *detected*, never assumed.  A lookup that finds an entry
  under an outdated version drops it and reports an invalidation.

Two classes of columns are deliberately not cached:

* columns with no provenance (query-derived arrays) — there is no
  identity to version;
* columns explicitly registered via :meth:`EncodingCache.mark_uncached`
  — the frontier's persistent leaf-membership column on the lifted fact
  (``jb_leaf_s<k>``), which is rewritten by narrow delta UPDATEs on
  every committed split; caching it would only churn the LRU (version
  stamps would keep it correct regardless).  Carried *copies* of the
  label inside immutable message temps remain cacheable.

Derived columns produced by joins and filters carry *lazy* encoding hints
(``("gather", parent, idx)`` / ``("filter", parent, mask)`` tuples on
``Column.enc``): materializing one is an O(n) integer gather of the
parent's cached codes instead of an O(n log n) re-encode of the gathered
values.  The planner attaches these in its merge/filter paths.

The cache is LRU-bounded by bytes and keeps census counters (hits,
misses, stores, invalidations, evictions, bytes) that surface in
``query_census`` and the CI perf gates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.engine.operators import ColumnEncoding, encode_values
from repro.storage.column import Column

#: default cache budget: generous for laptop-scale benches, small enough
#: that a long multi-tree run cannot hoard stale-version entries forever
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

Key = Tuple[int, str]


class EncodingCache:
    """Byte-bounded LRU of column encodings keyed by table identity."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES, enabled: bool = True):
        self.max_bytes = max_bytes
        self.enabled = enabled
        self._entries: "OrderedDict[Key, Tuple[int, ColumnEncoding, int]]" = (
            OrderedDict()
        )
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.evictions = 0
        self._uncached: Set[Key] = set()
        # Scheduler worker threads race get-or-compute on the same key
        # (every relation's fused split query touches the same join-key
        # columns).  The lock makes entry/census bookkeeping atomic, and
        # the per-key in-flight events below give *single-flight*
        # semantics: a racing key computes exactly once (the winner takes
        # the one miss and the one store, waiters block on the event and
        # then hit), while encodes of unrelated keys run concurrently —
        # the expensive encode_values sort happens outside the lock.
        self._lock = threading.RLock()
        self._inflight: Dict[Key, threading.Event] = {}

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def mark_uncached(self, uid: int, name: str) -> None:
        """Exempt one column from caching — the frontier's persistent
        ``jb_leaf`` column on the lifted fact, which is rewritten by two
        narrow UPDATEs per committed split; caching it would only churn
        the LRU (its version stamps keep correctness either way).  Carried
        copies of the label inside immutable message temps stay cacheable."""
        with self._lock:
            self._uncached.add((uid, name))
            self._evict((uid, name))

    def cacheable(self, uid: int, name: str) -> bool:
        return (uid, name) not in self._uncached

    def _evict(self, key: Key, count_invalidation: bool = True) -> bool:
        """Drop one entry, keeping the byte and invalidation census
        consistent (the single place eviction bookkeeping lives)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.bytes -= entry[2]
        if count_invalidation:
            self.invalidations += 1
        return True

    def lookup(self, uid: int, name: str, version: int) -> Optional[ColumnEncoding]:
        with self._lock:
            entry = self._entries.get((uid, name))
            if entry is None:
                self.misses += 1
                return None
            stored_version, encoding, nbytes = entry
            if stored_version < version:
                # Stale entry: the column mutated since this encoding was built.
                self._evict((uid, name))
                self.misses += 1
                return None
            if stored_version > version:
                # Stale *caller*: a column reference stamped before the last
                # mutation.  The entry describes newer data — keep it; evicting
                # here would let old references ping-pong the cache.
                self.misses += 1
                return None
            self._entries.move_to_end((uid, name))
            self.hits += 1
            return encoding

    def store(self, uid: int, name: str, version: int, encoding: ColumnEncoding) -> None:
        nbytes = encoding.nbytes()
        if nbytes > self.max_bytes:
            return
        with self._lock:
            if (uid, name) in self._uncached:
                # mark_uncached is sticky: a compute that was already in
                # flight when the column was exempted must not re-seed
                # the entry it just evicted.
                return
            old = self._entries.get((uid, name))
            if old is not None:
                if old[0] > version:
                    return  # never clobber newer data with an older stamp
                self._evict((uid, name), count_invalidation=False)
            self._entries[(uid, name)] = (version, encoding, nbytes)
            self.bytes += nbytes
            self.stores += 1
            while self.bytes > self.max_bytes and self._entries:
                _, (_, _, dropped) = self._entries.popitem(last=False)
                self.bytes -= dropped
                self.evictions += 1

    # ------------------------------------------------------------------
    # Column-level entry points (what the planner calls)
    # ------------------------------------------------------------------
    def encoding_for(self, col: Column) -> Optional[ColumnEncoding]:
        """The encoding of ``col``, from cache when possible.

        Resolution order: an attached encoding (or lazy gather/filter
        hint), then the provenance-keyed cache, then a fresh encode that
        is stored when the column has cacheable provenance.  Returns
        ``None`` when the cache is disabled or the column is opaque —
        callers fall back to the legacy per-query encode, so behavior
        (and the encode census) matches the pre-cache engine exactly.
        """
        if not self.enabled:
            return None
        hint = col.enc
        if isinstance(hint, ColumnEncoding):
            return hint
        if isinstance(hint, tuple):
            materialized = self._materialize(hint)
            col.enc = materialized  # memoize (None poisons nothing: retry is cheap)
            return materialized
        source = col.source
        if source is None:
            return None
        uid, name, version = source
        if not self.cacheable(uid, name):
            return None
        # Single-flight get-or-compute: N threads racing the same
        # (uid, column, version) produce exactly one encode pass and one
        # store — waiters block on the winner's in-flight event, then
        # loop back and hit its entry.  The encode itself runs outside
        # the lock, so unrelated keys compute concurrently.
        key = (uid, name)
        while True:
            with self._lock:
                event = self._inflight.get(key)
                if event is None:
                    cached = self.lookup(uid, name, version)
                    if cached is not None:
                        if len(cached.codes) != len(col):
                            # Defensive: a version collision across
                            # differently sized payloads can only mean
                            # provenance misuse — evict it so the dead
                            # entry cannot re-hit (and re-count) forever.
                            self._evict(key)
                            return None
                        col.enc = cached
                        return cached
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            event.wait()
        try:
            encoding = encode_values(col.values, col.valid)
            self.store(uid, name, version, encoding)
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()
        col.enc = encoding
        return encoding

    def _materialize(self, hint: tuple) -> Optional[ColumnEncoding]:
        kind, parent, index = hint
        parent_encoding = self.encoding_for(parent)
        if parent_encoding is None:
            return None
        if kind == "gather":
            return parent_encoding.take(index)
        if kind == "filter":
            return parent_encoding.filter(index)
        return None

    # ------------------------------------------------------------------
    # Lazy hints (attached by the planner's merge/filter paths)
    # ------------------------------------------------------------------
    def attach_gather(self, out: Column, parent: Column, indexes: np.ndarray) -> None:
        """Mark ``out`` as ``parent`` gathered by non-negative positions;
        its codes become a cheap int gather of the parent's codes."""
        if not self.enabled or out.enc is not None:
            return
        if isinstance(parent.enc, (ColumnEncoding, tuple)) or parent.source is not None:
            out.enc = ("gather", parent, indexes)

    def attach_filter(self, out: Column, parent: Column, mask: np.ndarray) -> None:
        if not self.enabled or out.enc is not None:
            return
        if isinstance(parent.enc, (ColumnEncoding, tuple)) or parent.source is not None:
            out.enc = ("filter", parent, mask)

    # ------------------------------------------------------------------
    # Invalidation / stats
    # ------------------------------------------------------------------
    def invalidate_table(self, uid: int) -> int:
        """Drop every entry of one table (e.g. on DROP TABLE)."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == uid]
            for key in doomed:
                self._evict(key)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.bytes = 0
            return count

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "enabled": int(self.enabled),
            "entries": len(self._entries),
            "bytes": int(self.bytes),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }
