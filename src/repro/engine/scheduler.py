"""Inter-query parallelism: the dependency-DAG scheduler of Section 5.5.3.

JoinBoost parallelizes *across* queries — trees, leaf nodes, candidate
splits and messages — subject to their dependencies: a message depends on
its upstream messages, absorption on incoming messages, child nodes on the
parent's split, boosting iterations on preceding trees.

Each query tracks its dependents; when it finishes it decrements their
ready counts, and fully-ready queries enter a FIFO run queue consumed by a
worker pool (the paper uses 4 threads intra-query and the rest inter-query).

The scheduler is the *execution* engine behind training's ``num_workers``
parameter: the frontier evaluator submits each relation's message builds
and fused split query as a two-node chain, and random forests submit whole
trees.  ``num_workers=1`` runs the DAG inline on the calling thread (no
threads are spawned — byte-identical to the historical serial loop);
``num_workers > 1`` runs a thread pool whose real wall clock
:class:`ScheduleReport` records next to the *modelled* list-scheduling
makespan — critical-path length vs. sequential sum — so Figure 18 can show
measured seconds beside the model.

Execution semantics both paths share:

* a query that raises has its error recorded; every transitive dependent
  is *skipped* (its callable never runs);
* all queries without a failed ancestor still execute;
* :meth:`QueryScheduler.run` then raises the failed query with the lowest
  id (deterministic regardless of worker count), or returns the report.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.procpool import (
    ProcPoolCensus,
    SupervisedProcessPool,
    WorkerTask,
    default_task_deadline,
    get_shared_pool,
)
from repro.engine.retry import RetryCensus, RetryPolicy, call_with_retry

#: hard ceiling on the pool size — beyond this, thread switch overhead
#: dwarfs any overlap a DBMS connection can deliver
MAX_WORKERS = 64

#: the executor axes ``num_workers`` parallelism can run on
EXECUTORS = ("thread", "process")


@dataclasses.dataclass
class ScheduledQuery:
    """A unit of work with dependencies on other scheduled queries."""

    query_id: int
    fn: Callable[[], object]
    label: str = ""
    deps: Sequence[int] = ()
    #: optional process-task spec: a callable resolved at dispatch time
    #: returning a serialized payload dict (see
    #: :func:`repro.engine.procpool.execute_task_payload`) or ``None``
    #: to decline — in which case ``fn`` runs inline as usual
    spec: Optional[Callable[[], Optional[dict]]] = None
    # Filled in by the scheduler:
    seconds: float = 0.0
    #: start offset from the run's wall-clock origin (overlap accounting)
    started: float = 0.0
    result: object = None
    error: Optional[BaseException] = None
    #: True when an upstream query failed and this one never ran
    skipped: bool = False
    #: how many times the callable actually ran (>1 after transient retries)
    attempts: int = 1
    #: process executor: re-dispatches after a worker crash/stall
    redispatches: int = 0
    #: process executor: the task hit its per-task deadline at least once
    timed_out: bool = False


class QueryScheduler:
    """FIFO ready-queue scheduler over a dependency DAG.

    When ``retry_policy`` is set, each query's callable is retried on
    :class:`~repro.exceptions.TransientBackendError` per the policy
    *before* the record-error-and-skip-dependents behavior engages —
    on the serial and threaded paths alike, since both go through
    :meth:`_execute`.  A query that still fails records its *final*
    attempt's exception with ``attempts`` attached.
    """

    def __init__(
        self,
        num_workers: int = 4,
        retry_policy: Optional[RetryPolicy] = None,
        retry_census: Optional[RetryCensus] = None,
        executor: str = "thread",
        pool: Optional[SupervisedProcessPool] = None,
        pool_census: Optional[ProcPoolCensus] = None,
        task_deadline: Optional[float] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.num_workers = max(1, min(int(num_workers), MAX_WORKERS))
        self.retry_policy = retry_policy
        self.retry_census = retry_census
        self.executor = executor
        self._pool = pool
        self._pool_census = pool_census
        self._task_deadline = task_deadline
        self._queries: Dict[int, ScheduledQuery] = {}
        self._next_id = 0

    def submit(
        self,
        fn: Callable[[], object],
        deps: Sequence[int] = (),
        label: str = "",
        spec: Optional[Callable[[], Optional[dict]]] = None,
    ) -> int:
        """Register a query; returns its id for use as a dependency.

        ``spec`` (optional) makes the query eligible for the process
        executor: it is resolved at dispatch time and must return a
        serialized task payload dict — or ``None`` to decline, in which
        case ``fn`` runs inline.  On the thread executor ``spec`` is
        ignored entirely.
        """
        for dep in deps:
            if dep not in self._queries:
                raise ValueError(f"unknown dependency {dep}")
        query_id = self._next_id
        self._next_id += 1
        self._queries[query_id] = ScheduledQuery(
            query_id=query_id, fn=fn, label=label, deps=tuple(deps), spec=spec
        )
        return query_id

    def result_of(self, query_id: int) -> object:
        """The recorded result of a finished query (for consumer nodes)."""
        return self._queries[query_id].result

    # ------------------------------------------------------------------
    def _execute(self, q: ScheduledQuery, wall_start: float) -> None:
        """Run one ready query (deps all finished) or mark it skipped."""
        if any(
            self._queries[d].error is not None or self._queries[d].skipped
            for d in q.deps
        ):
            q.skipped = True
            return
        q.started = time.perf_counter() - wall_start
        start = time.perf_counter()
        try:
            if self.retry_policy is not None:
                attempts = [0]

                def attempt_once(q: "ScheduledQuery" = q) -> object:
                    attempts[0] += 1
                    q.attempts = attempts[0]
                    return q.fn()

                q.result = call_with_retry(
                    attempt_once, self.retry_policy, self.retry_census
                )
            else:
                q.result = q.fn()
        except BaseException as exc:  # recorded, surfaced after the run
            q.error = exc
        q.seconds = time.perf_counter() - start

    def _dag(self) -> "tuple[Dict[int, int], Dict[int, List[int]]]":
        pending: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {qid: [] for qid in self._queries}
        for qid, q in self._queries.items():
            pending[qid] = len(q.deps)
            for dep in q.deps:
                dependents[dep].append(qid)
        return pending, dependents

    def _finish(self) -> "ScheduleReport":
        failed = [q for q in self._queries.values() if q.error is not None]
        if failed:
            raise min(failed, key=lambda q: q.query_id).error  # type: ignore[misc]
        return ScheduleReport(
            list(self._queries.values()),
            max((q.started + q.seconds for q in self._queries.values()), default=0.0),
            self.num_workers,
            executor=self.executor,
        )

    def _run_serial(self) -> "ScheduleReport":
        """Inline execution on the calling thread — the num_workers=1
        path spawns no threads, so it is byte-identical to a plain loop
        over the queries in dependency (FIFO-ready) order."""
        pending, dependents = self._dag()
        ready: List[int] = [qid for qid, count in pending.items() if count == 0]
        wall_start = time.perf_counter()
        cursor = 0
        while cursor < len(ready):
            qid = ready[cursor]
            cursor += 1
            self._execute(self._queries[qid], wall_start)
            for child in dependents[qid]:
                pending[child] -= 1
                if pending[child] == 0:
                    ready.append(child)
        return self._finish()

    def _run_process(self) -> "ScheduleReport":
        """Wave scheduling over the supervised process pool.

        Ready queries are processed in waves: spec-less queries (and
        queries whose spec declines by returning ``None``) run inline on
        the calling thread in query-id order; the wave's remaining
        specs are serialized and dispatched to the pool as one batch,
        whose outcomes are merged back *by query id* — never by
        completion order — before the next wave unlocks.  Skip/error
        semantics are identical to the serial path, so digests are too.
        """
        pool = self._pool if self._pool is not None else get_shared_pool(
            self.num_workers
        )
        pending, dependents = self._dag()
        wave: List[int] = sorted(
            qid for qid, count in pending.items() if count == 0
        )
        wall_start = time.perf_counter()

        def unlock(qid: int, next_wave: List[int]) -> None:
            for child in dependents[qid]:
                pending[child] -= 1
                if pending[child] == 0:
                    next_wave.append(child)

        while wave:
            next_wave: List[int] = []
            pooled: List[WorkerTask] = []
            for qid in wave:
                q = self._queries[qid]
                if any(
                    self._queries[d].error is not None or self._queries[d].skipped
                    for d in q.deps
                ):
                    q.skipped = True
                    unlock(qid, next_wave)
                    continue
                payload = q.spec() if q.spec is not None else None
                if payload is None:
                    self._execute(q, wall_start)
                    unlock(qid, next_wave)
                    continue
                chaos = payload.pop("chaos", None)
                q.started = time.perf_counter() - wall_start
                pooled.append(WorkerTask(
                    task_id=qid,
                    payload=payload,
                    tag=q.label,
                    chaos=chaos if isinstance(chaos, str) else None,
                ))
            if pooled:
                # Resolve the deadline per run, not per pool: the shared
                # pool outlives schedulers, and JOINBOOST_TASK_DEADLINE
                # must apply to runs started after it was set.
                deadline = (
                    self._task_deadline
                    if self._task_deadline is not None
                    else default_task_deadline()
                )
                outcomes = pool.run(
                    pooled,
                    census=self._pool_census,
                    deadline_s=deadline,
                )
                for outcome in outcomes:
                    q = self._queries[outcome.task_id]
                    q.result = outcome.result
                    q.error = outcome.error
                    q.attempts = max(1, outcome.attempts)
                    q.redispatches = outcome.redispatches
                    q.timed_out = outcome.timed_out
                    q.seconds = outcome.seconds
                    unlock(outcome.task_id, next_wave)
            wave = sorted(next_wave)
        return self._finish()

    def run(self) -> "ScheduleReport":
        """Execute all queries respecting dependencies; returns a report."""
        if self.executor == "process" and any(
            q.spec is not None for q in self._queries.values()
        ):
            return self._run_process()
        if self.num_workers == 1 or len(self._queries) <= 1:
            return self._run_serial()
        pending, dependents = self._dag()

        ready: "queue.Queue[Optional[int]]" = queue.Queue()
        for qid, count in pending.items():
            if count == 0:
                ready.put(qid)

        lock = threading.Lock()
        remaining = len(self._queries)
        done = threading.Event()
        if remaining == 0:
            done.set()
        wall_start = time.perf_counter()

        def worker() -> None:
            nonlocal remaining
            while True:
                qid = ready.get()
                if qid is None:
                    return
                self._execute(self._queries[qid], wall_start)
                with lock:
                    remaining -= 1
                    for child in dependents[qid]:
                        pending[child] -= 1
                        if pending[child] == 0:
                            ready.put(child)
                    if remaining == 0:
                        done.set()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(min(self.num_workers, len(self._queries)))
        ]
        for t in threads:
            t.start()
        done.wait()
        for _ in threads:
            ready.put(None)
        for t in threads:
            t.join()
        return self._finish()


class ScheduleReport:
    """Execution statistics: wall clock, sequential sum, critical path.

    Besides the aggregate counters, the report names *which* query did
    what: :meth:`query_outcomes` gives one record per scheduled query
    (attempts, retried, exhausted, timed out, re-dispatched), and
    :attr:`exhausted_queries` / :attr:`timed_out_queries` list the
    labels of the queries behind the matching aggregate counts — a
    chaos run that exhausts one query's budget is attributable from the
    report alone, without digging through logs.
    """

    def __init__(
        self,
        queries: List[ScheduledQuery],
        wall_seconds: float,
        workers: int,
        executor: str = "thread",
    ):
        self.queries = queries
        self.wall_seconds = wall_seconds
        self.workers = workers
        self.executor = executor

    @property
    def sequential_seconds(self) -> float:
        """Time a one-query-at-a-time engine would need (the w/o bar)."""
        return sum(q.seconds for q in self.queries)

    @property
    def overlap_seconds(self) -> float:
        """Measured concurrency: query-seconds that ran while another
        query was also running (0 on a serial schedule)."""
        return max(0.0, self.sequential_seconds - self.wall_seconds)

    @property
    def skipped(self) -> int:
        return sum(1 for q in self.queries if q.skipped)

    @property
    def retries(self) -> int:
        """Total extra attempts spent recovering from transient faults."""
        return sum(max(0, q.attempts - 1) for q in self.queries)

    @property
    def exhausted(self) -> int:
        """Queries that failed even after their retry budget."""
        return sum(
            1 for q in self.queries if q.error is not None and q.attempts > 1
        )

    @property
    def redispatched(self) -> int:
        """Tasks re-dispatched after a worker crash/stall (process path)."""
        return sum(q.redispatches for q in self.queries)

    @property
    def timed_out(self) -> int:
        """Queries whose worker hit the per-task deadline at least once."""
        return sum(1 for q in self.queries if q.timed_out)

    def _describe(self, q: ScheduledQuery) -> str:
        return q.label or f"query {q.query_id}"

    @property
    def exhausted_queries(self) -> List[str]:
        """Labels of the queries that failed after spending retries."""
        return [
            self._describe(q)
            for q in self.queries
            if q.error is not None and q.attempts > 1
        ]

    @property
    def timed_out_queries(self) -> List[str]:
        """Labels of the queries that hit their per-task deadline."""
        return [self._describe(q) for q in self.queries if q.timed_out]

    def query_outcomes(self) -> List[Dict[str, object]]:
        """Per-query outcome records, in query-id order.

        Each record carries ``query_id``, ``label``, a ``status`` of
        ``"ok"`` / ``"error"`` / ``"skipped"``, the attempt counters
        (``attempts``, ``retried``, ``exhausted``), the process-executor
        supervision fields (``timed_out``, ``redispatches``) and the
        final error's type name (or ``None``) — the record a test or an
        operator needs to say *which* scheduled query misbehaved.
        """
        records: List[Dict[str, object]] = []
        for q in sorted(self.queries, key=lambda x: x.query_id):
            if q.skipped:
                status = "skipped"
            elif q.error is not None:
                status = "error"
            else:
                status = "ok"
            records.append({
                "query_id": q.query_id,
                "label": q.label,
                "status": status,
                "attempts": q.attempts,
                "retried": q.attempts > 1,
                "exhausted": q.error is not None and q.attempts > 1,
                "timed_out": q.timed_out,
                "redispatches": q.redispatches,
                "error": type(q.error).__name__ if q.error is not None else None,
            })
        return records

    @property
    def critical_path_seconds(self) -> float:
        """Longest dependency chain — the lower bound with infinite workers."""
        finish: Dict[int, float] = {}

        def resolve(qid: int) -> float:
            if qid in finish:
                return finish[qid]
            q = next(x for x in self.queries if x.query_id == qid)
            start = max((resolve(d) for d in q.deps), default=0.0)
            finish[qid] = start + q.seconds
            return finish[qid]

        return max((resolve(q.query_id) for q in self.queries), default=0.0)

    def modelled_parallel_seconds(self) -> float:
        """List-scheduling bound with `workers` workers:
        max(critical path, total work / workers)."""
        return max(
            self.critical_path_seconds, self.sequential_seconds / max(1, self.workers)
        )

    def modelled_speedup(self) -> float:
        parallel = self.modelled_parallel_seconds()
        if parallel <= 0:
            return 1.0
        return self.sequential_seconds / parallel

    def results(self) -> List[object]:
        return [q.result for q in self.queries]
