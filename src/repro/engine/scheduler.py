"""Inter-query parallelism: the dependency-DAG scheduler of Section 5.5.3.

JoinBoost parallelizes *across* queries — trees, leaf nodes, candidate
splits and messages — subject to their dependencies: a message depends on
its upstream messages, absorption on incoming messages, child nodes on the
parent's split, boosting iterations on preceding trees.

Each query tracks its dependents; when it finishes it decrements their
ready counts, and fully-ready queries enter a FIFO run queue consumed by a
worker pool (the paper uses 4 threads intra-query and the rest inter-query).

Because CPython's GIL hides most wall-clock gain for in-process NumPy work,
:meth:`QueryScheduler.run` also computes the *modelled* schedule makespan —
critical-path length vs. sequential sum — which is the deterministic
quantity Figure 18 reports in this reproduction (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence


@dataclasses.dataclass
class ScheduledQuery:
    """A unit of work with dependencies on other scheduled queries."""

    query_id: int
    fn: Callable[[], object]
    label: str = ""
    deps: Sequence[int] = ()
    # Filled in by the scheduler:
    seconds: float = 0.0
    result: object = None
    error: Optional[BaseException] = None


class QueryScheduler:
    """FIFO ready-queue scheduler over a dependency DAG."""

    def __init__(self, num_workers: int = 4):
        self.num_workers = max(1, num_workers)
        self._queries: Dict[int, ScheduledQuery] = {}
        self._next_id = 0

    def submit(
        self,
        fn: Callable[[], object],
        deps: Sequence[int] = (),
        label: str = "",
    ) -> int:
        """Register a query; returns its id for use as a dependency."""
        for dep in deps:
            if dep not in self._queries:
                raise ValueError(f"unknown dependency {dep}")
        query_id = self._next_id
        self._next_id += 1
        self._queries[query_id] = ScheduledQuery(
            query_id=query_id, fn=fn, label=label, deps=tuple(deps)
        )
        return query_id

    def run(self) -> "ScheduleReport":
        """Execute all queries respecting dependencies; returns a report."""
        pending: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {qid: [] for qid in self._queries}
        for qid, q in self._queries.items():
            pending[qid] = len(q.deps)
            for dep in q.deps:
                dependents[dep].append(qid)

        ready: "queue.Queue[Optional[int]]" = queue.Queue()
        for qid, count in pending.items():
            if count == 0:
                ready.put(qid)

        lock = threading.Lock()
        remaining = len(self._queries)
        done = threading.Event()
        if remaining == 0:
            done.set()

        def worker() -> None:
            nonlocal remaining
            while True:
                qid = ready.get()
                if qid is None:
                    return
                q = self._queries[qid]
                start = time.perf_counter()
                try:
                    q.result = q.fn()
                except BaseException as exc:  # recorded, surfaced in report
                    q.error = exc
                q.seconds = time.perf_counter() - start
                with lock:
                    remaining -= 1
                    for child in dependents[qid]:
                        pending[child] -= 1
                        if pending[child] == 0:
                            ready.put(child)
                    if remaining == 0:
                        done.set()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        wall_start = time.perf_counter()
        for t in threads:
            t.start()
        done.wait()
        for _ in threads:
            ready.put(None)
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start

        first_error = next(
            (q.error for q in self._queries.values() if q.error is not None), None
        )
        if first_error is not None:
            raise first_error
        return ScheduleReport(list(self._queries.values()), wall, self.num_workers)


class ScheduleReport:
    """Execution statistics: wall clock, sequential sum, critical path."""

    def __init__(self, queries: List[ScheduledQuery], wall_seconds: float, workers: int):
        self.queries = queries
        self.wall_seconds = wall_seconds
        self.workers = workers

    @property
    def sequential_seconds(self) -> float:
        """Time a one-query-at-a-time engine would need (the w/o bar)."""
        return sum(q.seconds for q in self.queries)

    @property
    def critical_path_seconds(self) -> float:
        """Longest dependency chain — the lower bound with infinite workers."""
        finish: Dict[int, float] = {}

        def resolve(qid: int) -> float:
            if qid in finish:
                return finish[qid]
            q = next(x for x in self.queries if x.query_id == qid)
            start = max((resolve(d) for d in q.deps), default=0.0)
            finish[qid] = start + q.seconds
            return finish[qid]

        return max((resolve(q.query_id) for q in self.queries), default=0.0)

    def modelled_parallel_seconds(self) -> float:
        """List-scheduling bound with `workers` workers:
        max(critical path, total work / workers)."""
        return max(
            self.critical_path_seconds, self.sequential_seconds / max(1, self.workers)
        )

    def modelled_speedup(self) -> float:
        parallel = self.modelled_parallel_seconds()
        if parallel <= 0:
            return 1.0
        return self.sequential_seconds / parallel

    def results(self) -> List[object]:
        return [q.result for q in self.queries]
