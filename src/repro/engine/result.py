"""Query results: an ordered, immutable bag of named columns."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ExecutionError
from repro.storage.column import Column


class Relation:
    """The output of a query: ordered columns of equal length."""

    def __init__(self, columns: Sequence[Column]):
        self._columns = list(columns)
        if self._columns:
            n = len(self._columns[0])
            for col in self._columns:
                if len(col) != n:
                    raise ExecutionError("relation columns must have equal length")

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._columns]

    @property
    def num_rows(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self.num_rows

    def columns(self) -> List[Column]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        wanted = name.lower()
        for col in self._columns:
            if col.name.lower() == wanted:
                return col
        raise ExecutionError(f"result has no column {name!r}")

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name).values

    def to_dict(self) -> Dict[str, np.ndarray]:
        return {c.name: c.values for c in self._columns}

    def rows(self) -> Iterator[Tuple]:
        arrays = [c.values for c in self._columns]
        masks = [c.is_null() for c in self._columns]
        for i in range(self.num_rows):
            yield tuple(
                None if masks[j][i] else arrays[j][i] for j in range(len(arrays))
            )

    def scalar(self):
        """The single value of a 1x1 result."""
        if self.num_rows != 1 or self.num_columns != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {self.num_rows}x{self.num_columns}"
            )
        col = self._columns[0]
        if col.is_null()[0]:
            return None
        return col.values[0]

    def first_row(self) -> Dict[str, object]:
        """The first row as a name -> value dict (None for nulls)."""
        if self.num_rows == 0:
            raise ExecutionError("relation is empty")
        return {
            col.name: (None if col.is_null()[0] else col.values[0])
            for col in self._columns
        }

    def __repr__(self) -> str:
        return f"Relation({self.names}, rows={self.num_rows})"
