"""Vectorized physical operators: factorize, hash join, group-by, windows.

All operators work on NumPy arrays and treat NaN (numeric) / ``None``
(object) as SQL NULL: null join keys never match, nulls form a single
group in GROUP BY, and aggregates skip nulls.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ExecutionError

_NULL_SENTINEL = "\x00__null__"

# ---------------------------------------------------------------------------
# Encode census: every full pass over a key/grouping column is counted here
# (the Figure 9 "encode vs aggregate" split and the PR 4 CI gate read it).
# The encoding cache exists to make these numbers drop: a cached lookup
# performs no pass and leaves the census untouched.
# ---------------------------------------------------------------------------
_ENCODE_CENSUS = {"passes": 0, "rows": 0, "seconds": 0.0}


def encode_census() -> Dict[str, float]:
    """A snapshot of the process-wide encode counters."""
    return dict(_ENCODE_CENSUS)


def reset_encode_census() -> None:
    _ENCODE_CENSUS["passes"] = 0
    _ENCODE_CENSUS["rows"] = 0
    _ENCODE_CENSUS["seconds"] = 0.0


def _count_pass(rows: int, seconds: float) -> None:
    _ENCODE_CENSUS["passes"] += 1
    _ENCODE_CENSUS["rows"] += int(rows)
    _ENCODE_CENSUS["seconds"] += seconds


def _object_nulls(values: np.ndarray) -> np.ndarray:
    """Vectorized None detection for object columns (no Python loop)."""
    if not len(values):
        return np.zeros(0, dtype=bool)
    # Elementwise equality against the None singleton; ~2x faster than a
    # list comprehension and allocation-free on the hot path.
    return np.asarray(values == None, dtype=bool)  # noqa: E711


def _normalize_key(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return (comparable array, null mask) for a key/grouping column."""
    start = time.perf_counter()
    if values.dtype == object:
        nulls = _object_nulls(values)
        if nulls.any():
            values = values.copy()
            values[nulls] = _NULL_SENTINEL
        # Size the unicode dtype from the data: a fixed-width cast (the
        # old "U64") silently truncates longer keys, merging distinct
        # join keys and groups that only differ past the cutoff.
        out = values.astype("U") if len(values) else values
        _count_pass(len(values), time.perf_counter() - start)
        return out, nulls
    if values.dtype.kind == "f":
        nulls = np.isnan(values)
        if nulls.any():
            values = np.where(nulls, 0.0, values)
        _count_pass(len(values), time.perf_counter() - start)
        return values, nulls
    _count_pass(len(values), time.perf_counter() - start)
    return values, np.zeros(len(values), dtype=bool)


class ColumnEncoding:
    """A dictionary-encoded view of one column.

    ``codes`` maps each row into ``[0, cardinality)``, value-ordered with
    the null group (when ``has_null``) coded last; ``uniques`` is the
    sorted non-null dictionary in comparable dtype (unicode for strings,
    int64/float64 for numbers).  ``group_index`` is the lazily built
    hash-join-side structure: row positions grouped by code plus per-code
    bucket offsets, so a cached join side skips its per-query sort.
    """

    __slots__ = ("codes", "cardinality", "null_mask", "uniques", "has_null",
                 "group_index")

    def __init__(
        self,
        codes: np.ndarray,
        cardinality: int,
        null_mask: Optional[np.ndarray],
        uniques: np.ndarray,
        has_null: bool,
    ):
        self.codes = codes
        self.cardinality = cardinality
        self.null_mask = null_mask
        self.uniques = uniques
        self.has_null = has_null
        self.group_index: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self.codes)

    def nulls(self) -> np.ndarray:
        if self.null_mask is None:
            return np.zeros(len(self.codes), dtype=bool)
        return self.null_mask

    def nbytes(self) -> int:
        total = int(self.codes.nbytes)
        if self.null_mask is not None:
            total += int(self.null_mask.nbytes)
        if self.uniques.dtype == object:
            total += sum(len(str(v)) for v in self.uniques) + 8 * len(self.uniques)
        else:
            total += int(self.uniques.nbytes)
        # The grouped row index is built lazily, after any cache accounted
        # this encoding's size — charge for it up front so a byte-bounded
        # LRU never silently exceeds its budget when the index appears.
        total += 8 * len(self.codes) + 16 * self.cardinality
        return total

    def ensure_group_index(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(order, starts, counts): row positions grouped by code."""
        if self.group_index is None:
            order = np.argsort(self.codes, kind="stable")
            counts = np.bincount(self.codes, minlength=self.cardinality)
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            self.group_index = (order, starts.astype(np.int64), counts.astype(np.int64))
        return self.group_index

    def take(self, indexes: np.ndarray) -> "ColumnEncoding":
        """Gather rows by (non-negative) position: an O(n) int gather in
        place of a full re-encode of the gathered values."""
        null_mask = self.null_mask[indexes] if self.null_mask is not None else None
        return ColumnEncoding(
            self.codes[indexes], self.cardinality, null_mask,
            self.uniques, self.has_null,
        )

    def filter(self, mask: np.ndarray) -> "ColumnEncoding":
        null_mask = self.null_mask[mask] if self.null_mask is not None else None
        return ColumnEncoding(
            self.codes[mask], self.cardinality, null_mask,
            self.uniques, self.has_null,
        )

    def triple(self) -> Tuple[np.ndarray, int, np.ndarray]:
        """The (codes, cardinality, null mask) shape ``factorize`` folds."""
        return self.codes, self.cardinality, self.nulls()


def encode_values(
    values: np.ndarray, valid: Optional[np.ndarray] = None
) -> ColumnEncoding:
    """One full dictionary-encode pass over a column (census-counted).

    Unlike the historical sentinel trick, nulls are excluded from the
    dictionary entirely — ``uniques`` holds only real values — so two
    independently encoded columns can be joined by merging dictionaries.
    Group semantics are unchanged: codes are value-ordered and the null
    group, when present, is coded last.
    """
    start = time.perf_counter()
    values = np.asarray(values)
    n = len(values)
    if values.dtype == object:
        nulls = _object_nulls(values)
    elif values.dtype.kind == "f":
        nulls = np.isnan(values)
    else:
        nulls = np.zeros(n, dtype=bool)
    if valid is not None:
        nulls = nulls | ~np.asarray(valid, dtype=bool)
    has_null = bool(nulls.any())

    if values.dtype.kind in ("i", "u", "b") and n:
        comparable = values.astype(np.int64, copy=False)
        work = comparable[~nulls] if has_null else comparable
        if len(work):
            lo = int(work.min())
            hi = int(work.max())
            span = hi - lo + 1
            if 0 < span <= max(4 * n, 65_536):
                shifted = np.where(nulls, lo, comparable) - lo if has_null \
                    else comparable - lo
                present = np.zeros(span, dtype=bool)
                present[shifted[~nulls] if has_null else shifted] = True
                unique_offsets = np.flatnonzero(present)
                lookup = np.empty(span, dtype=np.int64)
                lookup[unique_offsets] = np.arange(len(unique_offsets))
                codes = lookup[shifted]
                card = len(unique_offsets)
                uniques = unique_offsets + lo
                if has_null:
                    codes[nulls] = card
                    card += 1
                _count_pass(n, time.perf_counter() - start)
                return ColumnEncoding(
                    codes, max(card, 1), nulls if has_null else None,
                    uniques, has_null,
                )

    if values.dtype == object:
        work_values = values[~nulls] if has_null else values
        comparable = work_values.astype("U") if len(work_values) else \
            np.zeros(0, dtype="U1")
    elif values.dtype.kind in ("i", "u", "b"):
        comparable = values.astype(np.int64, copy=False)
        if has_null:
            comparable = comparable[~nulls]
    else:
        comparable = values[~nulls] if has_null else values
    uniques, inverse = np.unique(comparable, return_inverse=True)
    inverse = inverse.reshape(len(comparable)).astype(np.int64)
    card = len(uniques)
    if has_null:
        codes = np.empty(n, dtype=np.int64)
        codes[~nulls] = inverse
        codes[nulls] = card
        card += 1
    else:
        codes = inverse
    _count_pass(n, time.perf_counter() - start)
    return ColumnEncoding(
        codes, max(card, 1), nulls if has_null else None, uniques, has_null
    )


def _column_codes(values: np.ndarray) -> Tuple[np.ndarray, int, np.ndarray]:
    """Per-column dense codes: (codes, cardinality, null mask).

    Small-range integer keys (dictionary-encoded dimensions, the common
    case in star schemas) take a bincount-style O(n) path; everything else
    falls back to ``np.unique``'s sort.  Codes are ordered by value either
    way, with nulls coded last.
    """
    return encode_values(np.asarray(values)).triple()


def _dense_codes(combined: np.ndarray, radix: int) -> Tuple[np.ndarray, int, np.ndarray]:
    """Densify combined codes: (dense codes, num groups, first index)."""
    n = len(combined)
    if n == 0:
        return combined, 0, np.zeros(0, dtype=np.int64)
    if radix <= max(4 * n, 65_536):
        present = np.zeros(radix, dtype=bool)
        present[combined] = True
        uniques = np.flatnonzero(present)
        lookup = np.empty(radix, dtype=np.int64)
        lookup[uniques] = np.arange(len(uniques))
        codes = lookup[combined]
        first = np.full(len(uniques), n, dtype=np.int64)
        np.minimum.at(first, codes, np.arange(n))
        return codes, len(uniques), first
    uniques, first, codes = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return codes.reshape(n).astype(np.int64), len(uniques), first


def factorize(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """Dense-code composite keys.

    Returns ``(codes, num_groups, first_index, null_mask)`` where ``codes``
    maps each row to ``[0, num_groups)``, ``first_index[g]`` is a
    representative row of group ``g``, and ``null_mask`` marks rows whose
    key contains a null (they still receive a code; join callers exclude
    them, GROUP BY callers keep them as one group per the sentinel).
    """
    if not arrays:
        raise ExecutionError("factorize needs at least one key")
    return factorize_parts([_column_codes(values) for values in arrays])


def factorize_parts(
    parts: Sequence[Tuple[np.ndarray, int, np.ndarray]],
) -> Tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """:func:`factorize` over pre-encoded (codes, cardinality, null mask)
    triples — the entry point for cached encodings, which skip the
    per-column encode passes entirely."""
    if not parts:
        raise ExecutionError("factorize needs at least one key")
    n = len(parts[0][0])
    any_null = np.zeros(n, dtype=bool)
    radix = 1
    combined = np.zeros(n, dtype=np.int64)
    for codes, card, nulls in parts:
        any_null |= nulls
        combined = combined * card + codes
        radix *= card
        if radix > 2**62:
            # Re-densify to avoid overflow on very wide keys.
            combined, groups, _ = _dense_codes(combined, radix)
            radix = max(groups, 1)
    codes, num_groups, first_index = _dense_codes(combined, radix)
    return codes, num_groups, first_index, any_null


def _merge_dictionaries(
    left_enc: ColumnEncoding, right_enc: ColumnEncoding
) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """Merge two column dictionaries into one shared code space.

    Returns ``(left_map, right_map, size)`` where the maps re-code each
    side's per-column codes into ``[0, size)`` and ``size - 1`` is a
    shared null slot (callers mask null rows out of matching anyway).
    The merge runs over the *dictionaries* — cardinality-sized, not
    row-count-sized — which is the whole point of composing cached codes
    instead of concatenating raw key columns.
    """
    lu, ru = left_enc.uniques, right_enc.uniques
    l_str = lu.dtype.kind in ("U", "S", "O")
    r_str = ru.dtype.kind in ("U", "S", "O")
    if l_str != r_str:
        return None  # mixed string/numeric keys: legacy path decides
    merged = np.concatenate([lu, ru]) if len(lu) or len(ru) else lu
    uniques, inverse = np.unique(merged, return_inverse=True)
    inverse = inverse.reshape(len(merged)).astype(np.int64)
    size = len(uniques) + 1  # trailing shared null slot
    # Initialize with the null slot: an all-null or empty side has a
    # cardinality-1 placeholder code that no dictionary entry covers, and
    # an uninitialized map slot would be used as a scatter/gather index.
    left_map = np.full(left_enc.cardinality, size - 1, dtype=np.int64)
    left_map[: len(lu)] = inverse[: len(lu)]
    right_map = np.full(right_enc.cardinality, size - 1, dtype=np.int64)
    right_map[: len(ru)] = inverse[len(lu):]
    return left_map, right_map, size


def _compose_shared(
    left_encodings: Sequence[ColumnEncoding],
    right_encodings: Sequence[ColumnEncoding],
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Shared codes for key tuples built from cached per-column codes."""
    n_left = len(left_encodings[0]) if left_encodings else 0
    n_right = len(right_encodings[0]) if right_encodings else 0
    left_nulls = np.zeros(n_left, dtype=bool)
    right_nulls = np.zeros(n_right, dtype=bool)
    combined = np.zeros(n_left + n_right, dtype=np.int64)
    radix = 1
    for left_enc, right_enc in zip(left_encodings, right_encodings):
        maps = _merge_dictionaries(left_enc, right_enc)
        if maps is None:
            return None
        left_map, right_map, size = maps
        left_nulls |= left_enc.nulls()
        right_nulls |= right_enc.nulls()
        shared = np.concatenate(
            [left_map[left_enc.codes], right_map[right_enc.codes]]
        )
        combined = combined * size + shared
        radix *= size
        if radix > 2**62:
            combined, groups, _ = _dense_codes(combined, radix)
            radix = max(groups, 1)
    if radix > max(4 * (n_left + n_right), 65_536):
        combined, _, _ = _dense_codes(combined, radix)
    return combined[:n_left], combined[n_left:], left_nulls, right_nulls


def _shared_codes(
    left: Sequence[np.ndarray],
    right: Sequence[np.ndarray],
    left_encodings: Optional[Sequence[Optional[ColumnEncoding]]] = None,
    right_encodings: Optional[Sequence[Optional[ColumnEncoding]]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Code left and right key tuples in one shared dictionary.

    When every key column on both sides carries a (cached) encoding, the
    shared dictionary is composed from the per-column dictionaries with no
    pass over the raw key columns.  Single-column integer keys otherwise
    skip dictionary construction entirely — value-minus-min is already a
    shared comparable code.
    """
    if (
        left_encodings is not None
        and right_encodings is not None
        and len(left_encodings) == len(left)
        and len(right_encodings) == len(right)
        and all(e is not None for e in left_encodings)
        and all(e is not None for e in right_encodings)
    ):
        composed = _compose_shared(left_encodings, right_encodings)
        if composed is not None:
            return composed
    n_left = len(left[0]) if left else 0
    left_nulls = np.zeros(n_left, dtype=bool)
    right_nulls = np.zeros(len(right[0]) if right else 0, dtype=bool)
    for l in left:
        left_nulls |= _normalize_key(np.asarray(l))[1]
    for r in right:
        right_nulls |= _normalize_key(np.asarray(r))[1]

    if len(left) == 1:
        l_arr, r_arr = np.asarray(left[0]), np.asarray(right[0])
        if l_arr.dtype.kind in ("i", "u") and r_arr.dtype.kind in ("i", "u"):
            lo = min(int(l_arr.min(initial=0)), int(r_arr.min(initial=0)))
            hi = max(int(l_arr.max(initial=0)), int(r_arr.max(initial=0)))
            # Guard downstream lookup-table allocations against sparse keys.
            if hi - lo + 1 <= max(4 * (len(l_arr) + len(r_arr)), 65_536):
                return (
                    l_arr.astype(np.int64) - lo,
                    r_arr.astype(np.int64) - lo,
                    left_nulls,
                    right_nulls,
                )

    merged = [
        np.concatenate([_normalize_key(np.asarray(l))[0].astype(object, copy=False)
                        if np.asarray(l).dtype == object else _normalize_key(np.asarray(l))[0],
                        _normalize_key(np.asarray(r))[0]])
        if np.asarray(l).dtype == object or np.asarray(r).dtype == object
        else np.concatenate([
            _normalize_key(np.asarray(l))[0].astype(np.float64),
            _normalize_key(np.asarray(r))[0].astype(np.float64),
        ])
        for l, r in zip(left, right)
    ]
    codes, _, _, _ = factorize(merged)
    return codes[:n_left], codes[n_left:], left_nulls, right_nulls


def _indexed_join(
    left_enc: ColumnEncoding, right_enc: ColumnEncoding, how: str
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Single-key join against a cached right side's grouped row index.

    The right side's rows are already grouped by code (``group_index``),
    and the dictionary merge is monotone, so the per-query sort and
    bucket-count passes over the right side disappear: the join is one
    dictionary merge (cardinality-sized) plus O(n) gathers.
    """
    maps = _merge_dictionaries(left_enc, right_enc)
    if maps is None:
        return None
    left_map, right_map, size = maps
    order, starts_own, counts_own = right_enc.ensure_group_index()
    counts_shared = np.zeros(size, dtype=np.int64)
    starts_shared = np.zeros(size, dtype=np.int64)
    non_null = right_enc.cardinality - (1 if right_enc.has_null else 0)
    counts_shared[right_map[:non_null]] = counts_own[:non_null]
    starts_shared[right_map[:non_null]] = starts_own[:non_null]
    # Null keys never match: the shared null slot was never scattered to,
    # so left null rows look up zero counts.
    lcodes = left_map[left_enc.codes]
    counts = counts_shared[lcodes]
    starts = starts_shared[lcodes]
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(lcodes)), counts)
    if total:
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total) - offsets
        right_idx = order[np.repeat(starts, counts) + within]
    else:
        right_idx = np.zeros(0, dtype=np.int64)
    return _pad_outer(
        left_idx, right_idx, counts, len(right_enc.codes), how, total
    )


def _pad_outer(
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    counts: np.ndarray,
    n_right: int,
    how: str,
    total: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Append the -1-padded rows LEFT/FULL joins owe for unmatched keys."""
    if how in ("left", "full"):
        unmatched_left = np.flatnonzero(counts == 0)
        left_idx = np.concatenate([left_idx, unmatched_left])
        right_idx = np.concatenate(
            [right_idx, np.full(len(unmatched_left), -1, dtype=np.int64)]
        )
    if how == "full":
        matched_right = np.zeros(n_right, dtype=bool)
        if total:
            matched_right[right_idx[right_idx >= 0]] = True
        unmatched_right = np.flatnonzero(~matched_right)
        left_idx = np.concatenate(
            [left_idx, np.full(len(unmatched_right), -1, dtype=np.int64)]
        )
        right_idx = np.concatenate([right_idx, unmatched_right])
    if how not in ("inner", "left", "full"):
        raise ExecutionError(f"unsupported join type {how!r}")
    return left_idx.astype(np.int64), right_idx.astype(np.int64)


def join_indices(
    left_keys: Sequence[np.ndarray],
    right_keys: Sequence[np.ndarray],
    how: str = "inner",
    left_encodings: Optional[Sequence[Optional[ColumnEncoding]]] = None,
    right_encodings: Optional[Sequence[Optional[ColumnEncoding]]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute matching row positions for an equi-join.

    Returns ``(left_idx, right_idx)``; a position of ``-1`` marks a padded
    null row (outer joins).  Null keys never match.  Cached per-column
    encodings, when supplied, replace the per-query key-encoding passes.
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise ExecutionError("join_indices: key arity mismatch")
    if (
        len(left_keys) == 1
        and left_encodings is not None
        and right_encodings is not None
        and left_encodings[0] is not None
        and right_encodings[0] is not None
    ):
        fast = _indexed_join(left_encodings[0], right_encodings[0], how)
        if fast is not None:
            return fast
    lcodes, rcodes, lnull, rnull = _shared_codes(
        left_keys, right_keys, left_encodings, right_encodings
    )
    # Null keys are excluded from matching by pushing them out of range.
    lcodes = np.where(lnull, -1, lcodes)
    rcodes = np.where(rnull, -2, rcodes)

    order = np.argsort(rcodes, kind="stable")
    span = int(max(lcodes.max(initial=0), rcodes.max(initial=0))) + 3
    if span <= max(4 * (len(lcodes) + len(rcodes)), 65_536):
        # O(n) bucket lookup: counts and start offsets per (shifted) code.
        shifted_r = rcodes + 2
        bucket_counts = np.bincount(shifted_r, minlength=span)
        bucket_starts = np.concatenate(
            [[0], np.cumsum(bucket_counts)[:-1]]
        )
        shifted_l = lcodes + 2
        counts = bucket_counts[shifted_l]
        starts = bucket_starts[shifted_l]
    else:
        sorted_r = rcodes[order]
        starts = np.searchsorted(sorted_r, lcodes, side="left")
        ends = np.searchsorted(sorted_r, lcodes, side="right")
        counts = ends - starts
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(lcodes)), counts)
    if total:
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total) - offsets
        right_idx = order[np.repeat(starts, counts) + within]
    else:
        right_idx = np.zeros(0, dtype=np.int64)
    return _pad_outer(left_idx, right_idx, counts, len(rcodes), how, total)


def semi_join_mask(
    left_keys: Sequence[np.ndarray],
    right_keys: Sequence[np.ndarray],
    left_encodings: Optional[Sequence[Optional[ColumnEncoding]]] = None,
    right_encodings: Optional[Sequence[Optional[ColumnEncoding]]] = None,
) -> np.ndarray:
    """Boolean mask of left rows whose key appears on the right."""
    lcodes, rcodes, lnull, rnull = _shared_codes(
        left_keys, right_keys, left_encodings, right_encodings
    )
    present = np.zeros(int(max(lcodes.max(initial=-1), rcodes.max(initial=-1))) + 2,
                       dtype=bool)
    valid_r = rcodes[~rnull]
    if len(valid_r):
        present[valid_r] = True
    mask = present[lcodes]
    mask[lnull] = False
    return mask


# ---------------------------------------------------------------------------
# Grouped aggregation
# ---------------------------------------------------------------------------
def group_sum(codes: np.ndarray, ngroups: int, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group SUM skipping NaNs; returns (sums, non-null counts)."""
    values = np.asarray(values, dtype=np.float64)
    null = np.isnan(values)
    filled = np.where(null, 0.0, values)
    # bincount returns int64 on empty input; force float for NaN marking.
    sums = np.bincount(codes, weights=filled, minlength=ngroups).astype(np.float64)
    counts = np.bincount(codes[~null], minlength=ngroups)
    return sums, counts


def group_count_star(codes: np.ndarray, ngroups: int) -> np.ndarray:
    return np.bincount(codes, minlength=ngroups).astype(np.int64)


def group_count(codes: np.ndarray, ngroups: int, values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if values.dtype == object:
        nonnull = np.array([v is not None for v in values], dtype=bool)
    elif values.dtype.kind == "f":
        nonnull = ~np.isnan(values)
    else:
        nonnull = np.ones(len(values), dtype=bool)
    return np.bincount(codes[nonnull], minlength=ngroups).astype(np.int64)


def group_count_distinct(codes: np.ndarray, ngroups: int, values: np.ndarray) -> np.ndarray:
    vcodes, _, _, vnull = factorize([np.asarray(values)])
    keep = ~vnull
    pair = codes[keep].astype(np.int64) * (int(vcodes.max(initial=0)) + 1) + vcodes[keep]
    unique_pairs = np.unique(pair)
    owner = (unique_pairs // (int(vcodes.max(initial=0)) + 1)).astype(np.int64)
    return np.bincount(owner, minlength=ngroups).astype(np.int64)


def group_min(codes: np.ndarray, ngroups: int, values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    out = np.full(ngroups, np.inf)
    keep = ~np.isnan(values)
    np.minimum.at(out, codes[keep], values[keep])
    out[np.isinf(out)] = np.nan
    return out


def group_max(codes: np.ndarray, ngroups: int, values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    out = np.full(ngroups, -np.inf)
    keep = ~np.isnan(values)
    np.maximum.at(out, codes[keep], values[keep])
    out[np.isinf(out)] = np.nan
    return out


def group_median(codes: np.ndarray, ngroups: int, values: np.ndarray) -> np.ndarray:
    """Per-group MEDIAN skipping NaNs, in pure array ops.

    After the lexsort, every group is a contiguous segment; its median is
    the mean of the two middle elements (which coincide for odd-sized
    segments), so a single gather at ``start + (n-1)//2`` and
    ``start + n//2`` replaces a Python-level ``np.median`` call per group.
    Halving a sum is an exact power-of-two scaling, so the result matches
    ``np.median`` bit for bit.
    """
    values = np.asarray(values, dtype=np.float64)
    keep = ~np.isnan(values)
    codes, values = codes[keep], values[keep]
    out = np.full(ngroups, np.nan)
    if len(values) == 0:
        return out
    order = np.lexsort((values, codes))
    codes_sorted, values_sorted = codes[order], values[order]
    boundaries = np.flatnonzero(np.diff(codes_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(codes_sorted)]])
    counts = ends - starts
    lower = values_sorted[starts + (counts - 1) // 2]
    upper = values_sorted[starts + counts // 2]
    out[codes_sorted[starts]] = 0.5 * (lower + upper)
    return out


def group_var(codes: np.ndarray, ngroups: int, values: np.ndarray) -> np.ndarray:
    sums, counts = group_sum(codes, ngroups, values)
    sq, _ = group_sum(codes, ngroups, np.asarray(values, dtype=np.float64) ** 2)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = sums / counts
        out = sq / counts - mean**2
    out[counts == 0] = np.nan
    return out


# ---------------------------------------------------------------------------
# Window functions (default RANGE frame: peers included)
# ---------------------------------------------------------------------------
def window_eval(
    func: str,
    values: Optional[np.ndarray],
    partition_codes: Optional[np.ndarray],
    order_keys: List[Tuple[np.ndarray, bool]],
    num_rows: int,
) -> np.ndarray:
    """Evaluate a running window aggregate.

    ``order_keys`` is a list of (array, ascending) pairs; the default SQL
    frame ``RANGE UNBOUNDED PRECEDING`` is used, so rows tied on the order
    key are peers and share the running value (this matches DuckDB for the
    paper's prefix-sum splits).  With no ORDER BY the whole partition is
    the frame.
    """
    if partition_codes is None:
        partition_codes = np.zeros(num_rows, dtype=np.int64)

    sort_columns: List[np.ndarray] = []
    for arr, ascending in reversed(order_keys):
        arr = np.asarray(arr)
        if arr.dtype == object:
            arr, _ = _normalize_key(arr)
            arr = np.unique(arr, return_inverse=True)[1].astype(np.float64)
        else:
            arr = arr.astype(np.float64)
        sort_columns.append(arr if ascending else -arr)
    sort_columns.append(partition_codes)
    order = np.lexsort(tuple(sort_columns)) if num_rows else np.zeros(0, dtype=np.int64)

    part_sorted = partition_codes[order]
    if func == "row_number":
        seq = np.arange(1, num_rows + 1, dtype=np.int64)
        if num_rows:
            part_start = np.concatenate([[0], np.flatnonzero(np.diff(part_sorted)) + 1])
            offsets = np.zeros(num_rows, dtype=np.int64)
            offsets[part_start] = np.concatenate([[0], part_start[1:]]) if len(part_start) else 0
            base = np.repeat(seq[part_start], np.diff(np.append(part_start, num_rows)))
            seq = seq - base + 1
        out = np.empty(num_rows, dtype=np.float64)
        out[order] = seq
        return out

    if values is None:
        raise ExecutionError(f"window {func} requires an argument")
    vals_sorted = np.asarray(values, dtype=np.float64)[order]
    nulls = np.isnan(vals_sorted)

    if func in ("sum", "avg", "count"):
        add = np.where(nulls, 0.0, vals_sorted) if func != "count" else (~nulls).astype(np.float64)
        running = np.cumsum(add)
        counts = np.cumsum((~nulls).astype(np.float64))
    elif func in ("min", "max"):
        running = _segmented_extreme(vals_sorted, part_sorted, func)
        counts = np.cumsum((~nulls).astype(np.float64))
    else:
        raise ExecutionError(f"unsupported window function {func!r}")

    if func in ("sum", "avg", "count"):
        # Reset per partition: subtract the running value before the partition.
        if num_rows:
            part_start = np.concatenate([[0], np.flatnonzero(np.diff(part_sorted)) + 1])
            start_offset = np.zeros(num_rows)
            prefix_before = np.concatenate([[0.0], running])[part_start]
            start_offset = np.repeat(
                prefix_before, np.diff(np.append(part_start, num_rows))
            )
            running = running - start_offset
            count_before = np.concatenate([[0.0], counts])[part_start]
            counts = counts - np.repeat(
                count_before, np.diff(np.append(part_start, num_rows))
            )

    if order_keys and num_rows:
        # Peers (equal partition + order key) share the frame-end value.
        peer_key = np.zeros(num_rows, dtype=bool)
        peer_key[0] = True
        for arr, _ in order_keys:
            arr = np.asarray(arr)
            comparable, _ = _normalize_key(arr)
            sorted_vals = comparable[order]
            if sorted_vals.dtype.kind in ("U", "S", "O"):
                change = sorted_vals[1:] != sorted_vals[:-1]
            else:
                change = sorted_vals[1:] != sorted_vals[:-1]
            peer_key[1:] |= np.asarray(change)
        peer_key[1:] |= part_sorted[1:] != part_sorted[:-1]
        group_ids = np.cumsum(peer_key) - 1
        last_of_group = np.concatenate([np.flatnonzero(peer_key[1:]), [num_rows - 1]])
        running = running[last_of_group][group_ids]
        counts = counts[last_of_group][group_ids]
    elif not order_keys and num_rows:
        # No ORDER BY: the frame is the whole partition.
        part_start = np.concatenate([[0], np.flatnonzero(np.diff(part_sorted)) + 1])
        part_id = np.cumsum(np.concatenate([[True], np.diff(part_sorted) != 0])) - 1
        last = np.concatenate([part_start[1:] - 1, [num_rows - 1]])
        running = running[last][part_id]
        counts = counts[last][part_id]

    if func == "avg":
        with np.errstate(invalid="ignore", divide="ignore"):
            running = running / counts
    if func == "count":
        running = counts

    out = np.empty(num_rows, dtype=np.float64)
    out[order] = running
    return out


def _segmented_extreme(values: np.ndarray, segments: np.ndarray, func: str) -> np.ndarray:
    out = np.empty_like(values)
    if not len(values):
        return out
    boundaries = np.concatenate(
        [[0], np.flatnonzero(np.diff(segments)) + 1, [len(values)]]
    )
    op = np.fmin if func == "min" else np.fmax
    for s, e in zip(boundaries[:-1], boundaries[1:]):
        out[s:e] = op.accumulate(values[s:e])
    return out


def sort_indices(keys: List[Tuple[np.ndarray, bool]], num_rows: int) -> np.ndarray:
    """Stable multi-key sort; NaNs/Nones sort last on ascending keys."""
    if not keys:
        return np.arange(num_rows)
    columns = []
    for arr, ascending in reversed(keys):
        arr = np.asarray(arr)
        if arr.dtype == object:
            comparable, nulls = _normalize_key(arr)
            codes = np.unique(comparable, return_inverse=True)[1].astype(np.float64)
            codes[nulls] = np.inf
            arr = codes
        else:
            arr = arr.astype(np.float64)
        if not ascending:
            with np.errstate(invalid="ignore"):
                arr = -arr
        # Push NaN last regardless of direction.
        arr = np.where(np.isnan(arr), np.inf, arr)
        columns.append(arr)
    return np.lexsort(tuple(columns))
