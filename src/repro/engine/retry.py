"""Bounded, deterministic retry of transient backend failures.

JoinBoost treats the DBMS as an unreliable dependency: a training run
pushes thousands of statements through a live backend, and any one of
them can hit a transient fault — sqlite ``database is locked``, a duckdb
IO hiccup, a dropped reader cursor.  Connectors translate those raw
driver errors into :class:`~repro.exceptions.TransientBackendError`
(see the taxonomy in :mod:`repro.exceptions`); this module is the layer
that retries them.

The policy is deliberately boring and deterministic: a bounded attempt
count, a fixed exponential backoff schedule (no jitter — reproducible
runs beat thundering-herd theory at this scale), and a per-query delay
budget so one stuck statement cannot stall a round for minutes.  Two
call sites consume it:

* :class:`~repro.engine.scheduler.QueryScheduler` retries each DAG
  node's callable before the record-error-and-skip-dependents behavior
  engages, on the serial and threaded paths alike;
* :class:`~repro.backends.chaos.RetryConnector` wraps a connector's
  ``execute``/``execute_read`` so the plain serial training loop (which
  never touches the scheduler) retries too.

On exhaustion the *final* attempt's exception is raised with the total
attempt count attached as ``exc.attempts`` — callers report what
actually failed last, not the first flake.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, Optional, TypeVar

from repro.exceptions import TransientBackendError

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with a deterministic exponential backoff.

    ``delay(k)`` for retry ``k`` (1-based) is
    ``min(base_delay * multiplier**(k-1), max_delay)`` — no jitter, so
    two identical runs retry on an identical schedule.
    ``budget_seconds`` caps the *total* backoff sleep spent on one
    query; when the next delay would blow the budget, retrying stops
    even if attempts remain.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    budget_seconds: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def delay(self, retry_number: int) -> float:
        """Backoff before retry ``retry_number`` (1-based)."""
        return min(
            self.base_delay * self.multiplier ** (retry_number - 1),
            self.max_delay,
        )

    def schedule(self) -> list:
        """The full deterministic delay schedule (for docs and tests)."""
        return [self.delay(k) for k in range(1, self.max_attempts)]


#: the default policy training uses when retry is enabled without an
#: explicit policy (``connect(..., chaos=...)`` / ``retry=True``)
DEFAULT_RETRY_POLICY = RetryPolicy()


class RetryCensus:
    """Thread-safe retry accounting, surfaced in ``frontier_census``."""

    def __init__(self):
        self._lock = threading.Lock()
        self.retries = 0
        self.exhausted = 0
        self.succeeded_after_retry = 0

    def record_retry(self) -> None:
        """One transient failure is about to be retried."""
        with self._lock:
            self.retries += 1

    def record_exhausted(self) -> None:
        """A query failed on its final permitted attempt."""
        with self._lock:
            self.exhausted += 1

    def record_recovery(self) -> None:
        """A query succeeded after at least one retry."""
        with self._lock:
            self.succeeded_after_retry += 1

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return {
                "retries": self.retries,
                "exhausted": self.exhausted,
                "succeeded_after_retry": self.succeeded_after_retry,
            }


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    census: Optional[RetryCensus] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn``, retrying :class:`TransientBackendError` per ``policy``.

    Non-transient exceptions propagate immediately with ``attempts=1``
    semantics (no retry).  On exhaustion — attempts or delay budget —
    the final attempt's exception is raised with ``exc.attempts`` set
    to the number of attempts actually made, so the scheduler's
    lowest-id error surfacing reports what failed *last*.
    """
    slept = 0.0
    attempt = 0
    while True:
        attempt += 1
        try:
            result = fn()
        except TransientBackendError as exc:
            next_delay = policy.delay(attempt)
            out_of_attempts = attempt >= policy.max_attempts
            out_of_budget = slept + next_delay > policy.budget_seconds
            if out_of_attempts or out_of_budget:
                if census is not None:
                    census.record_exhausted()
                exc.attempts = attempt
                raise
            if census is not None:
                census.record_retry()
            if next_delay > 0:
                sleep(next_delay)
                slept += next_delay
            continue
        if attempt > 1 and census is not None:
            census.record_recovery()
        return result
