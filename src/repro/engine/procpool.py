"""Supervised process-pool executor for read-only training tasks.

The thread scheduler (:mod:`repro.engine.scheduler`) escapes the GIL
only as far as the backend's C core releases it; this module is the
``executor="process"`` axis — real OS processes behind the same
scheduler interface, plus the *supervision* the new failure domain
demands.  A worker process can crash mid-task (nonzero exitcode), hang
forever, or die holding in-flight work; none of those are visible to
the statement-level retry layer, so the pool runs its own control loop:

* **heartbeats** — every worker acknowledges each task with a ``start``
  message before running it, and the supervisor stamps the ack time;
* **per-task deadlines** — a task that neither completes nor errors
  within its deadline of the last heartbeat (the ``start`` ack,
  initially the dispatch stamp) is presumed stalled, its worker killed;
* **crash detection** — a worker whose process exits while a task is in
  flight is detected via ``Process.is_alive()``/``exitcode``;
* **bounded re-dispatch** — the in-flight task of a crashed/stalled
  worker is re-dispatched to a healthy worker (each task carries a
  bounded re-dispatch budget), and the dead worker is respawned under a
  pool-wide respawn budget.

Recovery is *safe* because every task the training stack submits here is
a read-only, idempotent unit — a fused split query against a WAL
snapshot or pickled immutable base relations — so re-running it cannot
corrupt anything, and it is *deterministic* because task results are
merged by task id (submission order), never by completion order: the
model digest of a process-pool run is bit-identical to the serial run
even when workers are killed underneath it.

Tasks are serialized specs (plain dicts), not closures: the child
process rebuilds its own database handle from the spec (sqlite WAL file
path, or pickled embedded base relations) and ships back a
:class:`~repro.engine.result.Relation`.  Chaos directives
(``worker_crash`` / ``stall`` from :mod:`repro.backends.chaos`) are
resolved by the *supervisor* at dispatch time and stamped onto the task
— and stripped on re-dispatch, so the Nth matching task faults exactly
once and then recovers.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    BackendError,
    BackendExecutionError,
    TransientBackendError,
)

#: exitcode a chaos-crashed worker dies with (distinguishable from a
#: Python traceback's exit 1 and from signal deaths, which are negative)
CRASH_EXIT_CODE = 87

#: how long a chaos-stalled worker sleeps; far past any sane deadline,
#: so the supervisor's deadline detection is what ends the task
STALL_SLEEP_SECONDS = 3600.0

#: environment variable supplying the default per-task deadline
TASK_DEADLINE_ENV = "JOINBOOST_TASK_DEADLINE"

#: default per-task deadline in seconds (generous: a deadline kill on an
#: honest task would waste work, so only genuine stalls should trip it)
DEFAULT_TASK_DEADLINE = 30.0


def default_task_deadline() -> float:
    """The per-task deadline: ``JOINBOOST_TASK_DEADLINE`` or 30s."""
    raw = os.environ.get(TASK_DEADLINE_ENV, "")
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_TASK_DEADLINE


@dataclasses.dataclass
class WorkerTask:
    """One serialized unit of work for a worker process.

    ``payload`` is a plain-data spec executed by
    :func:`execute_task_payload`; ``chaos`` is a task-scoped fault
    directive (``"worker_crash"`` / ``"stall"`` / ``None``) stamped by
    the supervisor at dispatch time and honoured by the child *before*
    running the payload — and stripped on re-dispatch, so a faulted
    task recovers on its next attempt.
    """

    task_id: int
    payload: Dict[str, object]
    tag: str = ""
    chaos: Optional[str] = None


@dataclasses.dataclass
class TaskOutcome:
    """Per-task result and supervision stats, in submission order."""

    task_id: int
    result: object = None
    error: Optional[BaseException] = None
    #: dispatch count (1 = clean first run)
    attempts: int = 0
    #: re-dispatches after a crash/stall (subset of ``attempts - 1``)
    redispatches: int = 0
    #: the task hit its deadline at least once (its worker was killed)
    timed_out: bool = False
    #: wall seconds from first dispatch to final completion
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the task produced a result."""
        return self.error is None


class ProcPoolCensus:
    """Thread-safe counters for the supervision loop.

    The frontier evaluator accumulates one census across all rounds and
    surfaces it through ``frontier_census`` (``worker_crashes``,
    ``tasks_redispatched``, ``respawns``, ``deadline_timeouts``), which
    is how benches and CI gates assert that chaos runs actually
    exercised the recovery paths.
    """

    FIELDS = (
        "worker_crashes",
        "tasks_redispatched",
        "respawns",
        "deadline_timeouts",
        "tasks_completed",
        "task_retries",
        "heartbeats",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {field: 0 for field in self.FIELDS}

    def bump(self, field: str, by: int = 1) -> None:
        """Increment one counter (must be a known field)."""
        with self._lock:
            self.counts[field] += by

    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters."""
        with self._lock:
            return dict(self.counts)

    def merge(self, other: "ProcPoolCensus") -> None:
        """Fold another census's counts into this one."""
        for field, value in other.snapshot().items():
            self.bump(field, value)


# ----------------------------------------------------------------------
# Task payload execution (runs in the child process)
# ----------------------------------------------------------------------
def _execute_sqlite_read(payload: Dict[str, object]):
    """Run a pre-translated read statement against a sqlite WAL file.

    Mirrors the parent's pooled reader exactly: a normal connection
    (WAL readers need a writable ``-shm``, so no ``mode=ro`` URI) pinned
    ``query_only``, the same registered SQL functions, and the same
    ``column_from_values`` result construction — which is what keeps a
    child-computed Relation bit-identical to the in-process one.
    """
    import sqlite3

    from repro.backends.base import column_from_values
    from repro.backends.sqlite3_backend import (
        _wrap_errors,
        register_sql_functions,
    )
    from repro.engine.result import Relation

    path = str(payload["path"])
    sql = str(payload["sql"])
    conn = sqlite3.connect(path, check_same_thread=False)
    try:
        conn.isolation_level = None
        conn.execute("PRAGMA busy_timeout = 30000")
        register_sql_functions(conn)
        conn.execute("PRAGMA query_only = 1")
        with _wrap_errors(repr(sql)):
            cursor = conn.execute(sql)
            names = [d[0] for d in cursor.description or ()]
            rows = cursor.fetchall()
    finally:
        conn.close()
    columns = [
        column_from_values(name, [row[i] for row in rows])
        for i, name in enumerate(names)
    ]
    return Relation(columns)


def _execute_embedded_read(payload: Dict[str, object]):
    """Run a query against pickled immutable embedded base relations.

    The spec ships each referenced table as ``(column name, values,
    ctype value, valid mask)`` tuples; the child rebuilds real
    :class:`~repro.storage.column.Column` objects (masks preserved
    exactly — no round-trip through NaN sentinels) in a fresh
    :class:`~repro.engine.database.Database` and runs the statement
    there.  Same engine, same data, same statement ⇒ same bits.
    """
    from repro.engine.database import Database
    from repro.storage.column import Column, ColumnType
    from repro.storage.table import Table

    db = Database()
    tables = payload["tables"]
    assert isinstance(tables, dict)
    for name, specs in tables.items():
        columns = [
            Column(col_name, values, ctype=ColumnType(ctype), valid=valid)
            for col_name, values, ctype, valid in specs
        ]
        db.register(Table.from_columns(name, columns, db.config))
    return db.execute(str(payload["sql"]))


def execute_task_payload(payload: Dict[str, object]):
    """Execute one serialized task spec; the child-side dispatch.

    Also callable in-process (the scheduler's inline fallback and the
    tests use it directly) — the payload contract is executor-neutral.
    """
    kind = payload.get("kind")
    if kind == "callable":
        fn = payload["fn"]
        args = payload.get("args", ())
        kwargs = payload.get("kwargs", {})
        assert callable(fn) and isinstance(args, tuple) and isinstance(kwargs, dict)
        return fn(*args, **kwargs)
    if kind == "sqlite_read":
        return _execute_sqlite_read(payload)
    if kind == "embedded_read":
        return _execute_embedded_read(payload)
    raise BackendError(f"unknown task payload kind {kind!r}")


def _worker_main(
    worker_id: int, conn: "multiprocessing.connection.Connection"
) -> None:
    """Worker loop: recv task, ack, honour chaos, run, send outcome.

    The ``start`` ack is sent *before* any chaos directive is honoured,
    so the supervisor always knows which task a dead worker was holding.
    ``worker_crash`` uses ``os._exit`` (no cleanup, no exception
    propagation — a genuine hard death); ``stall`` sleeps far past any
    deadline while holding no locks, so the supervisor's kill is safe.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            conn.send(("start", task.task_id))
        except (BrokenPipeError, OSError):
            return
        if task.chaos == "worker_crash":
            os._exit(CRASH_EXIT_CODE)
        if task.chaos == "stall":
            time.sleep(STALL_SLEEP_SECONDS)
        try:
            result = execute_task_payload(task.payload)
            message: Tuple[object, ...] = ("done", task.task_id, result)
        except BaseException as exc:  # noqa: BLE001 — ships error to parent
            message = ("error", task.task_id, _picklable_error(exc))
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return BackendExecutionError(
            f"worker task failed with unpicklable {type(exc).__name__}: {exc}"
        )


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class _Worker:
    """One supervised child: process + duplex pipe + in-flight state."""

    def __init__(self, ctx, worker_id: int):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn),
            daemon=True,
            name=f"jb-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()
        self.worker_id = worker_id
        #: the WorkerTask currently dispatched to this child, if any
        self.in_flight: Optional[WorkerTask] = None
        self.dispatched_at = 0.0
        self.last_heartbeat = 0.0

    @property
    def idle(self) -> bool:
        return self.in_flight is None

    def dispatch(self, task: WorkerTask) -> None:
        self.in_flight = task
        self.dispatched_at = time.monotonic()
        self.last_heartbeat = self.dispatched_at
        self.conn.send(task)

    def kill(self) -> None:
        """Hard-stop the child and its pipe (idempotent)."""
        try:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass


class SupervisedProcessPool:
    """A pool of worker processes with crash/stall supervision.

    ``run(tasks)`` dispatches :class:`WorkerTask`\\ s across the pool
    and returns one :class:`TaskOutcome` per task *in submission
    order*; crashed and stalled workers are killed, respawned (bounded
    by ``max_respawns``) and their in-flight tasks re-dispatched
    (bounded per task by ``max_redispatches``) with any chaos directive
    stripped.  Transient task errors are retried within the same
    bounds.  A pool survives across ``run()`` calls — the frontier
    evaluator reuses one pool across every round of a training run.
    """

    def __init__(
        self,
        num_workers: int,
        deadline_s: Optional[float] = None,
        max_redispatches: int = 3,
        max_respawns: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if num_workers < 1:
            raise BackendError("process pool needs num_workers >= 1")
        if start_method is None:
            # fork is the cheap path on Linux (no module re-import, no
            # pickling of Process args); fall back where it is absent.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.num_workers = num_workers
        self.deadline_s = (
            deadline_s if deadline_s is not None else default_task_deadline()
        )
        self.max_redispatches = max_redispatches
        self.max_respawns = (
            max_respawns if max_respawns is not None else 3 * num_workers
        )
        self._respawns_used = 0
        self._next_worker_id = 0
        self._lock = threading.Lock()
        self._closed = False
        self._workers: List[_Worker] = [
            self._spawn() for _ in range(num_workers)
        ]

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id)
        self._next_worker_id += 1
        return worker

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[WorkerTask],
        census: Optional[ProcPoolCensus] = None,
        deadline_s: Optional[float] = None,
    ) -> List[TaskOutcome]:
        """Execute ``tasks`` on the pool; outcomes in submission order.

        Serialized with a lock — one scheduler drives a pool at a time.
        Never raises for per-task failures: a task that exhausts its
        re-dispatch/retry budget (or the pool's respawn budget) comes
        back with ``outcome.error`` set, and the caller decides how a
        failed task propagates (the scheduler raises the lowest
        query id's error, exactly as on the thread path).
        """
        with self._lock:
            if self._closed:
                raise BackendExecutionError("process pool is closed")
            return self._run_locked(list(tasks), census, deadline_s)

    def _run_locked(
        self,
        tasks: List[WorkerTask],
        census: Optional[ProcPoolCensus],
        deadline_s: Optional[float],
    ) -> List[TaskOutcome]:
        census = census if census is not None else ProcPoolCensus()
        deadline = deadline_s if deadline_s is not None else self.deadline_s
        # Backstop for the shared pool: a worker still marked busy from a
        # previous run would misattribute its pending messages to this
        # run's task ids — replace it (not charged to the respawn
        # budget; nothing failed in *this* run).
        for worker in list(self._workers):
            if not worker.idle:
                worker.in_flight = None
                worker.kill()
                self._workers.remove(worker)
                self._workers.append(self._spawn())
        outcomes = {t.task_id: TaskOutcome(task_id=t.task_id) for t in tasks}
        first_dispatch: Dict[int, float] = {}
        queue: List[WorkerTask] = list(tasks)
        done = 0

        finished: set = set()

        def finish(task_id: int, result=None, error=None) -> None:
            nonlocal done
            if task_id in finished:
                # Backstop: a task completes exactly once.  Recovery is
                # single-sourced (requeue() owns re-queuing), so a second
                # finish() would mean a task ran twice — keep the first
                # outcome rather than over-counting ``done``.
                return
            finished.add(task_id)
            outcome = outcomes[task_id]
            outcome.result = result
            outcome.error = error
            outcome.seconds = time.monotonic() - first_dispatch[task_id]
            done += 1
            if error is None:
                census.bump("tasks_completed")

        def requeue(worker: _Worker, why: str) -> None:
            """Crash/stall recovery: respawn + re-dispatch (both bounded)."""
            task = worker.in_flight
            worker.in_flight = None
            worker.kill()
            self._workers.remove(worker)
            if self._respawns_used < self.max_respawns:
                self._respawns_used += 1
                census.bump("respawns")
                self._workers.append(self._spawn())
            if task is None:
                return
            outcome = outcomes[task.task_id]
            if outcome.redispatches >= self.max_redispatches or not self._workers:
                finish(task.task_id, error=BackendExecutionError(
                    f"worker task {task.task_id} ({task.tag!r}) lost to "
                    f"{why} after {outcome.redispatches} re-dispatches"
                ))
                return
            outcome.redispatches += 1
            census.bump("tasks_redispatched")
            # Strip the chaos directive: the fault fired; the re-dispatch
            # must be allowed to succeed.
            queue.insert(0, dataclasses.replace(task, chaos=None))

        while done < len(tasks):
            # Fill every idle worker from the front of the queue
            # (snapshot: requeue() mutates self._workers mid-pass).
            for worker in list(self._workers):
                if not queue:
                    break
                if not worker.idle:
                    continue
                task = queue.pop(0)
                outcome = outcomes[task.task_id]
                outcome.attempts += 1
                first_dispatch.setdefault(task.task_id, time.monotonic())
                try:
                    worker.dispatch(task)
                except (BrokenPipeError, OSError):
                    # The send never reached the child, so this is not a
                    # re-dispatch: clear the in-flight slot dispatch()
                    # stamped *before* calling requeue(), which would
                    # otherwise insert a second copy of the task — both
                    # copies would run and finish() would fire twice.
                    worker.in_flight = None
                    queue.insert(0, task)
                    outcome.attempts -= 1
                    requeue(worker, "a dead pipe at dispatch")

            busy = [w for w in self._workers if not w.idle]
            if not busy:
                if queue:
                    # No workers left (respawn budget exhausted): fail
                    # everything still queued rather than spin forever.
                    for task in queue:
                        first_dispatch.setdefault(task.task_id, time.monotonic())
                        finish(task.task_id, error=BackendExecutionError(
                            f"worker task {task.task_id} ({task.tag!r}) "
                            "undispatchable: respawn budget exhausted"
                        ))
                    queue.clear()
                    continue
                break

            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=0.05
            )
            for worker in list(busy):
                if worker.conn not in ready:
                    continue
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    # Pipe died with a task in flight: a crash.
                    census.bump("worker_crashes")
                    requeue(worker, "a worker crash")
                    continue
                kind = message[0]
                if kind == "start":
                    worker.last_heartbeat = time.monotonic()
                    census.bump("heartbeats")
                    continue
                task = worker.in_flight
                worker.in_flight = None
                assert task is not None and message[1] == task.task_id
                if kind == "done":
                    finish(task.task_id, result=message[2])
                    continue
                error = message[2]
                outcome = outcomes[task.task_id]
                retries_spent = (
                    outcome.attempts - 1 - outcome.redispatches
                )
                if (
                    isinstance(error, TransientBackendError)
                    and retries_spent < self.max_redispatches
                ):
                    census.bump("task_retries")
                    queue.insert(0, dataclasses.replace(task, chaos=None))
                else:
                    if isinstance(error, BaseException):
                        setattr(error, "attempts", outcome.attempts)
                    finish(task.task_id, error=error)

            # Liveness + deadline sweep over workers still holding work.
            # The stall clock runs from the last heartbeat (the child's
            # ``start`` ack, initially the dispatch stamp), so a task
            # sitting unacked in a saturated pipe is not misclassified
            # as a stalled execution.
            now = time.monotonic()
            for worker in list(self._workers):
                if worker.idle:
                    continue
                if not worker.process.is_alive():
                    census.bump("worker_crashes")
                    requeue(worker, "a worker crash")
                elif now - worker.last_heartbeat > deadline:
                    census.bump("deadline_timeouts")
                    task_id = worker.in_flight.task_id
                    outcomes[task_id].timed_out = True
                    requeue(worker, "a deadline timeout")

        return [outcomes[t.task_id] for t in tasks]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent): drain, join, kill stragglers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                try:
                    worker.conn.send(None)
                except Exception:
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                worker.kill()
            self._workers = []

    def __enter__(self) -> "SupervisedProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SupervisedProcessPool(num_workers={self.num_workers}, "
            f"start_method={self.start_method!r})"
        )


# ----------------------------------------------------------------------
# Shared pool (one per worker count, reused across schedulers/rounds)
# ----------------------------------------------------------------------
_SHARED_POOLS: Dict[int, SupervisedProcessPool] = {}
_SHARED_LOCK = threading.Lock()


def get_shared_pool(num_workers: int) -> SupervisedProcessPool:
    """A process pool shared across schedulers, keyed by worker count.

    Spawning processes per evaluation round would dominate small rounds;
    the shared pool amortizes worker startup across the whole training
    run (and across runs in one process).  Shut down at interpreter
    exit; callers must not ``close()`` a shared pool.
    """
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(num_workers)
        if pool is None or pool._closed:
            pool = SupervisedProcessPool(num_workers)
            _SHARED_POOLS[num_workers] = pool
        return pool


@atexit.register
def _shutdown_shared_pools() -> None:
    with _SHARED_LOCK:
        for pool in _SHARED_POOLS.values():
            pool.close()
        _SHARED_POOLS.clear()
