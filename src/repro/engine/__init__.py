"""Query engine: planner, physical operators, updates and scheduling.

``Database`` is the facade the rest of the system talks to; it parses SQL
text (via :mod:`repro.sql`), plans and executes it over the storage layer,
and records a per-query profile (used to reproduce the paper's Figure 9
query census).
"""

from repro.engine.database import Database, QueryProfile
from repro.engine.result import Relation
from repro.engine.scheduler import QueryScheduler, ScheduledQuery

__all__ = [
    "Database",
    "QueryProfile",
    "Relation",
    "QueryScheduler",
    "ScheduledQuery",
]
