"""Planner/interpreter for SELECT statements.

This module turns a parsed :class:`~repro.sql.ast_nodes.Select` into a
:class:`~repro.engine.result.Relation` by composing the vectorized
operators.  The pipeline is the textbook one:

    FROM (+JOINs) -> WHERE -> GROUP BY/aggregates -> HAVING
    -> window functions -> SELECT projection -> DISTINCT
    -> ORDER BY -> LIMIT

Aggregate and window calls are extracted from expressions, computed with
the grouped/window operators, and re-injected as pre-computed values via
the evaluation ``context`` (keyed by AST node id), so arbitrary arithmetic
around them — e.g. the paper's variance-reduction criterion — just works.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import PlanError
from repro.sql import ast_nodes as ast
from repro.sql.expressions import Frame, evaluate
from repro.sql.functions import is_aggregate, is_window_capable
from repro.engine import operators as ops
from repro.engine.result import Relation
from repro.storage.column import Column, ColumnType


def run_query(query: "ast.Query", db) -> Relation:
    """Execute a SELECT or a UNION ALL chain against ``db``."""
    if isinstance(query, ast.UnionAll):
        return concat_relations([run_select(s, db) for s in query.selects])
    return run_select(query, db)


def concat_relations(relations: List[Relation]) -> Relation:
    """Bag union of branch results (UNION ALL semantics).

    Column names and order come from the first branch; branches must agree
    on column count.  Types promote INT -> FLOAT per position; a position
    mixing strings with numbers is an error (the Factorizer keeps string
    and numeric features in separate batched queries).
    """
    if not relations:
        raise PlanError("UNION ALL needs at least one branch")
    if len(relations) == 1:
        return relations[0]
    width = relations[0].num_columns
    for relation in relations[1:]:
        if relation.num_columns != width:
            raise PlanError(
                "UNION ALL branches have different column counts: "
                f"{width} vs {relation.num_columns}"
            )
    out: List[Column] = []
    for position in range(width):
        branch_cols = [r.columns()[position] for r in relations]
        out.append(_concat_columns(branch_cols))
    return Relation(out)


def _concat_columns(columns: List[Column]) -> Column:
    name = columns[0].name
    ctypes = {c.ctype for c in columns}
    if ColumnType.STR in ctypes and len(ctypes) > 1:
        raise PlanError(
            f"UNION ALL column {name!r} mixes strings with numbers"
        )
    nulls = np.concatenate([c.is_null() for c in columns])
    valid = ~nulls if nulls.any() else None
    if ctypes == {ColumnType.INT}:
        values = np.concatenate([c.values for c in columns])
        return Column(name, values, ColumnType.INT, valid)
    if ColumnType.STR in ctypes:
        values = np.concatenate([c.values.astype(object) for c in columns])
        return Column(name, values, ColumnType.STR, valid)
    # INT/FLOAT mix promotes to FLOAT; as_float() turns nulls into NaN.
    values = np.concatenate([c.as_float() for c in columns])
    return Column(name, values, ColumnType.FLOAT, valid)


def run_select(select: ast.Select, db) -> Relation:
    """Execute a SELECT against ``db`` (a :class:`~repro.engine.database.
    Database`)."""
    context: Dict[int, object] = {}
    # The evaluator consults the encoded-key cache (semi-join IN
    # membership over cached dictionary codes) through the context.
    context["__encodings__"] = getattr(db, "encodings", None)
    frame = _build_from(select, db, context)
    frame = _apply_where(select, db, frame, context)

    # Uncorrelated IN-subqueries may appear anywhere (e.g. inside the CASE
    # projections of residual updates); resolve them all up front.
    for item in select.items:
        _precompute_subqueries(item.expr, db, context)
    if select.having is not None:
        _precompute_subqueries(select.having, db, context)
    for order in select.order_by:
        _precompute_subqueries(order.expr, db, context)

    aggregates = _collect_aggregates(select)
    if select.group_by or aggregates:
        frame = _apply_grouping(select, db, frame, context, aggregates)

    _compute_windows(select, frame, context)
    out_columns = _project(select, frame, context)

    if select.distinct and out_columns:
        codes, _, first_idx, _ = ops.factorize([c.values for c in out_columns])
        keep = np.sort(first_idx)
        out_columns = [c.take(keep) for c in out_columns]

    out_columns = _apply_order_limit(select, frame, context, out_columns)
    return Relation(out_columns)


# ---------------------------------------------------------------------------
# FROM / JOIN
# ---------------------------------------------------------------------------
def _frame_for_table_ref(ref: ast.TableRef, db) -> Frame:
    if ref.subquery is not None:
        relation = run_query(ref.subquery, db)
        return Frame.from_columns(relation.columns(), binding=ref.binding)
    table = db.table(ref.name)
    frame = Frame(table.num_rows())
    for col in table.columns():
        frame.bind(col, binding=ref.binding)
    return frame


def _build_from(select: ast.Select, db, context: Dict[int, object]) -> Frame:
    if select.source is None:
        return Frame(1)  # SELECT <expr> without FROM: one row
    frame = _frame_for_table_ref(select.source, db)
    for join in select.joins:
        right = _frame_for_table_ref(join.table, db)
        frame = _apply_join(frame, right, join, db, context)
    return frame


def _split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _apply_join(
    left: Frame, right: Frame, join: ast.Join, db, context: Dict[int, object]
) -> Frame:
    kind = join.kind.upper()
    if kind == "CROSS":
        n_left, n_right = left.num_rows, right.num_rows
        l_idx = np.repeat(np.arange(n_left), n_right)
        r_idx = np.tile(np.arange(n_right), n_left)
        return _gather_merge(left, right, l_idx, r_idx)

    equi: List[Tuple[ast.ColumnRef, ast.ColumnRef]] = []
    residual: List[ast.Expr] = []
    if join.using:
        for name in join.using:
            equi.append((ast.ColumnRef(name), ast.ColumnRef(name)))
    else:
        for conjunct in _split_conjuncts(join.condition):
            pair = _as_equi_pair(conjunct, left, right)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
    if not equi:
        raise PlanError(
            "join requires at least one equality condition "
            f"(got {join.condition.sql() if join.condition else 'none'})"
        )
    cache = getattr(db, "encodings", None)
    left_cols = [left.resolve(l) for l, _ in equi]
    right_cols = [right.resolve(r) for _, r in equi]
    left_keys = [c.values for c in left_cols]
    right_keys = [c.values for c in right_cols]
    # Cached key encodings (None entries fall back per column inside the
    # operators): base-table and message-table join keys factorize once
    # per training run instead of once per query.  Columns carrying a
    # validity mask are excluded: the legacy join path matches on raw
    # stored values (ignoring validity), while encodings fold the mask
    # into the null group — using them here would change join results
    # between cache-on and cache-off.
    left_encodings = right_encodings = None
    if cache is not None and cache.enabled:
        left_encodings = [
            cache.encoding_for(c) if c.valid is None else None
            for c in left_cols
        ]
        right_encodings = [
            cache.encoding_for(c) if c.valid is None else None
            for c in right_cols
        ]
    how = {"INNER": "inner", "LEFT": "left", "RIGHT": "left", "FULL": "full"}[kind]
    if kind == "RIGHT":
        r_idx, l_idx = ops.join_indices(
            right_keys, left_keys, how="left",
            left_encodings=right_encodings, right_encodings=left_encodings,
        )
    else:
        l_idx, r_idx = ops.join_indices(
            left_keys, right_keys, how=how,
            left_encodings=left_encodings, right_encodings=right_encodings,
        )
    merged = _gather_merge(left, right, l_idx, r_idx, cache)
    for conjunct in residual:
        _precompute_subqueries(conjunct, db, context)
        mask = np.asarray(evaluate(conjunct, merged, context), dtype=bool)
        merged = _filter_frame(merged, mask, cache)
    return merged


def _as_equi_pair(
    expr: ast.Expr, left: Frame, right: Frame
) -> Optional[Tuple[ast.ColumnRef, ast.ColumnRef]]:
    if not (
        isinstance(expr, ast.BinaryOp)
        and expr.op == "="
        and isinstance(expr.left, ast.ColumnRef)
        and isinstance(expr.right, ast.ColumnRef)
    ):
        return None
    a, b = expr.left, expr.right
    # Prefer qualified resolution to decide sides.
    if left.has(a) and right.has(b) and not (left.has(b) and right.has(a)):
        return (a, b)
    if left.has(b) and right.has(a) and not (left.has(a) and right.has(b)):
        return (b, a)
    if left.has(a) and right.has(b):
        return (a, b)
    if left.has(b) and right.has(a):
        return (b, a)
    return None


def _lookup(frame: Frame, key: str):
    # Explicit None checks: empty columns are falsy (len() == 0), so an
    # ``or`` chain would mis-resolve on empty inputs.
    col = frame._by_qualified.get(key)
    if col is None:
        col = frame._by_bare.get(key)
    return col


def _gather_merge(
    left: Frame,
    right: Frame,
    l_idx: np.ndarray,
    r_idx: np.ndarray,
    cache=None,
) -> Frame:
    merged = Frame(len(l_idx))
    propagate = cache is not None and cache.enabled
    # Outer-join pads (-1 positions) introduce nulls the parent encoding
    # does not describe; codes only propagate through pure gathers.
    l_pure = propagate and (len(l_idx) == 0 or int(l_idx.min()) >= 0)
    r_pure = propagate and (len(r_idx) == 0 or int(r_idx.min()) >= 0)
    for key in left.order:
        col = _lookup(left, key)
        binding, _, bare = key.rpartition(".")
        out = col.take(l_idx).rename(col.name)
        if l_pure:
            cache.attach_gather(out, col, l_idx)
        merged.bind(out, binding or None)
    for key in right.order:
        col = _lookup(right, key)
        binding, _, bare = key.rpartition(".")
        out = col.take(r_idx).rename(col.name)
        if r_pure:
            cache.attach_gather(out, col, r_idx)
        merged.bind(out, binding or None)
    return merged


def _filter_frame(frame: Frame, mask: np.ndarray, cache=None) -> Frame:
    out = Frame(int(mask.sum()))
    propagate = cache is not None and cache.enabled
    seen: Dict[int, Column] = {}
    for key in frame.order:
        col = _lookup(frame, key)
        if id(col) not in seen:
            filtered = col.filter(mask)
            if propagate:
                cache.attach_filter(filtered, col, mask)
            seen[id(col)] = filtered
        binding, _, _ = key.rpartition(".")
        out.bind(seen[id(col)], binding or None)
    return out


# ---------------------------------------------------------------------------
# WHERE
# ---------------------------------------------------------------------------
def _precompute_subqueries(expr: Optional[ast.Expr], db, context: Dict[int, object]) -> None:
    if expr is None:
        return
    for node in ast.walk(expr):
        if isinstance(node, ast.InSubquery) and ("subq", id(node)) not in context:
            relation = run_query(node.query, db)
            if relation.num_columns != 1:
                raise PlanError("IN subquery must return exactly one column")
            context[("subq", id(node))] = relation.columns()[0].values


def _apply_where(select: ast.Select, db, frame: Frame, context: Dict[int, object]) -> Frame:
    if select.where is None:
        return frame
    _precompute_subqueries(select.where, db, context)
    mask = np.asarray(evaluate(select.where, frame, context), dtype=bool)
    return _filter_frame(frame, mask, getattr(db, "encodings", None))


# ---------------------------------------------------------------------------
# GROUP BY / aggregates
# ---------------------------------------------------------------------------
def _collect_aggregates(select: ast.Select) -> List[ast.FuncCall]:
    """Aggregate calls in output/having/order expressions (not in windows)."""
    found: List[ast.FuncCall] = []

    def visit(expr: ast.Expr) -> None:
        if isinstance(expr, ast.WindowCall):
            return  # window aggregates are handled separately
        if isinstance(expr, ast.FuncCall) and is_aggregate(expr.name):
            found.append(expr)
            return
        for child in _children(expr):
            visit(child)

    for item in select.items:
        visit(item.expr)
    if select.having is not None:
        visit(select.having)
    for order in select.order_by:
        visit(order.expr)
    return found


def _children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.FuncCall):
        return list(expr.args)
    if isinstance(expr, ast.CaseExpr):
        out = [e for pair in expr.whens for e in pair]
        if expr.default is not None:
            out.append(expr.default)
        return out
    if isinstance(expr, ast.InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, (ast.InSubquery, ast.IsNull, ast.Cast)):
        return [expr.operand]
    if isinstance(expr, ast.Between):
        return [expr.operand, expr.low, expr.high]
    return []


def _compute_aggregate(
    call: ast.FuncCall,
    codes: np.ndarray,
    ngroups: int,
    frame: Frame,
    context: Dict[int, object],
) -> np.ndarray:
    name = call.name.lower()
    if name == "count" and call.star:
        return ops.group_count_star(codes, ngroups)
    if not call.args:
        raise PlanError(f"aggregate {name}() needs an argument")
    values = evaluate(call.args[0], frame, context)
    if name == "count" and call.distinct:
        return ops.group_count_distinct(codes, ngroups, values)
    if name == "count":
        return ops.group_count(codes, ngroups, values)
    if name == "sum":
        sums, counts = ops.group_sum(codes, ngroups, values)
        sums[counts == 0] = np.nan
        return sums
    if name == "avg":
        sums, counts = ops.group_sum(codes, ngroups, values)
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts
    if name == "min":
        return ops.group_min(codes, ngroups, values)
    if name == "max":
        return ops.group_max(codes, ngroups, values)
    if name == "median":
        return ops.group_median(codes, ngroups, values)
    if name == "var":
        return ops.group_var(codes, ngroups, values)
    if name == "stddev":
        with np.errstate(invalid="ignore"):
            return np.sqrt(ops.group_var(codes, ngroups, values))
    raise PlanError(f"unsupported aggregate {name!r}")


def _apply_grouping(
    select: ast.Select,
    db,
    frame: Frame,
    context: Dict[int, object],
    aggregates: List[ast.FuncCall],
) -> Frame:
    if select.group_by:
        cache = getattr(db, "encodings", None)
        group_arrays: List[np.ndarray] = []
        parts: List[Tuple[np.ndarray, int, np.ndarray]] = []
        for expr in select.group_by:
            # Grouping keys resolve through the encoding cache when they
            # are plain column references with known provenance (base
            # tables, messages, or gather/filter derivations thereof);
            # anything else pays the classic per-query encode.
            part = None
            if cache is not None and cache.enabled and isinstance(expr, ast.ColumnRef):
                try:
                    encoding = cache.encoding_for(frame.resolve(expr))
                except PlanError:
                    encoding = None
                if encoding is not None:
                    part = encoding.triple()
            array = np.asarray(evaluate(expr, frame, context))
            if part is None:
                part = ops._column_codes(array)
            group_arrays.append(array)
            parts.append(part)
        codes, ngroups, first_idx, _ = ops.factorize_parts(parts)
    else:
        codes = np.zeros(frame.num_rows, dtype=np.int64)
        ngroups = 1
        first_idx = np.zeros(1, dtype=np.int64) if frame.num_rows else np.zeros(0, dtype=np.int64)
        group_arrays = []

    for call in aggregates:
        context[id(call)] = _compute_aggregate(call, codes, ngroups, frame, context)

    grouped = Frame(ngroups)
    rep_by_sql: Dict[str, np.ndarray] = {}
    for expr, array in zip(select.group_by, group_arrays):
        rep = array[first_idx] if len(first_idx) else array[:0]
        col = Column(_expr_name(expr), rep)
        if isinstance(expr, ast.ColumnRef):
            grouped.bind(col, binding=expr.table)
        else:
            grouped.bind(col)
        rep_by_sql[expr.sql()] = rep

    # Non-trivial group-by expressions (e.g. ``k % 2``) are matched to
    # occurrences in the output/order/having expressions by SQL text, so
    # re-evaluating them against the grouped frame is never needed.
    def tag_matches(expr: ast.Expr) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, (ast.ColumnRef, ast.Literal)):
                text = node.sql()
                if text in rep_by_sql and id(node) not in context:
                    context[id(node)] = rep_by_sql[text]

    for item in select.items:
        tag_matches(item.expr)
    for order in select.order_by:
        tag_matches(order.expr)
    if select.having is not None:
        tag_matches(select.having)
    if ngroups and not select.group_by and frame.num_rows == 0:
        # Aggregates over an empty input still yield one row (SQL semantics).
        pass

    if select.having is not None:
        mask = np.asarray(evaluate(select.having, grouped, context), dtype=bool)
        grouped = _filter_frame(grouped, mask)
        for call in aggregates:
            context[id(call)] = np.asarray(context[id(call)])[mask]
    return grouped


def _expr_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return expr.sql()


# ---------------------------------------------------------------------------
# Window functions
# ---------------------------------------------------------------------------
def _compute_windows(select: ast.Select, frame: Frame, context: Dict[int, object]) -> None:
    calls: List[ast.WindowCall] = []

    def visit(expr: ast.Expr) -> None:
        if isinstance(expr, ast.WindowCall):
            calls.append(expr)
            return
        for child in _children(expr):
            visit(child)

    for item in select.items:
        visit(item.expr)
    for order in select.order_by:
        visit(order.expr)

    for call in calls:
        if id(call) in context:
            continue
        name = call.func.name.lower()
        if not is_window_capable(name):
            raise PlanError(f"{name}() is not a supported window function")
        partition_codes = None
        if call.window.partition_by:
            arrays = [np.asarray(evaluate(e, frame, context)) for e in call.window.partition_by]
            partition_codes, _, _, _ = ops.factorize(arrays)
        order_keys = [
            (np.asarray(evaluate(o.expr, frame, context)), o.ascending)
            for o in call.window.order_by
        ]
        values = None
        if call.func.args:
            values = np.asarray(evaluate(call.func.args[0], frame, context))
        context[id(call)] = ops.window_eval(
            name, values, partition_codes, order_keys, frame.num_rows
        )


# ---------------------------------------------------------------------------
# Projection / ORDER BY / LIMIT
# ---------------------------------------------------------------------------
def _make_output_column(name: str, values: np.ndarray) -> Column:
    values = np.asarray(values)
    if values.dtype.kind == "b":
        return Column(name, values.astype(np.int64), ColumnType.INT)
    if values.dtype == object:
        return Column(name, values, ColumnType.STR)
    if values.dtype.kind in ("i", "u"):
        return Column(name, values.astype(np.int64), ColumnType.INT)
    return Column(name, values.astype(np.float64), ColumnType.FLOAT)


def _project(select: ast.Select, frame: Frame, context: Dict[int, object]) -> List[Column]:
    out: List[Column] = []
    for index, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            cols = (
                frame.columns_for_binding(item.expr.table)
                if item.expr.table
                else frame.all_columns()
            )
            out.extend(cols)
            continue
        values = evaluate(item.expr, frame, context)
        out.append(_make_output_column(item.output_name(index), values))
    return out


def _apply_order_limit(
    select: ast.Select,
    frame: Frame,
    context: Dict[int, object],
    out_columns: List[Column],
) -> List[Column]:
    if select.order_by:
        # Prefer output aliases (SQL allows ORDER BY on them); fall back to
        # the pre-projection frame for expressions over source columns.
        out_frame = Frame(len(out_columns[0]) if out_columns else 0)
        for col in out_columns:
            out_frame.bind(col)
        fallback = Frame(out_frame.num_rows)
        for col in out_columns:
            fallback.bind(col)
        if frame.num_rows == fallback.num_rows:
            fallback.merge(frame)
        keys = []
        for order in select.order_by:
            try:
                values = evaluate(order.expr, out_frame, context)
            except PlanError:
                values = evaluate(order.expr, fallback, context)
            keys.append((np.asarray(values), order.ascending))
        idx = ops.sort_indices(keys, out_frame.num_rows)
        out_columns = [c.take(idx) for c in out_columns]
    if select.limit is not None:
        out_columns = [c.take(np.arange(min(select.limit, len(c)))) for c in out_columns]
    return out_columns
