"""The Database facade: parse, plan, execute, profile.

This is the object that stands in for DuckDB / DBMS-X.  JoinBoost's
connector hands it SQL strings; it returns :class:`Relation` results and
keeps a per-query profile (kind, latency, rows) that the Figure 9 census
bench reads back.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import CatalogError, ExecutionError, PlanError
from repro.sql import ast_nodes as ast
from repro.sql.expressions import Frame, evaluate
from repro.sql.parser import parse
from repro.engine import operators as ops
from repro.engine.encodings import EncodingCache
from repro.engine.planner import run_query, run_select, _precompute_subqueries
from repro.engine.result import Relation
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.mvcc import VersionStore
from repro.storage.table import ColumnTable, StorageConfig, Table
from repro.storage.wal import WriteAheadLog


@dataclasses.dataclass
class QueryProfile:
    """One executed statement: text, classification tag, latency, fan-out.

    ``encode_passes``/``encode_seconds`` split the latency into key-encode
    work vs everything else (aggregation, joins, projection): the Figure 9
    census and the encoding-cache CI gate read the split.
    """

    sql: str
    kind: str
    seconds: float
    rows_out: int
    tag: Optional[str] = None
    encode_passes: int = 0
    encode_seconds: float = 0.0
    #: ``time.perf_counter()`` at statement start — two profiles overlap
    #: when their [started, started+seconds) intervals intersect, which is
    #: how the Figure 18 bench measures real inter-query concurrency
    started: float = 0.0


class Database:
    """An embedded single-process database over the storage substrate."""

    def __init__(self, config: Optional[StorageConfig] = None, name: str = "repro"):
        self.name = name
        self.config = config or StorageConfig()
        self.catalog = Catalog()
        self._wal = (
            WriteAheadLog(sync=self.config.wal_sync) if self.config.wal else None
        )
        self._mvcc = VersionStore() if self.config.mvcc else None
        self.profiles: List[QueryProfile] = []
        self.profiling_enabled = True
        # Encoded-key cache: dictionary codes per (table uid, column,
        # version).  Immutable base relations factorize once per training
        # run instead of once per query; version stamps make any mutation
        # (UPDATE, replace_column, swap, WAL/MVCC write) detectable.
        self.encodings = EncodingCache()
        # Plan cache: statement ASTs keyed by SQL text (DBMSes cache plans;
        # JoinBoost re-issues structurally identical statements constantly).
        self._parse_cache: Dict[str, List[ast.Statement]] = {}

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.exists(name)

    def register(self, table: Table, replace: bool = False) -> None:
        """Register an externally built table (e.g. the DP fact dataframe)."""
        if replace:
            self._forget_encodings(table.name)
        self.catalog.create(table, replace=replace)

    def create_table(
        self,
        name: str,
        data: Dict[str, Union[np.ndarray, Sequence]],
        config: Optional[StorageConfig] = None,
        replace: bool = False,
    ) -> Table:
        """Create a table from a column-name -> array mapping."""
        columns = [Column(col_name, np.asarray(values)) for col_name, values in data.items()]
        table = Table.from_columns(
            name, columns, config or self.config, wal=self._wal, mvcc=self._mvcc
        )
        if replace:
            self._forget_encodings(name)
        self.catalog.create(table, replace=replace)
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        self._forget_encodings(name)
        self.catalog.drop(name, if_exists=if_exists)

    def rename_table(self, old: str, new: str) -> None:
        # Renames preserve table identity (uid): cached encodings stay
        # valid because the data did not move.
        self.catalog.rename(old, new)

    def _forget_encodings(self, name: str) -> None:
        """Release cache entries of a table that is about to disappear."""
        if self.catalog.exists(name):
            self.encodings.invalidate_table(self.catalog.get(name).uid)

    def replace_column(
        self,
        table_name: str,
        column_name: str,
        values,
        strategy: str = "swap",
    ) -> None:
        """Replace one stored column (residual updates, Section 5.4)."""
        from repro.engine.update import embedded_column_update

        embedded_column_update(self, table_name, column_name, values, strategy)

    def temp_name(self, hint: str = "t") -> str:
        return self.catalog.temp_name(hint)

    def cleanup_temp(self, keep: Optional[List[str]] = None) -> int:
        """Drop JoinBoost's temporary tables (the safety contract)."""
        keep_keys = {k.lower() for k in (keep or [])}
        for temp in self.catalog.temp_names():
            if temp.lower() not in keep_keys:
                self._forget_encodings(temp)
        return self.catalog.drop_temp(keep=keep)

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, sql_text: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Execute one or more ``;``-separated statements.

        Returns the result of the final SELECT, or ``None`` if the last
        statement was DDL/DML.
        """
        statements = self._parse_cache.get(sql_text)
        if statements is None:
            statements = parse(sql_text)
            if len(self._parse_cache) > 4096:
                self._parse_cache.clear()
            self._parse_cache[sql_text] = statements
        result: Optional[Relation] = None
        for statement in statements:
            result = self._run_statement(statement, tag=tag)
        return result

    def execute_read(self, sql_text: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Concurrency-safe read entry point (the Connector protocol's
        ``execute_read``).  The embedded engine executes in-process over
        immutable-during-a-round storage: SELECTs from worker threads
        read shared arrays, the encoding cache's get-or-compute is
        lock-protected, and catalog mutations are serialized behind the
        catalog lock — so the plain execute path is the read path.
        """
        return self.execute(sql_text, tag=tag)

    def _run_statement(self, statement: ast.Statement, tag: Optional[str]) -> Optional[Relation]:
        start = time.perf_counter()
        encode_before = ops.encode_census()
        kind = type(statement).__name__
        result: Optional[Relation] = None
        if isinstance(statement, (ast.Select, ast.UnionAll)):
            result = run_query(statement, self)
        elif isinstance(statement, ast.CreateTableAs):
            relation = run_query(statement.query, self)
            table = Table.from_columns(
                statement.name, relation.columns(), self.config,
                wal=self._wal, mvcc=self._mvcc,
            )
            if statement.replace:
                self._forget_encodings(statement.name)
            self.catalog.create(table, replace=statement.replace)
        elif isinstance(statement, ast.DropTable):
            self._forget_encodings(statement.name)
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
        elif isinstance(statement, ast.Update):
            rows_affected = self._run_update(statement)
        else:
            raise ExecutionError(f"unsupported statement {kind}")
        elapsed = time.perf_counter() - start
        if self.profiling_enabled:
            encode_after = ops.encode_census()
            if result is not None:
                rows_out = result.num_rows
            elif isinstance(statement, ast.Update):
                # Rows the WHERE matched — the frontier census reads this
                # to price narrow label updates by rows actually moved.
                rows_out = rows_affected
            else:
                rows_out = 0
            self.profiles.append(
                QueryProfile(
                    sql=statement.sql(),
                    kind=kind,
                    seconds=elapsed,
                    rows_out=rows_out,
                    tag=tag,
                    encode_passes=int(
                        encode_after["passes"] - encode_before["passes"]
                    ),
                    encode_seconds=float(
                        encode_after["seconds"] - encode_before["seconds"]
                    ),
                    started=start,
                )
            )
        return result

    def _run_update(self, statement: ast.Update) -> int:
        from repro.engine.update import apply_masked_update

        table = self.catalog.get(statement.table)
        frame = Frame(table.num_rows())
        for col in table.columns():
            frame.bind(col, binding=statement.table)
        context: Dict[int, object] = {"__encodings__": self.encodings}
        mask = None
        affected = table.num_rows()
        if statement.where is not None:
            _precompute_subqueries(statement.where, self, context)
            mask = np.asarray(evaluate(statement.where, frame, context), dtype=bool)
            affected = int(mask.sum())
        # Evaluate every assignment against the pre-update row values
        # before applying any write (SQL semantics: `SET a = b, b = a`
        # swaps) — the in-place masked write below would otherwise feed
        # already-updated values into later assignments.
        computed = []
        for col_name, expr in statement.assignments:
            _precompute_subqueries(expr, self, context)
            new_values = np.asarray(evaluate(expr, frame, context))
            if new_values.ndim == 0:
                new_values = np.full(table.num_rows(), new_values[()])
            elif mask is not None:
                # Snapshot: evaluate() may return a view of a stored
                # array that a later in-place masked write would mutate.
                new_values = new_values.copy()
            computed.append((col_name, new_values))
        for col_name, new_values in computed:
            if mask is not None:
                # Partial write: only the matched rows are touched (the
                # in-place fast path when the storage config allows it).
                apply_masked_update(
                    self, statement.table, col_name, new_values, mask
                )
            else:
                old = table.column(col_name)
                table.set_column(Column(col_name, new_values, old.ctype))
        return affected

    # ------------------------------------------------------------------
    # Profiling helpers (Figure 9)
    # ------------------------------------------------------------------
    def reset_profiles(self) -> None:
        self.profiles.clear()

    def profiles_by_tag(self) -> Dict[str, List[QueryProfile]]:
        grouped: Dict[str, List[QueryProfile]] = {}
        for profile in self.profiles:
            grouped.setdefault(profile.tag or "untagged", []).append(profile)
        return grouped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def table_names(self) -> List[str]:
        return self.catalog.names()

    def nbytes(self) -> int:
        return sum(t.nbytes() for t in self.catalog)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={len(self.catalog)})"
