"""TPC-H-style schema with large dimension tables.

``lineitem`` is the fact; ``orders`` is a *large* dimension (¼ of the
fact's cardinality, as in TPC-H), which is exactly the configuration the
paper's Appendix C flags: messages between the fact table and big
dimensions are large and expensive, so JoinBoost's advantage narrows —
the Figure 17c/d shape.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph
from repro.storage.table import StorageConfig


def tpch(
    db: Optional[Database] = None,
    sf: float = 1.0,
    rows_per_sf: int = 60_000,
    noise: float = 0.1,
    seed: int = 13,
    fact_config: Optional[StorageConfig] = None,
) -> Tuple[Database, JoinGraph]:
    """Generate the scaled TPC-H-style graph; returns (db, join graph)."""
    rng = np.random.default_rng(seed)
    db = db or Database()
    n = max(4, int(round(sf * rows_per_sf)))

    num_orders = max(2, n // 4)  # the large dimension
    num_parts = max(2, n // 30)
    num_suppliers = max(2, n // 100)
    num_customers = max(2, n // 15)
    num_nations = 25

    f_orders = rng.integers(1, 1001, num_orders).astype(np.float64)
    f_part = rng.integers(1, 1001, num_parts).astype(np.float64)
    f_supplier = rng.integers(1, 1001, num_suppliers).astype(np.float64)
    f_customer = rng.integers(1, 1001, num_customers).astype(np.float64)
    f_nation = rng.integers(1, 1001, num_nations).astype(np.float64)

    order_key = rng.integers(0, num_orders, n)
    part_key = rng.integers(0, num_parts, n)
    supp_key = rng.integers(0, num_suppliers, n)
    order_customer = rng.integers(0, num_customers, num_orders)
    customer_nation = rng.integers(0, num_nations, num_customers)

    quantity = rng.integers(1, 51, n).astype(np.float64)
    y = (
        f_part[part_key] * np.log(f_part[part_key]) / 700.0
        - 10.0 * f_orders[order_key] / 100.0
        + (f_supplier[supp_key] / 100.0) ** 2
        + f_customer[order_customer[order_key]] / 50.0
        + np.log(f_nation[customer_nation[order_customer[order_key]]]) * 20.0
        + quantity
        + rng.normal(0.0, noise, n)
    )

    db.create_table(
        "lineitem",
        {
            "order_key": order_key,
            "part_key": part_key,
            "supp_key": supp_key,
            "quantity": quantity,
            "extended_price": y,
        },
        config=fact_config,
    )
    db.create_table(
        "orders",
        {"order_key": np.arange(num_orders), "cust_key": order_customer,
         "f_orders": f_orders},
    )
    db.create_table(
        "part", {"part_key": np.arange(num_parts), "f_part": f_part}
    )
    db.create_table(
        "supplier", {"supp_key": np.arange(num_suppliers), "f_supplier": f_supplier}
    )
    db.create_table(
        "customer",
        {"cust_key": np.arange(num_customers), "nation_key": customer_nation,
         "f_customer": f_customer},
    )
    db.create_table(
        "nation", {"nation_key": np.arange(num_nations), "f_nation": f_nation}
    )

    graph = JoinGraph(db)
    graph.add_relation("lineitem", features=["quantity"], y="extended_price",
                       is_fact=True)
    graph.add_relation("orders", features=["f_orders"])
    graph.add_relation("part", features=["f_part"])
    graph.add_relation("supplier", features=["f_supplier"])
    graph.add_relation("customer", features=["f_customer"])
    graph.add_relation("nation", features=["f_nation"])
    graph.add_edge("lineitem", "orders", ["order_key"])
    graph.add_edge("lineitem", "part", ["part_key"])
    graph.add_edge("lineitem", "supplier", ["supp_key"])
    graph.add_edge("orders", "customer", ["cust_key"])
    graph.add_edge("customer", "nation", ["nation_key"])
    return db, graph
