"""Synthetic dataset generators mirroring the paper's workloads.

All generators follow the paper's own preprocessing (Section 6,
"Preprocess"): predictive features are imputed as random integers in
[1, 1000] on each dimension table, and the target is the paper's footnote
7 formula over the transformed features, so trees are balanced and timing
comparisons are fair.  Scales default to laptop size and are parameters.
"""

from repro.datasets.favorita import favorita
from repro.datasets.tpcds import tpcds
from repro.datasets.tpch import tpch
from repro.datasets.imdb import imdb
from repro.datasets.synthetic import residual_update_microbenchmark, star_schema

__all__ = [
    "favorita",
    "tpcds",
    "tpch",
    "imdb",
    "star_schema",
    "residual_update_microbenchmark",
]
