"""Synthetic workloads: the §5.3.2 microbenchmark and a generic star.

``residual_update_microbenchmark`` builds the paper's pilot-study fact
table F(s, d, c1..ck): ``s`` is the semi-ring column being rewritten,
``d ∈ [1, 10K]`` the join key, and ``ck`` extra columns that CREATE-k
must copy.  The i-th of 8 leaves owns keys (1250·(i−1), 1250·i] and a
random prediction — exactly the Figure 5 setup.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph
from repro.storage.table import StorageConfig


@dataclasses.dataclass
class ResidualWorkload:
    """Everything the Figure 5 bench needs."""

    db: Database
    fact_name: str
    num_rows: int
    key_domain: int
    leaf_ranges: List[Tuple[int, int]]  # (low exclusive, high inclusive)
    leaf_predictions: List[float]


def residual_update_microbenchmark(
    num_rows: int = 1_000_000,
    num_extra_columns: int = 0,
    num_leaves: int = 8,
    key_domain: int = 10_000,
    seed: int = 3,
    config: Optional[StorageConfig] = None,
) -> ResidualWorkload:
    """Build F(s, d, c1..ck) under the requested storage backend."""
    rng = np.random.default_rng(seed)
    db = Database(config=config)
    data = {
        "s": rng.normal(size=num_rows),
        "d": rng.integers(1, key_domain + 1, num_rows),
    }
    for k in range(num_extra_columns):
        data[f"c{k + 1}"] = rng.normal(size=num_rows)
    db.create_table("f", data, config=config)

    width = key_domain // num_leaves
    leaf_ranges = [(width * i, width * (i + 1)) for i in range(num_leaves)]
    leaf_predictions = [float(p) for p in rng.random(num_leaves)]
    return ResidualWorkload(
        db=db,
        fact_name="f",
        num_rows=num_rows,
        key_domain=key_domain,
        leaf_ranges=leaf_ranges,
        leaf_predictions=leaf_predictions,
    )


def star_schema(
    db: Optional[Database] = None,
    num_fact_rows: int = 5_000,
    num_dims: int = 3,
    dim_size: int = 50,
    noise: float = 0.1,
    seed: int = 0,
    with_nulls: bool = False,
) -> Tuple[Database, JoinGraph]:
    """A small generic star schema for tests and the quickstart example."""
    rng = np.random.default_rng(seed)
    db = db or Database()
    keys = [rng.integers(0, dim_size, num_fact_rows) for _ in range(num_dims)]
    dim_feats = [rng.normal(size=dim_size) * 10 for _ in range(num_dims)]
    local = rng.integers(0, 100, num_fact_rows).astype(np.float64)
    y = local * 0.05 + rng.normal(0.0, noise, num_fact_rows)
    for j in range(num_dims):
        y = y + (j + 1) * dim_feats[j][keys[j]]

    fact = {"local_feat": local, "target": y}
    for j in range(num_dims):
        fact[f"k{j}"] = keys[j]
    db.create_table("fact", fact)
    for j in range(num_dims):
        feature = dim_feats[j].copy()
        if with_nulls:
            feature[rng.random(dim_size) < 0.1] = np.nan
        db.create_table(
            f"dim{j}", {f"k{j}": np.arange(dim_size), f"dfeat{j}": feature}
        )

    graph = JoinGraph(db)
    graph.add_relation("fact", features=["local_feat"], y="target", is_fact=True)
    for j in range(num_dims):
        graph.add_relation(f"dim{j}", features=[f"dfeat{j}"])
        graph.add_edge("fact", f"dim{j}", [f"k{j}"])
    return db, graph
