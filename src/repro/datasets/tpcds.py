"""TPC-DS-style snowflake, parameterized by scale factor.

``store_sales`` is the fact table; ``date_dim``, ``store``, ``item``,
``customer`` and ``promotion`` are dimensions, with ``customer`` chaining
to ``household`` (a two-hop snowflake arm like TPC-DS's
customer_demographics).  The fact cardinality scales linearly with ``sf``
(rows_per_sf defaults to laptop scale); features are imputed per the
paper's preprocessing and ``num_features`` widens the schema toward the
paper's 145-feature configuration.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph
from repro.storage.table import StorageConfig

_DIMS = ("date_dim", "store", "item", "customer", "promotion", "household")


def tpcds(
    db: Optional[Database] = None,
    sf: float = 1.0,
    rows_per_sf: int = 20_000,
    num_features: int = 18,
    noise: float = 0.1,
    seed: int = 11,
    fact_config: Optional[StorageConfig] = None,
) -> Tuple[Database, JoinGraph]:
    """Generate the scaled snowflake; returns (db, join graph)."""
    rng = np.random.default_rng(seed)
    db = db or Database()
    n = max(1, int(round(sf * rows_per_sf)))

    sizes = {
        "date_dim": 365,
        "store": 50,
        "item": 1_000,
        "customer": 2_000,
        "promotion": 100,
        "household": 500,
    }
    imputed = {
        name: rng.integers(1, 1001, size).astype(np.float64)
        for name, size in sizes.items()
    }

    keys = {
        "date_dim": rng.integers(0, sizes["date_dim"], n),
        "store": rng.integers(0, sizes["store"], n),
        "item": rng.integers(0, sizes["item"], n),
        "customer": rng.integers(0, sizes["customer"], n),
        "promotion": rng.integers(0, sizes["promotion"], n),
    }
    customer_household = rng.integers(0, sizes["household"], sizes["customer"])

    y = (
        imputed["item"][keys["item"]] * np.log(imputed["item"][keys["item"]]) / 700.0
        + np.log(imputed["promotion"][keys["promotion"]]) * 50.0
        - 10.0 * imputed["date_dim"][keys["date_dim"]] / 100.0
        - 10.0 * imputed["store"][keys["store"]] / 100.0
        + (imputed["customer"][keys["customer"]] / 100.0) ** 2
        + imputed["household"][customer_household[keys["customer"]]] / 50.0
        + rng.normal(0.0, noise, n)
    )

    dim_tables = {
        "date_dim": {"date_sk": np.arange(sizes["date_dim"]),
                     "f_date_dim": imputed["date_dim"]},
        "store": {"store_sk": np.arange(sizes["store"]),
                  "f_store": imputed["store"]},
        "item": {"item_sk": np.arange(sizes["item"]), "f_item": imputed["item"]},
        "customer": {"customer_sk": np.arange(sizes["customer"]),
                     "household_sk": customer_household,
                     "f_customer": imputed["customer"]},
        "promotion": {"promo_sk": np.arange(sizes["promotion"]),
                      "f_promotion": imputed["promotion"]},
        "household": {"household_sk": np.arange(sizes["household"]),
                      "f_household": imputed["household"]},
    }
    dim_features = {name: [f"f_{name}"] for name in _DIMS}

    extra = max(0, num_features - len(_DIMS))
    for i in range(extra):
        dim = _DIMS[i % len(_DIMS)]
        column = f"x_{dim}_{i}"
        dim_tables[dim][column] = rng.integers(
            1, 1001, sizes[dim]
        ).astype(np.float64)
        dim_features[dim].append(column)

    db.create_table(
        "store_sales",
        {
            "date_sk": keys["date_dim"],
            "store_sk": keys["store"],
            "item_sk": keys["item"],
            "customer_sk": keys["customer"],
            "promo_sk": keys["promotion"],
            "net_profit": y,
        },
        config=fact_config,
    )
    for name, data in dim_tables.items():
        db.create_table(name, data)

    graph = JoinGraph(db)
    graph.add_relation("store_sales", y="net_profit", is_fact=True)
    for name in _DIMS:
        graph.add_relation(name, features=dim_features[name])
    graph.add_edge("store_sales", "date_dim", ["date_sk"])
    graph.add_edge("store_sales", "store", ["store_sk"])
    graph.add_edge("store_sales", "item", ["item_sk"])
    graph.add_edge("store_sales", "customer", ["customer_sk"])
    graph.add_edge("store_sales", "promotion", ["promo_sk"])
    graph.add_edge("customer", "household", ["household_sk"])
    return db, graph
