"""The Favorita grocery-forecasting schema (the paper's Figure 7).

Sales is the fact table with N-to-1 edges to Items, Stores, Dates and
Trans(actions); Oil hangs off Dates.  Following the paper's preprocessing,
each dimension carries one imputed predictive feature ``f_<dim>`` drawn
from [1, 1000] and the target is footnote 7's formula::

    y = f_items·log(f_items) + log(f_oil) − 10·f_dates − 10·f_stores
        + f_trans²

Additional non-predictive features (for the Figure 10 width sweep) are
spread round-robin across the dimensions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph
from repro.storage.table import StorageConfig

DIMS = ("items", "stores", "dates", "trans", "oil")


def favorita(
    db: Optional[Database] = None,
    num_fact_rows: int = 100_000,
    num_items: int = 500,
    num_stores: int = 54,
    num_dates: int = 400,
    num_trans: int = 2_000,
    num_extra_features: int = 8,
    noise: float = 0.1,
    seed: int = 7,
    fact_config: Optional[StorageConfig] = None,
    key_dtype: str = "int",
) -> Tuple[Database, JoinGraph]:
    """Generate the Favorita star schema; returns (db, join graph).

    The default 13 features (5 imputed + 8 extra) match the paper's
    Favorita configuration; ``num_extra_features`` widens it for the
    scalability sweeps.  ``key_dtype="str"`` renders every join key as a
    natural string key (``"it_00042"`` style) — the raw Favorita dump
    joins on string-typed dates and item codes, and string keys exercise
    the expensive dictionary-encode path that the engine's encoded-key
    cache exists to amortize.
    """
    if key_dtype not in ("int", "str"):
        raise ValueError(f"key_dtype must be 'int' or 'str', got {key_dtype!r}")
    rng = np.random.default_rng(seed)
    db = db or Database()

    def key_domain(prefix: str, size: int) -> np.ndarray:
        """The dimension's primary-key vector in the requested dtype."""
        if key_dtype == "str":
            return np.array([f"{prefix}_{i:05d}" for i in range(size)],
                            dtype=object)
        return np.arange(size)

    f_items = rng.integers(1, 1001, num_items).astype(np.float64)
    f_stores = rng.integers(1, 1001, num_stores).astype(np.float64)
    f_dates = rng.integers(1, 1001, num_dates).astype(np.float64)
    f_trans = rng.integers(1, 1001, num_trans).astype(np.float64)
    f_oil = rng.integers(1, 1001, num_dates).astype(np.float64)

    item_id = rng.integers(0, num_items, num_fact_rows)
    store_id = rng.integers(0, num_stores, num_fact_rows)
    date_id = rng.integers(0, num_dates, num_fact_rows)
    trans_id = rng.integers(0, num_trans, num_fact_rows)

    # Footnote 7, rescaled so every term has comparable variance.
    y = (
        f_items[item_id] * np.log(f_items[item_id]) / 700.0
        + np.log(f_oil[date_id]) * 100.0
        - 10.0 * f_dates[date_id] / 100.0
        - 10.0 * f_stores[store_id] / 100.0
        + (f_trans[trans_id] / 100.0) ** 2
        + rng.normal(0.0, noise, num_fact_rows)
    )

    item_keys = key_domain("it", num_items)
    store_keys = key_domain("st", num_stores)
    date_keys = key_domain("dt", num_dates)
    trans_keys = key_domain("tr", num_trans)
    dim_tables = {
        "items": {"item_id": item_keys, "f_items": f_items},
        "stores": {"store_id": store_keys, "f_stores": f_stores},
        "dates": {"date_id": date_keys, "f_dates": f_dates},
        "trans": {"trans_id": trans_keys, "f_trans": f_trans},
        "oil": {"date_id": date_keys, "f_oil": f_oil},
    }
    dim_features = {name: [f"f_{name}"] for name in DIMS}

    # Non-predictive extra features, round-robin over the dimensions.
    sizes = {
        "items": num_items, "stores": num_stores, "dates": num_dates,
        "trans": num_trans, "oil": num_dates,
    }
    for i in range(num_extra_features):
        dim = DIMS[i % len(DIMS)]
        name = f"x_{dim}_{i}"
        dim_tables[dim][name] = rng.integers(1, 1001, sizes[dim]).astype(np.float64)
        dim_features[dim].append(name)

    db.create_table(
        "sales",
        {
            "item_id": item_keys[item_id],
            "store_id": store_keys[store_id],
            "date_id": date_keys[date_id],
            "trans_id": trans_keys[trans_id],
            "unit_sales": y,
        },
        config=fact_config,
    )
    for name, data in dim_tables.items():
        db.create_table(name, data)

    graph = JoinGraph(db)
    graph.add_relation("sales", y="unit_sales", is_fact=True)
    for name in DIMS:
        graph.add_relation(name, features=dim_features[name])
    graph.add_edge("sales", "items", ["item_id"])
    graph.add_edge("sales", "stores", ["store_id"])
    graph.add_edge("sales", "dates", ["date_id"])
    graph.add_edge("sales", "trans", ["trans_id"])
    graph.add_edge("dates", "oil", ["date_id"])
    return db, graph
