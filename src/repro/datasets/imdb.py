"""IMDB-style galaxy schema (the paper's Figure 3).

Five fact tables (``cast_info``, ``movie_comp``, ``movie_info``,
``movie_key``, ``person_info``) hub through the shared dimensions
``movie`` and ``person``: every pair of facts is M-N through a hub, so
the full join explodes multiplicatively — the >1 TB blow-up that makes
single-table libraries unusable and motivates Clustered Predicate Trees.

The target lives on ``cast_info`` (the largest fact, as in the paper's
1 GB Cast_Info).  The expected CPT clusters are::

    cast_info:   {cast_info, movie, person}
    movie_comp:  {movie_comp, comp, movie}
    movie_info:  {movie_info, info_type, movie}
    movie_key:   {movie_key, key_type, movie}
    person_info: {person_info, person}
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph


def imdb(
    db: Optional[Database] = None,
    num_movies: int = 500,
    num_persons: int = 800,
    rows_per_fact: int = 20_000,
    noise: float = 0.1,
    seed: int = 17,
) -> Tuple[Database, JoinGraph]:
    """Generate the galaxy schema; returns (db, join graph)."""
    rng = np.random.default_rng(seed)
    db = db or Database()
    num_comps, num_info_types, num_key_types = 100, 40, 20

    m_feat = rng.integers(1, 1001, num_movies).astype(np.float64)
    p_feat = rng.integers(1, 1001, num_persons).astype(np.float64)
    comp_feat = rng.integers(1, 1001, num_comps).astype(np.float64)
    it_feat = rng.integers(1, 1001, num_info_types).astype(np.float64)
    kt_feat = rng.integers(1, 1001, num_key_types).astype(np.float64)

    # cast_info: the target-bearing fact.
    ci_movie = rng.integers(0, num_movies, rows_per_fact)
    ci_person = rng.integers(0, num_persons, rows_per_fact)
    ci_role = rng.integers(1, 1001, rows_per_fact).astype(np.float64)
    y = (
        m_feat[ci_movie] / 50.0
        + np.log(p_feat[ci_person]) * 30.0
        + (ci_role / 100.0) ** 2
        + rng.normal(0.0, noise, rows_per_fact)
    )

    db.create_table(
        "cast_info",
        {
            "movie_id": ci_movie,
            "person_id": ci_person,
            "role_feat": ci_role,
            "rating": y,
        },
    )
    db.create_table("movie", {"movie_id": np.arange(num_movies), "m_feat": m_feat})
    db.create_table("person", {"person_id": np.arange(num_persons), "p_feat": p_feat})

    mc_n = rows_per_fact // 4
    db.create_table(
        "movie_comp",
        {
            "movie_id": rng.integers(0, num_movies, mc_n),
            "comp_id": rng.integers(0, num_comps, mc_n),
            "mc_feat": rng.integers(1, 1001, mc_n).astype(np.float64),
        },
    )
    db.create_table("comp", {"comp_id": np.arange(num_comps), "comp_feat": comp_feat})

    mi_n = rows_per_fact // 4
    db.create_table(
        "movie_info",
        {
            "movie_id": rng.integers(0, num_movies, mi_n),
            "info_type_id": rng.integers(0, num_info_types, mi_n),
            "mi_val": rng.integers(1, 1001, mi_n).astype(np.float64),
        },
    )
    db.create_table(
        "info_type",
        {"info_type_id": np.arange(num_info_types), "it_feat": it_feat},
    )

    mk_n = rows_per_fact // 4
    db.create_table(
        "movie_key",
        {
            "movie_id": rng.integers(0, num_movies, mk_n),
            "key_type_id": rng.integers(0, num_key_types, mk_n),
            "mk_feat": rng.integers(1, 1001, mk_n).astype(np.float64),
        },
    )
    db.create_table(
        "key_type",
        {"key_type_id": np.arange(num_key_types), "kt_feat": kt_feat},
    )

    pi_n = rows_per_fact // 4
    db.create_table(
        "person_info",
        {
            "person_id": rng.integers(0, num_persons, pi_n),
            "pi_val": rng.integers(1, 1001, pi_n).astype(np.float64),
        },
    )

    graph = JoinGraph(db)
    graph.add_relation("cast_info", features=["role_feat"], y="rating", is_fact=True)
    graph.add_relation("movie", features=["m_feat"])
    graph.add_relation("person", features=["p_feat"])
    graph.add_relation("movie_comp", features=["mc_feat"], is_fact=True)
    graph.add_relation("comp", features=["comp_feat"])
    graph.add_relation("movie_info", features=["mi_val"], is_fact=True)
    graph.add_relation("info_type", features=["it_feat"])
    graph.add_relation("movie_key", features=["mk_feat"], is_fact=True)
    graph.add_relation("key_type", features=["kt_feat"])
    graph.add_relation("person_info", features=["pi_val"], is_fact=True)

    graph.add_edge("cast_info", "movie", ["movie_id"])
    graph.add_edge("cast_info", "person", ["person_id"])
    graph.add_edge("movie_comp", "movie", ["movie_id"])
    graph.add_edge("movie_comp", "comp", ["comp_id"])
    graph.add_edge("movie_info", "movie", ["movie_id"])
    graph.add_edge("movie_info", "info_type", ["info_type_id"])
    graph.add_edge("movie_key", "movie", ["movie_id"])
    graph.add_edge("movie_key", "key_type", ["key_type_id"])
    graph.add_edge("person_info", "person", ["person_id"])
    return db, graph
