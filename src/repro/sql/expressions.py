"""Expression evaluation over column frames.

A :class:`Frame` binds column names (qualified ``alias.col`` and, when
unambiguous, bare ``col``) to :class:`~repro.storage.column.Column` vectors
of equal length.  :func:`evaluate` interprets an expression AST against a
frame and returns a NumPy array.

Null semantics follow SQL closely enough for the JoinBoost workload:
numeric nulls are NaN (comparisons with NaN are false, arithmetic
propagates), string nulls are ``None`` objects, and ``IS NULL`` checks the
mask/NaN.  Aggregate and window calls never reach the evaluator — the
planner rewrites them to placeholder column references first — so finding
one here is a planner bug and raises.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.exceptions import ExecutionError, PlanError
from repro.sql import ast_nodes as ast
from repro.sql.functions import call_scalar, is_aggregate
from repro.storage.column import Column, ColumnType


class Frame:
    """A bag of equal-length named columns with SQL-style name resolution."""

    def __init__(self, num_rows: int = 0):
        self.num_rows = num_rows
        self._by_qualified: Dict[str, Column] = {}
        self._by_bare: Dict[str, Column] = {}
        self._ambiguous: Set[str] = set()
        self.order: list[str] = []

    @staticmethod
    def from_columns(columns: Iterable[Column], binding: Optional[str] = None) -> "Frame":
        cols = list(columns)
        frame = Frame(len(cols[0]) if cols else 0)
        for col in cols:
            frame.bind(col, binding)
        return frame

    def bind(self, column: Column, binding: Optional[str] = None) -> None:
        """Register a column under its bare name and optional qualifier."""
        if self.num_rows == 0 and not self.order:
            self.num_rows = len(column)
        if len(column) != self.num_rows:
            raise ExecutionError(
                f"column {column.name!r} length {len(column)} != frame {self.num_rows}"
            )
        bare = column.name.lower()
        if binding:
            self._by_qualified[f"{binding.lower()}.{bare}"] = column
        if bare in self._by_bare and self._by_bare[bare] is not column:
            self._ambiguous.add(bare)
        self._by_bare[bare] = column
        key = f"{binding.lower()}.{bare}" if binding else bare
        if key not in self.order:
            self.order.append(key)

    def merge(self, other: "Frame") -> None:
        """Merge bindings from another frame (post-join)."""
        for key, col in other._by_qualified.items():
            self._by_qualified[key] = col
        for bare, col in other._by_bare.items():
            if bare in self._by_bare and self._by_bare[bare] is not col:
                self._ambiguous.add(bare)
            self._by_bare[bare] = col
        self._ambiguous |= other._ambiguous
        self.order.extend(k for k in other.order if k not in self.order)

    def resolve(self, ref: ast.ColumnRef) -> Column:
        bare = ref.name.lower()
        if ref.table:
            key = f"{ref.table.lower()}.{bare}"
            col = self._by_qualified.get(key)
            if col is None:
                # Fall back to bare lookup: JoinBoost sometimes qualifies
                # columns of derived tables whose alias was rewritten.
                col = self._by_bare.get(bare)
            if col is None:
                raise PlanError(f"unknown column {ref.sql()!r}")
            return col
        if bare in self._ambiguous:
            raise PlanError(f"ambiguous column {ref.name!r}")
        col = self._by_bare.get(bare)
        if col is None:
            raise PlanError(f"unknown column {ref.name!r}")
        return col

    def has(self, ref: ast.ColumnRef) -> bool:
        try:
            self.resolve(ref)
            return True
        except PlanError:
            return False

    def columns_for_binding(self, binding: str) -> list[Column]:
        prefix = binding.lower() + "."
        return [c for k, c in self._by_qualified.items() if k.startswith(prefix)]

    def all_columns(self) -> list[Column]:
        seen: list[Column] = []
        ids = set()
        for key in self.order:
            # Explicit None check: empty columns are falsy.
            col = self._by_qualified.get(key)
            if col is None:
                col = self._by_bare.get(key)
            if col is not None and id(col) not in ids:
                ids.add(id(col))
                seen.append(col)
        return seen


def _to_numeric(values: np.ndarray) -> np.ndarray:
    if values.dtype == object:
        raise ExecutionError("string value used in numeric context")
    if values.dtype.kind == "b":
        return values.astype(np.float64)
    return values


def _as_bool(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "b":
        return values
    if values.dtype == object:
        return np.array([bool(v) for v in values])
    with np.errstate(invalid="ignore"):
        return np.nan_to_num(values) != 0


def _column_values(col: Column) -> np.ndarray:
    if col.ctype is ColumnType.STR:
        values = col.values
        if col.valid is not None:
            values = values.copy()
            values[~col.valid] = None
        return values
    if col.valid is not None or col.ctype is ColumnType.FLOAT:
        return col.as_float()
    return col.values


def _encoded_membership(
    operand: ast.Expr, values, frame: Frame, context: dict
) -> Optional[np.ndarray]:
    """Semi-join ``IN (SELECT ...)`` membership via cached dictionary codes.

    ``np.isin`` over a full key column is an O(n log n) sort per
    predicate; with the column's cached encoding the same answer is
    membership over the *dictionary* (cardinality-sized) gathered back
    through the per-row codes.  Returns ``None`` — fall back to the plain
    scan — when no cache is active, the operand is not a plain column, or
    the operand contains nulls (the scan's null semantics are kept
    bit-for-bit by not re-implementing them here).
    """
    cache = context.get("__encodings__")
    if cache is None or not isinstance(operand, ast.ColumnRef):
        return None
    try:
        col = frame.resolve(operand)
    except PlanError:
        return None
    encoding = cache.encoding_for(col)
    if encoding is None or encoding.has_null:
        return None
    uniques = encoding.uniques
    probe = np.asarray(values)
    if uniques.dtype.kind in ("U", "S"):
        if probe.dtype == object:
            probe = probe[~np.asarray(probe == None, dtype=bool)]  # noqa: E711
            probe = probe.astype("U") if len(probe) else np.zeros(0, dtype="U1")
        elif probe.dtype.kind not in ("U", "S"):
            return None
    elif probe.dtype == object or probe.dtype.kind in ("U", "S"):
        return None
    present = np.zeros(encoding.cardinality, dtype=bool)
    present[: len(uniques)] = np.isin(uniques, probe)
    return present[encoding.codes]


def _broadcast(value, n: int) -> np.ndarray:
    arr = np.asarray(value)
    if arr.ndim == 0:
        if arr.dtype.kind in ("U", "S"):
            out = np.empty(n, dtype=object)
            out[:] = str(arr)
            return out
        return np.full(n, arr)
    return arr


def evaluate(expr: ast.Expr, frame: Frame, context: Optional[dict] = None) -> np.ndarray:
    """Evaluate ``expr`` row-wise against ``frame``.

    ``context`` carries pre-computed values for sub-expressions the planner
    resolved ahead of time (``IN (SELECT ...)`` value sets, aggregate and
    window placeholders), keyed by the id of the AST node.
    """
    context = context or {}
    n = frame.num_rows

    if id(expr) in context:
        return _broadcast(context[id(expr)], n)

    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return np.full(n, np.nan)
        if isinstance(expr.value, str):
            out = np.empty(n, dtype=object)
            out[:] = expr.value
            return out
        if isinstance(expr.value, bool):
            return np.full(n, expr.value, dtype=bool)
        return np.full(n, expr.value, dtype=np.float64 if isinstance(expr.value, float) else np.int64)

    if isinstance(expr, ast.ColumnRef):
        return _column_values(frame.resolve(expr))

    if isinstance(expr, ast.UnaryOp):
        inner = evaluate(expr.operand, frame, context)
        if expr.op == "NOT":
            return ~_as_bool(inner)
        value = _to_numeric(inner)
        return -value if expr.op == "-" else +value

    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, frame, context)

    if isinstance(expr, ast.FuncCall):
        if is_aggregate(expr.name):
            raise PlanError(
                f"aggregate {expr.name}() reached the row evaluator; "
                "it must be rewritten by the planner"
            )
        args = [evaluate(a, frame, context) for a in expr.args]
        return call_scalar(expr.name, *args)

    if isinstance(expr, ast.WindowCall):
        raise PlanError("window function reached the row evaluator")

    if isinstance(expr, ast.CaseExpr):
        return _eval_case(expr, frame, context)

    if isinstance(expr, ast.InList):
        operand = evaluate(expr.operand, frame, context)
        result = np.zeros(n, dtype=bool)
        for item in expr.items:
            value = evaluate(item, frame, context)
            with np.errstate(invalid="ignore"):
                result |= operand == value
        return ~result if expr.negated else result

    if isinstance(expr, ast.InSubquery):
        values = context.get(("subq", id(expr)))
        if values is None:
            raise PlanError("IN subquery was not pre-computed by the planner")
        result = _encoded_membership(expr.operand, values, frame, context)
        if result is None:
            operand = evaluate(expr.operand, frame, context)
            result = np.isin(operand, values)
        return ~result if expr.negated else result

    if isinstance(expr, ast.IsNull):
        operand = evaluate(expr.operand, frame, context)
        if operand.dtype == object:
            nulls = np.array([v is None for v in operand])
        elif operand.dtype.kind == "f":
            nulls = np.isnan(operand)
        else:
            nulls = np.zeros(n, dtype=bool)
        return ~nulls if expr.negated else nulls

    if isinstance(expr, ast.Between):
        operand = _to_numeric(evaluate(expr.operand, frame, context))
        low = _to_numeric(evaluate(expr.low, frame, context))
        high = _to_numeric(evaluate(expr.high, frame, context))
        with np.errstate(invalid="ignore"):
            result = (operand >= low) & (operand <= high)
        return ~result if expr.negated else result

    if isinstance(expr, ast.Cast):
        inner = evaluate(expr.operand, frame, context)
        if expr.target == "INT":
            with np.errstate(invalid="ignore"):
                return np.where(np.isnan(inner.astype(np.float64)), np.nan,
                                np.trunc(inner.astype(np.float64)))
        if expr.target == "FLOAT":
            return inner.astype(np.float64)
        out = np.empty(n, dtype=object)
        out[:] = [None if v is None else str(v) for v in inner]
        return out

    if isinstance(expr, ast.Star):
        raise PlanError("'*' is only valid in a SELECT list")

    raise PlanError(f"unsupported expression node {type(expr).__name__}")


def _eval_binary(expr: ast.BinaryOp, frame: Frame, context: dict) -> np.ndarray:
    op = expr.op
    if op in ("AND", "OR"):
        left = _as_bool(evaluate(expr.left, frame, context))
        right = _as_bool(evaluate(expr.right, frame, context))
        return (left & right) if op == "AND" else (left | right)

    left = evaluate(expr.left, frame, context)
    right = evaluate(expr.right, frame, context)

    if op == "||":
        return np.array(
            [None if a is None or b is None else str(a) + str(b)
             for a, b in zip(left, right)],
            dtype=object,
        )

    if op in ("=", "!=", "<", "<=", ">", ">="):
        if left.dtype == object or right.dtype == object:
            lstr = left if left.dtype == object else left.astype(object)
            rstr = right if right.dtype == object else right.astype(object)
            if op == "=":
                return np.array([a is not None and b is not None and a == b
                                 for a, b in zip(lstr, rstr)])
            if op == "!=":
                return np.array([a is not None and b is not None and a != b
                                 for a, b in zip(lstr, rstr)])
            comparator = {"<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
                          ">": lambda a, b: a > b, ">=": lambda a, b: a >= b}[op]
            return np.array([a is not None and b is not None and comparator(a, b)
                             for a, b in zip(lstr, rstr)])
        lnum, rnum = _to_numeric(left), _to_numeric(right)
        with np.errstate(invalid="ignore"):
            if op == "=":
                return lnum == rnum
            if op == "!=":
                valid = ~(np.isnan(lnum.astype(np.float64)) | np.isnan(rnum.astype(np.float64)))
                return (lnum != rnum) & valid
            if op == "<":
                return lnum < rnum
            if op == "<=":
                return lnum <= rnum
            if op == ">":
                return lnum > rnum
            return lnum >= rnum

    lnum, rnum = _to_numeric(left), _to_numeric(right)
    with np.errstate(all="ignore"):
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "/":
            out = np.divide(
                lnum.astype(np.float64), rnum.astype(np.float64),
            )
            return out
        if op == "%":
            return np.mod(lnum, rnum)
    raise PlanError(f"unsupported operator {op!r}")


def _eval_case(expr: ast.CaseExpr, frame: Frame, context: dict) -> np.ndarray:
    n = frame.num_rows
    result: Optional[np.ndarray] = None
    decided = np.zeros(n, dtype=bool)
    for cond, outcome in expr.whens:
        mask = _as_bool(evaluate(cond, frame, context)) & ~decided
        value = evaluate(outcome, frame, context)
        if result is None:
            if value.dtype == object:
                result = np.empty(n, dtype=object)
            else:
                result = np.full(n, np.nan, dtype=np.float64)
        if result.dtype == object:
            result[mask] = value[mask]
        else:
            result[mask] = value.astype(np.float64)[mask]
        decided |= mask
    default = (
        evaluate(expr.default, frame, context)
        if expr.default is not None
        else None
    )
    if result is None:
        result = np.full(n, np.nan)
    remaining = ~decided
    if default is not None and remaining.any():
        if result.dtype == object:
            result[remaining] = default[remaining]
        else:
            result[remaining] = default.astype(np.float64)[remaining]
    return result


def referenced_columns(expr: ast.Expr) -> Set[str]:
    """Bare lower-case names of all column references in ``expr``."""
    return {
        node.name.lower()
        for node in ast.walk(expr)
        if isinstance(node, ast.ColumnRef)
    }
