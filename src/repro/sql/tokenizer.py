"""SQL lexer.

Produces a flat list of :class:`Token` objects.  Keywords are recognized
case-insensitively and normalized to upper case; identifiers keep their
original spelling (the engine lower-cases at resolution time).  Double-quoted
identifiers and single-quoted string literals are supported, as are ``--``
line comments and ``/* */`` block comments.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List

from repro.exceptions import TokenizeError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING", "LIMIT",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON", "USING",
    "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "BETWEEN", "LIKE",
    "CASE", "WHEN", "THEN", "ELSE", "END",
    "CREATE", "TABLE", "DROP", "IF", "EXISTS", "REPLACE", "OR",
    "UPDATE", "SET", "INSERT", "INTO", "VALUES", "DELETE",
    "DISTINCT", "ALL", "ASC", "DESC", "OVER", "PARTITION",
    "UNION", "TRUE", "FALSE", "CAST", "ROWS", "UNBOUNDED", "PRECEDING",
    "CURRENT", "ROW", "NULLS", "FIRST", "LAST",
}

_OPERATORS = ["<>", "!=", "<=", ">=", "||", "==", "=", "<", ">", "+", "-", "*", "/", "%"]
_PUNCT = set("(),.;")


@dataclasses.dataclass
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        if self.type is not ttype:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`TokenizeError` on bad input."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise TokenizeError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            chunks: List[str] = []
            while True:
                if j >= n:
                    raise TokenizeError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped ''
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), i))
            i = j + 1
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise TokenizeError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
