"""AST node definitions for the JoinBoost SQL subset.

Every node is a frozen-ish dataclass with a ``sql()`` pretty-printer; the
parser and the pretty-printer round-trip (property-tested), which keeps the
generated SQL debuggable and portable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""

    def sql(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.sql()


@dataclasses.dataclass
class Literal(Expr):
    value: Union[int, float, str, bool, None]

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclasses.dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    @property
    def qualified(self) -> str:
        return self.sql().lower()


@dataclasses.dataclass
class Star(Expr):
    table: Optional[str] = None

    def sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclasses.dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr

    def sql(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand.sql()})"
        return f"{self.op}({self.operand.sql()})"


@dataclasses.dataclass
class BinaryOp(Expr):
    op: str  # arithmetic, comparison, AND/OR
    left: Expr
    right: Expr

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclasses.dataclass
class FuncCall(Expr):
    name: str
    args: List[Expr]
    distinct: bool = False
    star: bool = False  # COUNT(*)

    def sql(self) -> str:
        if self.star:
            inner = "*"
        else:
            inner = ", ".join(a.sql() for a in self.args)
            if self.distinct:
                inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


@dataclasses.dataclass
class WindowSpec:
    partition_by: List[Expr] = dataclasses.field(default_factory=list)
    order_by: List["OrderItem"] = dataclasses.field(default_factory=list)

    def sql(self) -> str:
        parts = []
        if self.partition_by:
            parts.append("PARTITION BY " + ", ".join(e.sql() for e in self.partition_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.sql() for o in self.order_by))
        return "OVER (" + " ".join(parts) + ")"


@dataclasses.dataclass
class WindowCall(Expr):
    func: FuncCall
    window: WindowSpec

    def sql(self) -> str:
        return f"{self.func.sql()} {self.window.sql()}"


@dataclasses.dataclass
class CaseExpr(Expr):
    whens: List[Tuple[Expr, Expr]]
    default: Optional[Expr] = None

    def sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.sql()} THEN {result.sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclasses.dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr]
    negated: bool = False

    def sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        inner = ", ".join(i.sql() for i in self.items)
        return f"({self.operand.sql()} {op} ({inner}))"


@dataclasses.dataclass
class InSubquery(Expr):
    operand: Expr
    query: "Query"
    negated: bool = False

    def sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {op} ({self.query.sql()}))"


@dataclasses.dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def sql(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {op})"


@dataclasses.dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {op} {self.low.sql()} AND {self.high.sql()})"


@dataclasses.dataclass
class Cast(Expr):
    operand: Expr
    target: str  # 'INT' | 'FLOAT' | 'STR'

    def sql(self) -> str:
        return f"CAST({self.operand.sql()} AS {self.target})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def sql(self) -> str:
        if self.alias:
            return f"{self.expr.sql()} AS {self.alias}"
        return self.expr.sql()

    def output_name(self, index: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"col{index}"


@dataclasses.dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True

    def sql(self) -> str:
        return f"{self.expr.sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclasses.dataclass
class TableRef:
    """A named table or a derived table (subquery) with an optional alias."""

    name: Optional[str] = None
    subquery: Optional["Query"] = None
    alias: Optional[str] = None

    def sql(self) -> str:
        base = f"({self.subquery.sql()})" if self.subquery is not None else str(self.name)
        return f"{base} AS {self.alias}" if self.alias else base

    @property
    def binding(self) -> Optional[str]:
        return self.alias or self.name


@dataclasses.dataclass
class Join:
    table: TableRef
    kind: str = "INNER"  # INNER | LEFT | RIGHT | FULL | CROSS
    condition: Optional[Expr] = None
    using: Optional[List[str]] = None

    def sql(self) -> str:
        head = f"{self.kind} JOIN {self.table.sql()}"
        if self.using:
            return f"{head} USING ({', '.join(self.using)})"
        if self.condition is not None:
            return f"{head} ON {self.condition.sql()}"
        return head


@dataclasses.dataclass
class Select:
    items: List[SelectItem]
    source: Optional[TableRef] = None
    joins: List[Join] = dataclasses.field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = dataclasses.field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = dataclasses.field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    def sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.sql() for i in self.items))
        if self.source is not None:
            parts.append("FROM " + self.source.sql())
        for join in self.joins:
            parts.append(join.sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclasses.dataclass
class UnionAll:
    """Bag union of two or more SELECTs (the batched split-query shape).

    Only ``UNION ALL`` is modelled: the Factorizer's per-feature branches
    are disjoint by construction (each carries a distinct discriminator
    literal), so distinct-union semantics are never needed.
    """

    selects: List[Select]

    def sql(self) -> str:
        return " UNION ALL ".join(s.sql() for s in self.selects)


#: anything that produces rows: a plain SELECT or a UNION ALL of them
Query = Union[Select, "UnionAll"]


@dataclasses.dataclass
class CreateTableAs:
    name: str
    query: Query
    replace: bool = False

    def sql(self) -> str:
        head = "CREATE OR REPLACE TABLE" if self.replace else "CREATE TABLE"
        return f"{head} {self.name} AS {self.query.sql()}"


@dataclasses.dataclass
class DropTable:
    name: str
    if_exists: bool = False

    def sql(self) -> str:
        mid = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {mid}{self.name}"


@dataclasses.dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None

    def sql(self) -> str:
        sets = ", ".join(f"{c} = {e.sql()}" for c, e in self.assignments)
        tail = f" WHERE {self.where.sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{tail}"


Statement = Union[Select, UnionAll, CreateTableAs, DropTable, Update]


def walk(expr: Expr):
    """Yield ``expr`` and all nested sub-expressions (pre-order)."""
    yield expr
    children: Sequence[Expr] = ()
    if isinstance(expr, UnaryOp):
        children = (expr.operand,)
    elif isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, FuncCall):
        children = tuple(expr.args)
    elif isinstance(expr, WindowCall):
        children = tuple(expr.func.args) + tuple(expr.window.partition_by) + tuple(
            o.expr for o in expr.window.order_by
        )
    elif isinstance(expr, CaseExpr):
        pairs = [e for pair in expr.whens for e in pair]
        if expr.default is not None:
            pairs.append(expr.default)
        children = tuple(pairs)
    elif isinstance(expr, (InList,)):
        children = (expr.operand, *expr.items)
    elif isinstance(expr, InSubquery):
        children = (expr.operand,)
    elif isinstance(expr, (IsNull, Cast)):
        children = (expr.operand,)
    elif isinstance(expr, Between):
        children = (expr.operand, expr.low, expr.high)
    for child in children:
        yield from walk(child)
