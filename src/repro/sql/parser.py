"""Recursive-descent parser for the JoinBoost SQL subset.

Grammar (informal)::

    statement   := query | create | drop | update
    query       := select (UNION ALL select)*
    create      := CREATE [OR REPLACE] TABLE name AS query
    drop        := DROP TABLE [IF EXISTS] name
    update      := UPDATE name SET col '=' expr (',' col '=' expr)* [WHERE expr]
    select      := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
                   [LIMIT int]
    join        := [INNER|LEFT [OUTER]|RIGHT [OUTER]|FULL [OUTER]|CROSS] JOIN
                   table_ref (ON expr | USING '(' names ')')
    table_ref   := name [[AS] alias] | '(' select ')' [[AS] alias]

Expressions support arithmetic, comparisons, AND/OR/NOT, IN (list or
subquery), IS [NOT] NULL, BETWEEN, CASE, CAST, function calls and window
functions with ``OVER (PARTITION BY ... ORDER BY ...)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.tokenizer import Token, TokenType, tokenize

_JOIN_KINDS = {"INNER", "LEFT", "RIGHT", "FULL", "CROSS"}
_COMPARISONS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[str]:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in words:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(f"expected {word}, got {self.peek().value!r}", self.peek())

    def accept_punct(self, char: str) -> bool:
        if self.peek().matches(TokenType.PUNCT, char):
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise ParseError(f"expected {char!r}, got {self.peek().value!r}", self.peek())

    def accept_operator(self, *ops: str) -> Optional[str]:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ops:
            self.advance()
            return token.value
        return None

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        raise ParseError(f"expected identifier, got {token.value!r}", token)

    # -- statements --------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.matches(TokenType.KEYWORD, "SELECT"):
            return self.parse_query()
        if token.matches(TokenType.KEYWORD, "CREATE"):
            return self.parse_create()
        if token.matches(TokenType.KEYWORD, "DROP"):
            return self.parse_drop()
        if token.matches(TokenType.KEYWORD, "UPDATE"):
            return self.parse_update()
        raise ParseError(f"unsupported statement start {token.value!r}", token)

    def parse_create(self) -> ast.CreateTableAs:
        self.expect_keyword("CREATE")
        replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            replace = True
        self.expect_keyword("TABLE")
        name = self.expect_identifier()
        self.expect_keyword("AS")
        query = self.parse_query()
        return ast.CreateTableAs(name=name, query=query, replace=replace)

    def parse_drop(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(name=self.expect_identifier(), if_exists=if_exists)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, ast.Expr]] = []
        while True:
            column = self.expect_identifier()
            if not self.accept_operator("=", "=="):
                raise ParseError("expected '=' in UPDATE SET", self.peek())
            assignments.append((column, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table=table, assignments=assignments, where=where)

    def parse_query(self) -> "ast.Query":
        """A SELECT, or a ``UNION ALL`` chain of SELECTs.

        The engine supports bag union only (the Factorizer's batched
        split queries never need duplicate elimination); a bare ``UNION``
        is rejected rather than silently reinterpreted.
        """
        first = self.parse_select()
        if not self.peek().matches(TokenType.KEYWORD, "UNION"):
            return first
        selects = [first]
        while self.accept_keyword("UNION"):
            if not self.accept_keyword("ALL"):
                raise ParseError(
                    "only UNION ALL is supported (bag union)", self.peek()
                )
            selects.append(self.parse_select())
        return ast.UnionAll(selects=selects)

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        self.accept_keyword("ALL")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        source = None
        joins: List[ast.Join] = []
        if self.accept_keyword("FROM"):
            source = self.parse_table_ref()
            while True:
                join = self.try_parse_join()
                if join is None:
                    break
                joins.append(join)
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: List[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.type is not TokenType.NUMBER:
                raise ParseError("LIMIT expects a number", token)
            limit = int(float(token.value))
        return ast.Select(
            items=items, source=source, joins=joins, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, distinct=distinct,
        )

    def parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.matches(TokenType.OPERATOR, "*"):
            self.advance()
            return ast.SelectItem(expr=ast.Star())
        if (
            token.type is TokenType.IDENT
            and self.peek(1).matches(TokenType.PUNCT, ".")
            and self.peek(2).matches(TokenType.OPERATOR, "*")
        ):
            self.advance(), self.advance(), self.advance()
            return ast.SelectItem(expr=ast.Star(table=token.value))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_identifier()
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        if self.accept_keyword("NULLS"):
            if not (self.accept_keyword("FIRST") or self.accept_keyword("LAST")):
                raise ParseError("expected FIRST or LAST after NULLS", self.peek())
        return ast.OrderItem(expr=expr, ascending=ascending)

    def parse_table_ref(self) -> ast.TableRef:
        if self.accept_punct("("):
            subquery = self.parse_query()
            self.expect_punct(")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_identifier()
            elif self.peek().type is TokenType.IDENT:
                alias = self.expect_identifier()
            return ast.TableRef(subquery=subquery, alias=alias)
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_identifier()
        return ast.TableRef(name=name, alias=alias)

    def try_parse_join(self) -> Optional[ast.Join]:
        token = self.peek()
        kind = "INNER"
        consumed = 0
        if token.type is TokenType.KEYWORD and token.value in _JOIN_KINDS:
            kind = token.value
            consumed = 1
            if self.peek(1).matches(TokenType.KEYWORD, "OUTER"):
                consumed = 2
            if not self.peek(consumed).matches(TokenType.KEYWORD, "JOIN"):
                return None
            for _ in range(consumed):
                self.advance()
            self.advance()  # JOIN
        elif token.matches(TokenType.KEYWORD, "JOIN"):
            self.advance()
        elif self.accept_punct(","):
            # Comma join = cross product with the condition in WHERE.
            return ast.Join(table=self.parse_table_ref(), kind="CROSS")
        else:
            return None
        table = self.parse_table_ref()
        if kind == "CROSS":
            return ast.Join(table=table, kind=kind)
        if self.accept_keyword("USING"):
            self.expect_punct("(")
            names = [self.expect_identifier()]
            while self.accept_punct(","):
                names.append(self.expect_identifier())
            self.expect_punct(")")
            return ast.Join(table=table, kind=kind, using=names)
        self.expect_keyword("ON")
        return ast.Join(table=table, kind=kind, condition=self.parse_expr())

    # -- expressions -------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        op = self.accept_operator(*_COMPARISONS)
        if op is not None:
            normalized = {"==": "=", "<>": "!="}.get(op, op)
            return ast.BinaryOp(normalized, left, self.parse_additive())
        negated = False
        if self.peek().matches(TokenType.KEYWORD, "NOT") and self.peek(1).value in (
            "IN",
            "BETWEEN",
            "LIKE",
        ):
            self.advance()
            negated = True
        if self.accept_keyword("IS"):
            is_not = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_not)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.peek().matches(TokenType.KEYWORD, "SELECT"):
                query = self.parse_query()
                self.expect_punct(")")
                return ast.InSubquery(left, query, negated=negated)
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InList(left, items, negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated=negated)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self.parse_unary())

    def parse_unary(self) -> ast.Expr:
        op = self.accept_operator("-", "+")
        if op is not None:
            return ast.UnaryOp(op, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self.parse_case()
        if token.matches(TokenType.KEYWORD, "CAST"):
            return self.parse_cast()
        if self.accept_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self.parse_identifier_expr()
        raise ParseError(f"unexpected token {token.value!r}", token)

    def parse_case(self) -> ast.CaseExpr:
        self.expect_keyword("CASE")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((cond, self.parse_expr()))
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self.peek())
        return ast.CaseExpr(whens=whens, default=default)

    def parse_cast(self) -> ast.Cast:
        self.expect_keyword("CAST")
        self.expect_punct("(")
        operand = self.parse_expr()
        self.expect_keyword("AS")
        target = self.expect_identifier().upper()
        self.expect_punct(")")
        aliases = {
            "INT": "INT", "INTEGER": "INT", "BIGINT": "INT",
            "FLOAT": "FLOAT", "DOUBLE": "FLOAT", "REAL": "FLOAT",
            "VARCHAR": "STR", "TEXT": "STR", "STR": "STR",
        }
        if target not in aliases:
            raise ParseError(f"unsupported CAST target {target}", self.peek())
        return ast.Cast(operand, aliases[target])

    def parse_identifier_expr(self) -> ast.Expr:
        name = self.expect_identifier()
        if self.accept_punct("."):
            column = self.expect_identifier()
            return ast.ColumnRef(name=column, table=name)
        if self.peek().matches(TokenType.PUNCT, "("):
            return self.parse_func_call(name)
        return ast.ColumnRef(name=name)

    def parse_func_call(self, name: str) -> ast.Expr:
        self.expect_punct("(")
        star = False
        distinct = False
        args: List[ast.Expr] = []
        if self.peek().matches(TokenType.OPERATOR, "*"):
            self.advance()
            star = True
        elif not self.peek().matches(TokenType.PUNCT, ")"):
            distinct = bool(self.accept_keyword("DISTINCT"))
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        call = ast.FuncCall(name=name.lower(), args=args, distinct=distinct, star=star)
        if self.accept_keyword("OVER"):
            self.expect_punct("(")
            spec = ast.WindowSpec()
            if self.accept_keyword("PARTITION"):
                self.expect_keyword("BY")
                spec.partition_by.append(self.parse_expr())
                while self.accept_punct(","):
                    spec.partition_by.append(self.parse_expr())
            if self.accept_keyword("ORDER"):
                self.expect_keyword("BY")
                spec.order_by.append(self.parse_order_item())
                while self.accept_punct(","):
                    spec.order_by.append(self.parse_order_item())
            # Accept and ignore the default ROWS frame clause.
            if self.accept_keyword("ROWS"):
                while not self.peek().matches(TokenType.PUNCT, ")"):
                    self.advance()
            self.expect_punct(")")
            return ast.WindowCall(func=call, window=spec)
        return call


def parse(sql_text: str) -> List[ast.Statement]:
    """Parse one or more ``;``-separated statements."""
    parser = _Parser(tokenize(sql_text))
    statements: List[ast.Statement] = []
    while parser.peek().type is not TokenType.EOF:
        if parser.accept_punct(";"):
            continue
        statements.append(parser.parse_statement())
    if not statements:
        raise ParseError("empty statement", parser.peek())
    return statements


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the compiler)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser.peek().type is not TokenType.EOF:
        raise ParseError(f"trailing tokens after expression: {parser.peek().value!r}",
                         parser.peek())
    return expr
