"""Scalar, aggregate and window function registry.

Scalar functions evaluate element-wise over NumPy arrays with NaN-as-NULL
semantics.  Aggregate functions are *not* evaluated here — the planner
extracts them and computes them per group with the fast paths in
``repro.engine.operators`` — but the registry declares which names are
aggregates (and which of those are valid window functions) so the planner
can classify calls.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import ExecutionError

AGGREGATE_FUNCTIONS = {"sum", "count", "avg", "min", "max", "median", "stddev", "var"}
WINDOW_FUNCTIONS = {"sum", "count", "avg", "min", "max", "row_number"}


def _binary(fn: Callable) -> Callable:
    def wrapper(*args: np.ndarray) -> np.ndarray:
        if len(args) != 2:
            raise ExecutionError(f"{fn.__name__} expects 2 arguments")
        return fn(args[0], args[1])

    return wrapper


def _unary(fn: Callable) -> Callable:
    def wrapper(*args: np.ndarray) -> np.ndarray:
        if len(args) != 1:
            raise ExecutionError(f"{fn.__name__} expects 1 argument")
        return fn(args[0])

    return wrapper


def _coalesce(*args: np.ndarray) -> np.ndarray:
    if not args:
        raise ExecutionError("coalesce expects at least one argument")
    out = np.array(args[0], dtype=np.float64, copy=True)
    for arg in args[1:]:
        mask = np.isnan(out)
        if not mask.any():
            break
        out[mask] = np.asarray(arg, dtype=np.float64)[mask] if np.ndim(arg) else arg
    return out

def _nullif(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.array(a, dtype=np.float64, copy=True)
    out[np.asarray(a) == np.asarray(b)] = np.nan
    return out


def _least(*args: np.ndarray) -> np.ndarray:
    out = np.asarray(args[0], dtype=np.float64)
    for arg in args[1:]:
        out = np.fmin(out, np.asarray(arg, dtype=np.float64))
    return out


def _greatest(*args: np.ndarray) -> np.ndarray:
    out = np.asarray(args[0], dtype=np.float64)
    for arg in args[1:]:
        out = np.fmax(out, np.asarray(arg, dtype=np.float64))
    return out


def _safe_log(x: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(np.asarray(x, dtype=np.float64))


def _power(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(all="ignore"):
        return np.power(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "abs": _unary(np.abs),
    "sign": _unary(np.sign),
    "sqrt": _unary(lambda x: np.sqrt(np.asarray(x, dtype=np.float64))),
    "exp": _unary(lambda x: np.exp(np.asarray(x, dtype=np.float64))),
    "log": _unary(_safe_log),
    "ln": _unary(_safe_log),
    "log2": _unary(lambda x: _safe_log(x) / np.log(2.0)),
    "log10": _unary(lambda x: _safe_log(x) / np.log(10.0)),
    "floor": _unary(np.floor),
    "ceil": _unary(np.ceil),
    "ceiling": _unary(np.ceil),
    "round": _unary(np.round),
    "power": _binary(_power),
    "pow": _binary(_power),
    "mod": _binary(lambda a, b: np.mod(a, b)),
    "coalesce": _coalesce,
    "ifnull": _coalesce,
    "nullif": _binary(_nullif),
    "least": _least,
    "greatest": _greatest,
}


def call_scalar(name: str, *args: np.ndarray) -> np.ndarray:
    """Evaluate a registered scalar function, NaN-propagating."""
    try:
        fn = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise ExecutionError(f"unknown function {name!r}") from None
    with np.errstate(all="ignore"):
        return fn(*args)


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATE_FUNCTIONS


def is_window_capable(name: str) -> bool:
    return name.lower() in WINDOW_FUNCTIONS
