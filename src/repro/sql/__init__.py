"""SQL substrate: tokenizer, AST, parser, expression compiler, functions.

JoinBoost's portability claim (criterion C1) rests on emitting a small,
vendor-neutral SQL subset: non-nested SPJA queries with simple algebra
expressions, window functions for prefix sums, ``CASE`` projections, ``IN``
semi-join predicates, ``CREATE TABLE AS`` and ``UPDATE``.  This package
implements exactly that subset so the library's generated SQL strings are
parsed and executed the same way a DBMS would.
"""

from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_expression
from repro.sql import ast_nodes as ast

__all__ = ["Token", "TokenType", "tokenize", "parse", "parse_expression", "ast"]
