"""Storage substrate: columns, codecs, tables, WAL, MVCC and the catalog.

This package plays the role DuckDB / DBMS-X play in the paper.  The pieces
the paper's Section 5.3.2 identifies as residual-update bottlenecks —
write-ahead logging, multi-version concurrency control, and columnar
compression — are implemented as real mechanisms (file appends, version
copies, encode/decode work) so that enabling or bypassing them changes
measured cost for mechanical reasons, exactly as in the paper.
"""

from repro.storage.column import Column, ColumnType
from repro.storage.compression import (
    Codec,
    DictionaryCodec,
    PlainCodec,
    RLECodec,
    codec_for,
)
from repro.storage.table import (
    ColumnTable,
    ExternalColumnStore,
    RowTable,
    StorageConfig,
    Table,
)
from repro.storage.catalog import Catalog
from repro.storage.wal import WriteAheadLog
from repro.storage.mvcc import VersionStore

__all__ = [
    "Column",
    "ColumnType",
    "Codec",
    "PlainCodec",
    "RLECodec",
    "DictionaryCodec",
    "codec_for",
    "Table",
    "ColumnTable",
    "RowTable",
    "ExternalColumnStore",
    "StorageConfig",
    "Catalog",
    "WriteAheadLog",
    "VersionStore",
]
