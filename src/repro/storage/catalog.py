"""Catalog: the name -> table mapping plus temp-namespace management.

JoinBoost (Section 5.1, "Safety") never modifies user data: every
intermediate (lifted relations, messages, updated fact tables) is created in
a temporary namespace with a unique prefix and dropped after training unless
the user keeps them for provenance.  The catalog implements that contract.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterator, List, Optional

from repro.exceptions import CatalogError
from repro.storage.table import Table

TEMP_PREFIX = "jb_tmp_"


class Catalog:
    """Holds tables by (case-insensitive) name.

    Registration, drops, renames and temp-name minting are serialized
    behind one re-entrant lock: the inter-query scheduler's worker
    threads materialize message temps concurrently, and two CREATEs (or
    a CREATE racing a rename) must observe a consistent name map.
    Point reads (``get``/``exists``) stay lock-free — a dict lookup is
    atomic under the GIL, and readers only name tables that are
    immutable for the duration of their round.
    """

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._temp_counter = itertools.count()
        self._lock = threading.RLock()

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def create(self, table: Table, replace: bool = False) -> None:
        key = self._key(table.name)
        with self._lock:
            if key in self._tables and not replace:
                raise CatalogError(f"table {table.name!r} already exists")
            self._tables[key] = table

    def get(self, name: str) -> Table:
        try:
            return self._tables[self._key(name)]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def drop(self, name: str, if_exists: bool = False) -> None:
        key = self._key(name)
        with self._lock:
            if key not in self._tables:
                if if_exists:
                    return
                raise CatalogError(f"no such table: {name!r}")
            del self._tables[key]

    def exists(self, name: str) -> bool:
        return self._key(name) in self._tables

    def rename(self, old: str, new: str) -> None:
        with self._lock:
            table = self.get(old)
            if self.exists(new):
                raise CatalogError(f"table {new!r} already exists")
            self.drop(old)
            table.name = new
            self.create(table)

    def names(self) -> List[str]:
        return sorted(t.name for t in self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(list(self._tables.values()))

    def __len__(self) -> int:
        return len(self._tables)

    # -- temporary namespace (JoinBoost safety contract) ----------------
    def temp_name(self, hint: str = "t") -> str:
        """Mint a fresh name in the temporary namespace."""
        return f"{TEMP_PREFIX}{hint}_{next(self._temp_counter)}"

    def temp_names(self) -> List[str]:
        return [t.name for t in self._tables.values() if t.name.startswith(TEMP_PREFIX)]

    def drop_temp(self, keep: Optional[List[str]] = None) -> int:
        """Drop all temporary tables; returns how many were dropped."""
        keep_keys = {self._key(k) for k in (keep or [])}
        with self._lock:
            doomed = [
                key
                for key, table in self._tables.items()
                if table.name.startswith(TEMP_PREFIX) and key not in keep_keys
            ]
            for key in doomed:
                del self._tables[key]
        return len(doomed)
