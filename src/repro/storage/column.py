"""Typed, NumPy-backed column vectors with null support.

A :class:`Column` is the unit of storage for :class:`~repro.storage.table.
ColumnTable`.  It wraps a NumPy array plus an optional validity mask, and
knows how to cast incoming Python/NumPy data to one of three logical types:

* ``INT``    — 64-bit integers (dictionary-encoded strings land here too)
* ``FLOAT``  — 64-bit floats
* ``STR``    — NumPy object arrays of Python strings

Nulls are represented with a boolean validity mask (``True`` = present) so
integer columns can hold nulls without sentinel values.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import StorageError

#: Monotonic stamps for column payloads.  Every distinct column payload in
#: the process gets a unique stamp, so ``(table uid, column name, version)``
#: identifies immutable data and caches keyed on it can detect staleness
#: instead of assuming it (see :mod:`repro.engine.encodings`).
_VERSION_COUNTER = itertools.count(1)


def next_version() -> int:
    """Mint a fresh monotonic version stamp."""
    return next(_VERSION_COUNTER)


class ColumnType(enum.Enum):
    """Logical column types supported by the engine."""

    INT = "INT"
    FLOAT = "FLOAT"
    STR = "STR"

    @staticmethod
    def infer(values: np.ndarray) -> "ColumnType":
        """Infer the logical type of a NumPy array."""
        kind = values.dtype.kind
        if kind in ("i", "u", "b"):
            return ColumnType.INT
        if kind == "f":
            return ColumnType.FLOAT
        if kind in ("U", "S", "O"):
            return ColumnType.STR
        raise StorageError(f"unsupported dtype {values.dtype!r}")


_NUMPY_DTYPE = {
    ColumnType.INT: np.int64,
    ColumnType.FLOAT: np.float64,
    ColumnType.STR: object,
}


class Column:
    """A single typed vector of values with an optional validity mask.

    Besides the payload, a column carries cache-coherence metadata:

    * ``version`` — a process-wide monotonic stamp minted at construction.
      Derivations that do not change the data (``rename``, ``copy``) keep
      the stamp; anything that builds new values gets a new one.
    * ``source`` — ``(table uid, column name, version)`` provenance set by
      the owning table's read path, or ``None`` for derived columns.
    * ``enc`` — a transient encoding hint for the query engine: either a
      :class:`~repro.engine.encodings.ColumnEncoding` or a lazy
      ``("gather"|"filter", parent Column, index/mask)`` tuple that lets
      post-join/post-filter columns reuse their parent's dictionary codes.
    """

    __slots__ = ("name", "ctype", "values", "valid", "version", "source", "enc")

    def __init__(
        self,
        name: str,
        values: Iterable,
        ctype: Optional[ColumnType] = None,
        valid: Optional[np.ndarray] = None,
    ):
        array = np.asarray(values)
        if array.ndim == 0:
            array = array.reshape(1)
        if array.ndim != 1:
            raise StorageError(f"column {name!r} must be one-dimensional")
        if ctype is None:
            ctype = ColumnType.infer(array)
        target = _NUMPY_DTYPE[ctype]
        if ctype is ColumnType.FLOAT:
            array = array.astype(np.float64, copy=False)
            if valid is None:
                nan_mask = np.isnan(array)
                valid = ~nan_mask if nan_mask.any() else None
        elif ctype is ColumnType.INT:
            if array.dtype.kind == "f":
                # Floats assigned to an INT column keep NaN as nulls.
                nan_mask = np.isnan(array)
                if nan_mask.any():
                    filled = np.where(nan_mask, 0.0, array)
                    array = filled.astype(np.int64)
                    if valid is None:
                        valid = ~nan_mask
                else:
                    array = array.astype(np.int64)
            else:
                array = array.astype(np.int64, copy=False)
        else:
            array = array.astype(object, copy=False)
        self.name = name
        self.ctype = ctype
        self.values = array
        self.valid = valid
        self.version: int = next_version()
        self.source: Optional[Tuple[int, str, int]] = None
        # ColumnEncoding, a lazy ("gather"/"filter", parent, index) hint,
        # or None — typed loosely to keep storage free of engine imports.
        self.enc: object = None

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.value}, n={len(self)})"

    # ------------------------------------------------------------------
    # Derivation helpers — all return new Column objects (copy-on-write).
    # ------------------------------------------------------------------
    def take(self, indexes: np.ndarray) -> "Column":
        """Gather rows by position; positions of -1 become null (outer join)."""
        if len(self.values) == 0 and len(indexes):
            # Outer join against an empty side: every position is a pad.
            if self.ctype is ColumnType.STR:
                values = np.full(len(indexes), None, dtype=object)
            elif self.ctype is ColumnType.FLOAT:
                values = np.full(len(indexes), np.nan)
            else:
                values = np.zeros(len(indexes), dtype=np.int64)
            return Column(
                self.name, values, self.ctype,
                np.zeros(len(indexes), dtype=bool),
            )
        if len(indexes) and indexes.min() < 0:
            missing = indexes < 0
            safe = np.where(missing, 0, indexes)
            values = self.values[safe]
            valid = np.ones(len(indexes), dtype=bool)
            if self.valid is not None:
                valid &= self.valid[safe]
            valid &= ~missing
            if self.ctype is ColumnType.FLOAT:
                values = values.copy()
                values[missing] = np.nan
            return Column(self.name, values, self.ctype, valid)
        values = self.values[indexes]
        valid = self.valid[indexes] if self.valid is not None else None
        return Column(self.name, values, self.ctype, valid)

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        valid = self.valid[mask] if self.valid is not None else None
        return Column(self.name, self.values[mask], self.ctype, valid)

    def rename(self, name: str) -> "Column":
        """Return the same data under a different name (no copy)."""
        clone = Column.__new__(Column)
        clone.name = name
        clone.ctype = self.ctype
        clone.values = self.values
        clone.valid = self.valid
        # Same payload: the version stamp and encoding hints stay valid.
        clone.version = self.version
        clone.source = self.source
        clone.enc = self.enc
        return clone

    def copy(self) -> "Column":
        valid = self.valid.copy() if self.valid is not None else None
        clone = Column(self.name, self.values.copy(), self.ctype, valid)
        # A copy holds equal data; keep the stamp so encodings still apply.
        clone.version = self.version
        clone.source = self.source
        clone.enc = self.enc
        return clone

    def is_null(self) -> np.ndarray:
        """Boolean mask of null positions."""
        if self.valid is None:
            return np.zeros(len(self.values), dtype=bool)
        return ~self.valid

    def as_float(self) -> np.ndarray:
        """Values as float64 with nulls as NaN (for numeric expressions)."""
        if self.ctype is ColumnType.STR:
            raise StorageError(f"column {self.name!r} is not numeric")
        out = self.values.astype(np.float64, copy=self.ctype is ColumnType.INT)
        if self.valid is not None:
            out = out.copy() if out is self.values else out
            out[~self.valid] = np.nan
        return out

    def nbytes(self) -> int:
        """Approximate in-memory size in bytes."""
        if self.ctype is ColumnType.STR:
            return int(sum(len(str(v)) for v in self.values)) + 8 * len(self)
        size = int(self.values.nbytes)
        if self.valid is not None:
            size += int(self.valid.nbytes)
        return size
