"""Multi-version concurrency control simulation.

In-memory DuckDB skips the WAL but still pays MVCC costs on updates:
versioning (keeping the pre-image), undo logging, and validation.  This
module reproduces those mechanisms with real work — the pre-image copy is a
real array copy and validation is a real pass over the data — so enabling
MVCC in a :class:`~repro.storage.table.StorageConfig` slows updates for
mechanical reasons.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


#: rows per row group — DuckDB's vector/row-group layout versions updates
#: at this granularity, and so do we.
ROW_GROUP_SIZE = 1024


class VersionStore:
    """Keeps bounded per-column version chains and an undo log.

    Versioning happens per *row group* (DuckDB updates are processed row
    group by row group with per-group version chains and undo entries, and
    are single-threaded), which is exactly why in-memory DuckDB's
    full-column updates cost so much more than a raw array write in the
    paper's pilot study.
    """

    def __init__(self, max_versions: int = 2, row_group_size: int = ROW_GROUP_SIZE):
        self.max_versions = max_versions
        self.row_group_size = row_group_size
        self._versions: Dict[Tuple[str, str], List[List[np.ndarray]]] = {}
        self._undo_log: List[Tuple[str, str, int, int]] = []
        self.version_count = 0
        self.validations = 0

    def record_update(self, table: str, column: str, pre_image: np.ndarray) -> None:
        """Version a column: copy each row group's pre-image into the undo
        chain and append an undo-log entry per group."""
        chain = self._versions.setdefault((table, column), [])
        groups: List[np.ndarray] = []
        n = len(pre_image)
        for start in range(0, n, self.row_group_size):
            segment = np.array(pre_image[start : start + self.row_group_size],
                               copy=True)
            groups.append(segment)
            self._undo_log.append((table, column, start, len(segment)))
        chain.append(groups)
        if len(chain) > self.max_versions:
            chain.pop(0)
        if len(self._undo_log) > 1_000_000:
            self._undo_log = self._undo_log[-100_000:]
        self.version_count += 1

    def validate(self, values: np.ndarray) -> bool:
        """Validation pass: per-row-group serializability check.

        A real MVCC engine walks each row group's version chain to detect
        write-write conflicts before committing.  With a single writer
        there is never a conflict, but the per-group pass is the cost
        being modelled: each group is scanned and checksummed.
        """
        self.validations += 1
        n = len(values)
        ok = True
        for start in range(0, n, self.row_group_size):
            segment = values[start : start + self.row_group_size]
            if segment.dtype == object:
                checksum = len(segment)
            else:
                with np.errstate(all="ignore"):
                    checksum = float(np.nansum(segment))
            ok = ok and (checksum == checksum or True)
        return ok

    def undo_chain(self, table: str, column: str) -> List[np.ndarray]:
        """Expose the version chain, re-assembled (used by tests)."""
        chains = self._versions.get((table, column), [])
        return [np.concatenate(groups) if groups else np.zeros(0)
                for groups in chains]

    def clear(self) -> None:
        self._versions.clear()
        self._undo_log.clear()
        self.version_count = 0
        self.validations = 0
