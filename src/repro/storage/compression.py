"""Columnar compression codecs.

The paper (Section 5.3.2) identifies compression as one of the mechanisms
that make bulk residual updates slow on columnar DBMSes: every rewrite of a
compressed column pays decode + re-encode.  These codecs do the real
encode/decode work so that a storage configuration with compression enabled
is mechanically slower to update, with no artificial sleeps.

Codecs:

* :class:`PlainCodec`      — identity (no compression)
* :class:`RLECodec`        — run-length encoding, good for sorted/low-card data
* :class:`DictionaryCodec` — dictionary encoding for strings / repeated values
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import StorageError


class Codec:
    """Interface: encode an array to an opaque payload and back."""

    name = "plain"

    def encode(self, values: np.ndarray) -> object:
        raise NotImplementedError

    def decode(self, payload: object) -> np.ndarray:
        raise NotImplementedError

    def encoded_nbytes(self, payload: object) -> int:
        raise NotImplementedError


class PlainCodec(Codec):
    """Identity codec: stores the array as-is."""

    name = "plain"

    def encode(self, values: np.ndarray) -> np.ndarray:
        return values

    def decode(self, payload: np.ndarray) -> np.ndarray:
        return payload

    def encoded_nbytes(self, payload: np.ndarray) -> int:
        return int(payload.nbytes)


class RLECodec(Codec):
    """Run-length encoding: (run_values, run_lengths)."""

    name = "rle"

    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if len(values) == 0:
            return values, np.zeros(0, dtype=np.int64)
        if values.dtype.kind == "f":
            # NaN != NaN would split runs incorrectly; compare bit patterns.
            comparable = values.view(np.int64)
        else:
            comparable = values
        change = np.empty(len(values), dtype=bool)
        change[0] = True
        np.not_equal(comparable[1:], comparable[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, len(values)))
        return values[starts], lengths.astype(np.int64)

    def decode(self, payload: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        run_values, run_lengths = payload
        return np.repeat(run_values, run_lengths)

    def encoded_nbytes(self, payload: Tuple[np.ndarray, np.ndarray]) -> int:
        run_values, run_lengths = payload
        return int(run_values.nbytes + run_lengths.nbytes)


class DictionaryCodec(Codec):
    """Dictionary encoding: (codes, dictionary)."""

    name = "dict"

    def encode(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        dictionary, codes = np.unique(values, return_inverse=True)
        width = np.uint8 if len(dictionary) < 256 else (
            np.uint16 if len(dictionary) < 65536 else np.int64
        )
        return codes.astype(width), dictionary

    def decode(self, payload: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        codes, dictionary = payload
        return dictionary[codes.astype(np.int64)]

    def encoded_nbytes(self, payload: Tuple[np.ndarray, np.ndarray]) -> int:
        codes, dictionary = payload
        if dictionary.dtype == object:
            dict_bytes = sum(len(str(v)) for v in dictionary)
        else:
            dict_bytes = int(dictionary.nbytes)
        return int(codes.nbytes) + int(dict_bytes)


_CODECS = {
    "plain": PlainCodec,
    "rle": RLECodec,
    "dict": DictionaryCodec,
}


def codec_for(name: str) -> Codec:
    """Instantiate a codec by name (``plain``, ``rle``, ``dict``)."""
    try:
        return _CODECS[name]()
    except KeyError:
        raise StorageError(f"unknown codec {name!r}") from None
