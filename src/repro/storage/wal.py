"""Write-ahead log simulation.

DBMSes persist a log record for every mutation before applying it; the paper
identifies this as one reason residual updates are slow.  This WAL performs
*real* serialization and file appends (with flushes) so that a storage
configuration with WAL enabled pays a mechanically honest per-write cost.
"""

from __future__ import annotations

import os
import struct
import tempfile
from typing import Optional

import numpy as np


_HEADER = struct.Struct("<II")  # (record kind, payload length)

KIND_UPDATE = 1
KIND_CREATE = 2
KIND_DROP = 3
KIND_CHECKPOINT = 4


class WriteAheadLog:
    """Append-only log file; records are length-prefixed binary blobs."""

    def __init__(self, path: Optional[str] = None, sync: bool = False):
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-wal-", suffix=".log")
            os.close(handle)
        self.path = path
        self.sync = sync
        self._file = open(path, "ab")
        self.records_written = 0
        self.bytes_written = 0

    def log_array(self, kind: int, name: str, values: np.ndarray) -> None:
        """Write one record containing a column payload."""
        name_bytes = name.encode("utf-8")
        if values.dtype == object:
            payload = ("\x00".join(str(v) for v in values)).encode("utf-8")
        else:
            payload = values.tobytes()
        self._append(kind, name_bytes + b"\x00" + payload)

    def log_marker(self, kind: int, name: str) -> None:
        """Write a small record (create/drop/checkpoint markers)."""
        self._append(kind, name.encode("utf-8"))

    def _append(self, kind: int, payload: bytes) -> None:
        self._file.write(_HEADER.pack(kind, len(payload)))
        self._file.write(payload)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())
        self.records_written += 1
        self.bytes_written += _HEADER.size + len(payload)

    def truncate(self) -> None:
        """Checkpoint: discard the log contents."""
        self._file.close()
        self._file = open(self.path, "wb")
        self.records_written = 0
        self.bytes_written = 0

    def close(self) -> None:
        self._file.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
