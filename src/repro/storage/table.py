"""Table storage: columnar, row-oriented, and external (dataframe-like).

The engine supports three physical layouts so the paper's backend comparison
(Figure 15) can be reproduced:

* :class:`ColumnTable` — columnar storage with optional compression, WAL and
  MVCC on writes.  Maps to DuckDB / X-col in the paper.
* :class:`RowTable` — row-oriented storage over a NumPy structured array.
  Column scans pay a strided gather; updates rewrite whole records.  Maps to
  X-row.
* :class:`ExternalColumnStore` — uncompressed columns held "outside" the
  database (the paper's DuckDB+Pandas ``DP`` mode): scans pay an interop copy
  through a staging buffer, but writes are plain pointer stores with no WAL,
  MVCC or compression.

A :class:`StorageConfig` bundles the knobs; named presets mirror the paper's
backends (``x-col``, ``x-row``, ``d-disk``, ``d-mem``, ``dp``, ``d-swap``).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import StorageError
from repro.storage.column import Column, ColumnType, next_version
from repro.storage.compression import Codec, codec_for
from repro.storage.mvcc import VersionStore
from repro.storage.wal import KIND_UPDATE, WriteAheadLog


@dataclasses.dataclass
class StorageConfig:
    """Knobs controlling the write path of a table.

    Attributes:
        layout: ``"column"``, ``"row"`` or ``"external"``.
        compression: codec name applied to stored columns (``None`` = plain).
        wal: append every column write to a write-ahead log.
        wal_sync: fsync each WAL record (disk-based backends).
        mvcc: version pre-images and run a validation pass per write.
        allow_column_swap: permit the pointer-swap fast path (the paper's
            D-Swap patch; <100 LoC in DuckDB, one method here).
        scan_copy: force an extra staging copy on every column read
            (interop overhead of the DP backend).
    """

    layout: str = "column"
    compression: Optional[str] = None
    wal: bool = False
    wal_sync: bool = False
    mvcc: bool = False
    # The default engine ships the paper's <100-LoC column-swap patch;
    # the stock-DBMS presets below turn it off to reproduce Figure 5/15.
    allow_column_swap: bool = True
    scan_copy: bool = False

    PRESETS = {
        # Commercial columnar store: compression + synced WAL (disk-based).
        "x-col": dict(layout="column", compression="rle", wal=True,
                      wal_sync=True, allow_column_swap=False),
        # Commercial row store: synced WAL, row-major pages.
        "x-row": dict(layout="row", wal=True, wal_sync=True,
                      allow_column_swap=False),
        # Disk-based DuckDB: compression + synced WAL + MVCC.
        "d-disk": dict(layout="column", compression="rle", wal=True,
                       wal_sync=True, mvcc=True, allow_column_swap=False),
        # In-memory DuckDB: no WAL but MVCC versioning remains.
        "d-mem": dict(layout="column", mvcc=True, allow_column_swap=False),
        # DuckDB + Pandas: fact table external, cheap writes, scan penalty.
        "dp": dict(layout="external", scan_copy=True),
        # Patched DuckDB with pointer-based column swap.
        "d-swap": dict(layout="column", mvcc=True, allow_column_swap=True),
        # Plain in-memory store (used by tests and non-benchmark code).
        "plain": dict(layout="column"),
    }

    @classmethod
    def preset(cls, name: str) -> "StorageConfig":
        """Build the named backend configuration."""
        try:
            return cls(**cls.PRESETS[name])
        except KeyError:
            raise StorageError(f"unknown storage preset {name!r}") from None


#: process-wide identities for table objects.  A table keeps its uid for
#: life — catalog renames preserve it — so caches keyed on
#: ``(uid, column, version)`` survive renames and can never confuse two
#: tables that happened to share a name.
_TABLE_UIDS = itertools.count(1)


class Table:
    """Common interface over the three physical layouts.

    Every concrete table tracks a monotonic version stamp per column
    (``column_version``) plus a table-level high-water mark (``version``),
    bumped on every mutating path: ``set_column`` (which the WAL-replay and
    MVCC-commit flows go through), masked updates (``swap_in``),
    ``drop_column`` and ``swap_column``.  Renames preserve identity — the
    uid and all column versions are untouched, because the data is.
    """

    name: str
    config: StorageConfig
    uid: int
    version: int

    def _init_identity(self) -> None:
        self.uid = next(_TABLE_UIDS)
        self.version = 0
        self._versions: Dict[str, int] = {}

    def _touch(self, column_name: str) -> None:
        """Record a mutation of one column."""
        stamp = next_version()
        self._versions[column_name] = stamp
        self.version = stamp

    def column_version(self, name: str) -> int:
        """The current version stamp of one column (0 = never stored)."""
        return self._versions.get(name, 0)

    def _stamp(self, col: Column) -> Column:
        """Attach ``(uid, name, version)`` provenance to a read result."""
        col.source = (self.uid, col.name, self._versions.get(col.name, 0))
        return col

    def column_names(self) -> List[str]:
        raise NotImplementedError

    def num_rows(self) -> int:
        raise NotImplementedError

    def column(self, name: str) -> Column:
        raise NotImplementedError

    def set_column(self, column: Column) -> None:
        raise NotImplementedError

    def drop_column(self, name: str) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.num_rows()

    def __contains__(self, name: str) -> bool:
        return name in self.column_names()

    def columns(self) -> Iterator[Column]:
        for name in self.column_names():
            yield self.column(name)

    def nbytes(self) -> int:
        return sum(col.nbytes() for col in self.columns())

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Materialize all columns as a name -> array mapping."""
        return {name: self.column(name).values for name in self.column_names()}

    @staticmethod
    def from_columns(
        name: str,
        columns: Sequence[Column],
        config: Optional[StorageConfig] = None,
        wal: Optional[WriteAheadLog] = None,
        mvcc: Optional[VersionStore] = None,
    ) -> "Table":
        """Construct a table of the layout requested by ``config``."""
        config = config or StorageConfig()
        if config.layout == "row":
            return RowTable(name, columns, config, wal=wal)
        if config.layout == "external":
            return ExternalColumnStore(name, columns, config)
        return ColumnTable(name, columns, config, wal=wal, mvcc=mvcc)


class ColumnTable(Table):
    """Columnar table; the default layout.

    Stored entries are either raw :class:`Column` objects (plain codec) or
    ``(codec, payload, ctype, valid)`` tuples when compression is enabled.
    Reads decode; writes encode, append to the WAL and version pre-images —
    unless :meth:`swap_column` is used, which is a schema-level pointer
    exchange exactly like the paper's D-Swap patch.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        config: Optional[StorageConfig] = None,
        wal: Optional[WriteAheadLog] = None,
        mvcc: Optional[VersionStore] = None,
    ):
        self.name = name
        self.config = config or StorageConfig()
        self._init_identity()
        self._wal = wal
        self._mvcc = mvcc
        if self.config.wal and self._wal is None:
            self._wal = WriteAheadLog(sync=self.config.wal_sync)
        if self.config.mvcc and self._mvcc is None:
            self._mvcc = VersionStore()
        self._codec: Optional[Codec] = (
            codec_for(self.config.compression) if self.config.compression else None
        )
        self._order: List[str] = []
        self._store: Dict[str, object] = {}
        self._num_rows = len(columns[0]) if columns else 0
        for col in columns:
            self._store_column(col, log=False)

    # -- reads ----------------------------------------------------------
    def column_names(self) -> List[str]:
        return list(self._order)

    def num_rows(self) -> int:
        return self._num_rows

    def column(self, name: str) -> Column:
        try:
            entry = self._store[name]
        except KeyError:
            raise StorageError(f"table {self.name!r} has no column {name!r}") from None
        if isinstance(entry, Column):
            col = entry
        else:
            codec, payload, ctype, valid = entry
            col = Column(name, codec.decode(payload), ctype, valid)
        self._stamp(col)
        if self.config.scan_copy:
            col = col.copy()  # copy() keeps the stamp: equal data
        return col

    # -- writes ---------------------------------------------------------
    def _store_column(self, col: Column, log: bool = True) -> None:
        if self._num_rows and len(col) != self._num_rows:
            raise StorageError(
                f"column {col.name!r} has {len(col)} rows, "
                f"table {self.name!r} has {self._num_rows}"
            )
        if not self._order:
            self._num_rows = len(col)
        if log:
            if self._mvcc is not None and col.name in self._store:
                pre_image = self.column(col.name)
                self._mvcc.record_update(self.name, col.name, pre_image.values)
            if self._wal is not None:
                self._wal.log_array(KIND_UPDATE, f"{self.name}.{col.name}", col.values)
            if self._mvcc is not None:
                self._mvcc.validate(col.values)
        if self._codec is not None and col.ctype is not ColumnType.STR:
            payload = self._codec.encode(col.values)
            self._store[col.name] = (self._codec, payload, col.ctype, col.valid)
        else:
            self._store[col.name] = col
        if col.name not in self._order:
            self._order.append(col.name)
        self._touch(col.name)

    def set_column(self, column: Column) -> None:
        """Full-column write through WAL/MVCC/compression (the slow path)."""
        self._store_column(column, log=True)

    def swap_in(self, column: Column) -> None:
        """Pointer-store one column with no logging (masked-update fast
        path).  The version stamp still advances — staleness of any cache
        keyed on ``(uid, name, version)`` is detectable, not assumed."""
        self._store[column.name] = column
        if column.name not in self._order:
            self._order.append(column.name)
        self._touch(column.name)

    def drop_column(self, name: str) -> None:
        if name not in self._store:
            raise StorageError(f"table {self.name!r} has no column {name!r}")
        del self._store[name]
        self._order.remove(name)
        self._versions.pop(name, None)
        self.version = next_version()

    def swap_column(self, name: str, other: "ColumnTable", other_name: str) -> None:
        """Pointer-swap a column with another table (the D-Swap fast path).

        This is a schema-level operation: no decode, no re-encode, no WAL
        record, no version copy.  Requires ``allow_column_swap`` (the paper's
        <100-LoC DuckDB patch); stock configurations raise.
        """
        if not self.config.allow_column_swap:
            raise StorageError(
                f"backend for table {self.name!r} does not support column swap"
            )
        if name not in self._store or other_name not in other._store:
            raise StorageError("swap_column: missing column")
        if other.num_rows() != self.num_rows():
            raise StorageError("swap_column: row-count mismatch")
        mine, theirs = self._store[name], other._store[other_name]
        self._store[name] = theirs.rename(name) if isinstance(theirs, Column) else theirs
        other._store[other_name] = mine.rename(other_name) if isinstance(mine, Column) else mine
        self._touch(name)
        other._touch(other_name)

    def stored_nbytes(self) -> int:
        """Bytes as stored (post-compression)."""
        total = 0
        for entry in self._store.values():
            if isinstance(entry, Column):
                total += entry.nbytes()
            else:
                codec, payload, _, _ = entry
                total += codec.encoded_nbytes(payload)
        return total


class RowTable(Table):
    """Row-oriented table over a NumPy structured array.

    Column reads gather a strided field (slower than contiguous columnar
    scans); column writes rebuild the record array, which is why UPDATE is
    prohibitive on the paper's X-row backend.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        config: Optional[StorageConfig] = None,
        wal: Optional[WriteAheadLog] = None,
    ):
        self.name = name
        self.config = config or StorageConfig(layout="row")
        self._init_identity()
        self._wal = wal
        if self.config.wal and self._wal is None:
            self._wal = WriteAheadLog(sync=self.config.wal_sync)
        self._ctypes: Dict[str, ColumnType] = {}
        self._valids: Dict[str, Optional[np.ndarray]] = {}
        self._records = self._pack(columns)
        for col in columns:
            self._touch(col.name)

    def _pack(self, columns: Sequence[Column]) -> np.ndarray:
        fields = []
        for col in columns:
            self._ctypes[col.name] = col.ctype
            self._valids[col.name] = col.valid
            if col.ctype is ColumnType.STR:
                width = max((len(str(v)) for v in col.values), default=1)
                fields.append((col.name, f"U{max(1, width)}"))
            elif col.ctype is ColumnType.FLOAT:
                fields.append((col.name, np.float64))
            else:
                fields.append((col.name, np.int64))
        n = len(columns[0]) if columns else 0
        records = np.empty(n, dtype=np.dtype(fields))
        for col in columns:
            records[col.name] = col.values
        return records

    def column_names(self) -> List[str]:
        return list(self._records.dtype.names or ())

    def num_rows(self) -> int:
        return len(self._records)

    def column(self, name: str) -> Column:
        if name not in (self._records.dtype.names or ()):
            raise StorageError(f"table {self.name!r} has no column {name!r}")
        # Strided gather: this copy is the row-store scan penalty.
        values = np.ascontiguousarray(self._records[name])
        ctype = self._ctypes[name]
        if ctype is ColumnType.STR:
            values = values.astype(object)
        return self._stamp(Column(name, values, ctype, self._valids.get(name)))

    def set_column(self, column: Column) -> None:
        """Rewrite every record to change one field (the row-store tax)."""
        if self._wal is not None:
            self._wal.log_array(KIND_UPDATE, f"{self.name}.{column.name}", column.values)
        cols = [self.column(n) for n in self.column_names() if n != column.name]
        cols.append(column)
        self._ctypes[column.name] = column.ctype
        self._valids[column.name] = column.valid
        self._records = self._pack(cols)
        self._touch(column.name)

    def drop_column(self, name: str) -> None:
        cols = [self.column(n) for n in self.column_names() if n != name]
        self._ctypes.pop(name, None)
        self._valids.pop(name, None)
        self._records = self._pack(cols)
        self._versions.pop(name, None)
        self.version = next_version()


class ExternalColumnStore(ColumnTable):
    """Dataframe-held table (the paper's DP mode).

    Writes are plain pointer stores — no WAL, MVCC or compression — which is
    why residual updates are ~15× faster.  Reads pay the interop copy
    (``scan_copy``), which is why aggregations slow by ~1.6×.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        config: Optional[StorageConfig] = None,
    ):
        config = config or StorageConfig.preset("dp")
        stripped = dataclasses.replace(
            config, layout="external", compression=None, wal=False, mvcc=False,
            allow_column_swap=True,
        )
        super().__init__(name, columns, stripped)

    def set_column(self, column: Column) -> None:
        """Replace the column pointer (a Pandas ``df[col] = array``)."""
        self._store_column(column, log=False)
