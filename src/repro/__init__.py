"""JoinBoost reproduction: grow trees over normalized data using only SQL.

Reproduction of Huang, Sen, Liu and Wu, *JoinBoost: Grow Trees Over
Normalized Data Using Only SQL* (VLDB 2023), including the DBMS substrate
it runs on.  See README.md for install and quickstart, docs/DESIGN.md for
the system inventory, and docs/EXPERIMENTS.md for the per-figure
reproduction map.

Quick start::

    import repro as joinboost
    from repro.datasets import favorita

    db, graph = favorita(num_fact_rows=50_000)
    model = joinboost.train_gradient_boosting(
        db, graph, {"objective": "regression", "num_iterations": 10}
    )
    print(joinboost.rmse_on_join(db, graph, model))

Training runs unchanged on other DBMSes through the connector layer
(:mod:`repro.backends`)::

    conn = joinboost.connect(backend="sqlite")   # stdlib sqlite3
"""

from repro.api import (
    TrainSet,
    connect,
    evaluate_rmse,
    join_graph,
    predict,
    train,
    train_decision_tree,
)
from repro.backends import (
    ChaosConnector,
    Connector,
    DuckDBConnector,
    EmbeddedConnector,
    FaultPlan,
    RetryConnector,
    SQLiteConnector,
)
from repro.core.checkpoint import (
    CheckpointSink,
    DirectoryCheckpointSink,
    MemoryCheckpointSink,
    resume_training,
)
from repro.core.session import TrainingSessionGuard, side_state_audit
from repro.engine.retry import RetryPolicy
from repro.exceptions import (
    BackendError,
    BackendExecutionError,
    CanaryParityError,
    CircuitOpenError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServingBackendError,
    ServingError,
    TransientBackendError,
    TransientServingError,
)
from repro.core.boosting import (
    GradientBoostingModel,
    MulticlassBoostingModel,
    train_gradient_boosting,
)
from repro.core.compile import compile_model, predict_compiled
from repro.core.forest import RandomForestModel, train_random_forest
from repro.core.params import TrainParams
from repro.core.predict import feature_frame, predict_join, rmse_on_join
from repro.core.serialize import load_model, model_digest, save_model
from repro.core.sql_score import score_by_key, sql_scores
from repro.core.tree import DecisionTreeModel
from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph
from repro.serve import (
    BreakerPolicy,
    CircuitBreaker,
    GatewayResponse,
    PredictionService,
    ServingGateway,
)
from repro.storage.table import StorageConfig

__version__ = "1.0.0"

__all__ = [
    "connect",
    "join_graph",
    "train",
    "train_decision_tree",
    "train_gradient_boosting",
    "train_random_forest",
    "predict",
    "evaluate_rmse",
    "predict_join",
    "rmse_on_join",
    "feature_frame",
    "compile_model",
    "predict_compiled",
    "sql_scores",
    "score_by_key",
    "save_model",
    "load_model",
    "model_digest",
    "PredictionService",
    "ServingGateway",
    "GatewayResponse",
    "BreakerPolicy",
    "CircuitBreaker",
    "ServingError",
    "ServingBackendError",
    "TransientServingError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "CanaryParityError",
    "TrainSet",
    "TrainParams",
    "Connector",
    "EmbeddedConnector",
    "SQLiteConnector",
    "DuckDBConnector",
    "ChaosConnector",
    "RetryConnector",
    "FaultPlan",
    "RetryPolicy",
    "BackendError",
    "BackendExecutionError",
    "TransientBackendError",
    "resume_training",
    "CheckpointSink",
    "MemoryCheckpointSink",
    "DirectoryCheckpointSink",
    "TrainingSessionGuard",
    "side_state_audit",
    "Database",
    "JoinGraph",
    "StorageConfig",
    "DecisionTreeModel",
    "GradientBoostingModel",
    "MulticlassBoostingModel",
    "RandomForestModel",
    "__version__",
]
