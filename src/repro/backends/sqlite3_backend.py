"""SQLiteConnector: run the Factorizer's lifted SQL on stdlib sqlite3.

This is the portability proof the paper makes with DuckDB and DBMS-X:
the training stack issues dialect-translated SQL (see
:mod:`repro.backends.dialect`) against a genuinely different engine and
grows identical trees.  Everything JoinBoost needs from the DBMS —
CREATE TABLE AS SELECT message materialization, window prefix-sum split
queries, CASE residual updates, semi-join ``IN`` predicates — maps onto
SQLite; scalar/aggregate functions SQLite lacks (``GREATEST``,
``MEDIAN``, older builds' ``EXP``/``POWER``/``SIGN``) are registered as
Python functions on the connection.

Query results come back as the same :class:`Relation`/:class:`Column`
objects the embedded engine produces, so client-side consumers
(``feature_frame``, categorical split scans, forest sampling) run
unchanged.  NaN is the NULL interchange value on both sides: floats
arriving as NaN are stored as SQL NULL, and NULLs read back as NaN under
a validity mask — matching the embedded engine's convention.
"""

from __future__ import annotations

import contextlib
import math
import os
import shutil
import sqlite3
import statistics
import tempfile
import threading
import time
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import (
    Capabilities,
    Connector,
    TempNamespaceMixin,
    check_equal_lengths,
    check_update_strategy,
    column_from_values,
    register_backend,
    to_sql_values,
)
from repro.backends.dialect import SQLiteDialect, split_statements
from repro.engine.database import QueryProfile
from repro.engine.result import Relation
from repro.exceptions import (
    BackendExecutionError,
    CatalogError,
    TransientBackendError,
)
from repro.storage.column import Column

#: ``sqlite3.OperationalError`` messages that signal contention rather
#: than a broken statement — these map to :class:`TransientBackendError`
#: and are retried by the engine's retry policy
_TRANSIENT_MARKERS = ("locked", "busy")


def _translate_sqlite_error(
    exc: sqlite3.Error, context: str
) -> BackendExecutionError:
    """Map a raw driver error onto the backend taxonomy.

    Callers of the connector never see ``sqlite3.Error``: lock/busy
    contention becomes :class:`TransientBackendError` (retryable),
    everything else :class:`BackendExecutionError` (permanent).
    """
    message = f"sqlite backend failed on: {context}: {exc}"
    if isinstance(exc, sqlite3.OperationalError) and any(
        marker in str(exc).lower() for marker in _TRANSIENT_MARKERS
    ):
        return TransientBackendError(message)
    return BackendExecutionError(message)


@contextlib.contextmanager
def _wrap_errors(context: str) -> Iterator[None]:
    """Re-raise any ``sqlite3.Error`` as its taxonomy translation."""
    try:
        yield
    except sqlite3.Error as exc:
        raise _translate_sqlite_error(exc, context) from exc


class _Median:
    """MEDIAN aggregate (used by the L1/MAPE init-score query)."""

    def __init__(self):
        self.values: List[float] = []

    def step(self, value):
        """Accumulate one non-NULL value."""
        if value is not None:
            self.values.append(float(value))

    def finalize(self):
        """Median of the accumulated values (NULL when empty)."""
        return statistics.median(self.values) if self.values else None


def _sign(x):
    if x is None:
        return None
    return (x > 0) - (x < 0)


def _greatest(*args):
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _least(*args):
    present = [a for a in args if a is not None]
    return min(present) if present else None


def register_sql_functions(conn: sqlite3.Connection) -> None:
    """Register JoinBoost's SQL function surface on a connection.

    Module-level so *any* connection to the database file — the owner,
    a pooled reader, or a worker process that reopened the WAL file from
    a serialized task spec — carries the identical function set; the
    same Python lambdas on every connection is part of what keeps
    child-computed results bit-identical to in-process ones.
    """
    conn.create_aggregate("MEDIAN", 1, _Median)
    conn.create_function("GREATEST", -1, _greatest, deterministic=True)
    conn.create_function("LEAST", -1, _least, deterministic=True)
    # Math scalars: present on SQLITE_ENABLE_MATH_FUNCTIONS builds,
    # registered otherwise so the Table-3 loss expressions always run.
    probes = {
        "EXP": (1, lambda x: None if x is None else math.exp(x)),
        "LN": (1, lambda x: None if x is None or x <= 0 else math.log(x)),
        "LOG": (1, lambda x: None if x is None or x <= 0 else math.log10(x)),
        "SQRT": (1, lambda x: None if x is None or x < 0 else math.sqrt(x)),
        "POWER": (2, lambda a, b: None if a is None or b is None
                  else math.pow(a, b)),
        "SIGN": (1, _sign),
        "FLOOR": (1, lambda x: None if x is None else math.floor(x)),
        "CEIL": (1, lambda x: None if x is None else math.ceil(x)),
    }
    for fn_name, (nargs, fn) in probes.items():
        probe = f"SELECT {fn_name}({', '.join(['1'] * nargs)})"
        try:
            conn.execute(probe)
        except sqlite3.OperationalError:
            conn.create_function(fn_name, nargs, fn, deterministic=True)


#: per-connection performance PRAGMAs applied to the owner and to every
#: pooled reader (prepare_training records them under the ``index`` tag):
#: sort/temp spills stay in RAM, the page cache is sized for the lifted
#: fact's working set, and file-backed databases read through mmap
PERF_PRAGMAS = (
    ("temp_store", "MEMORY"),
    ("cache_size", "-65536"),  # 64 MiB, in -KiB units
    ("mmap_size", "268435456"),  # 256 MiB (no-op for in-memory databases)
)


class SQLiteTableView:
    """Read view over a SQLite table, shaped like a storage ``Table``.

    Columns materialize lazily (one ``SELECT col FROM t`` each) into the
    same :class:`Column` objects the embedded engine stores, and cache on
    the connector keyed by its data version, so repeated reads during
    prediction don't re-fetch unchanged data.
    """

    def __init__(self, connector: "SQLiteConnector", name: str):
        self._connector = connector
        self.name = name

    def column_names(self) -> List[str]:
        """Column names in stored order."""
        return self._connector._column_names(self.name)

    def num_rows(self) -> int:
        """Row count (cached per data version)."""
        return self._connector._num_rows(self.name)

    def column(self, name: str) -> Column:
        """Fetch one column as an embedded-engine :class:`Column`."""
        return self._connector._fetch_column(self.name, name)

    def columns(self):
        """Iterate all columns in stored order."""
        for name in self.column_names():
            yield self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self.column_names()

    def __len__(self) -> int:
        return self.num_rows()

    def nbytes(self) -> int:
        """Total bytes of the materialized column arrays."""
        return sum(c.values.nbytes for c in self.columns())

    def __repr__(self) -> str:
        return f"SQLiteTableView({self.name!r})"


@register_backend("sqlite", "sqlite3")
class SQLiteConnector(TempNamespaceMixin, Connector):
    """Connector over Python's stdlib ``sqlite3``."""

    dialect = "sqlite"

    def __init__(self, path: str = ":memory:", name: str = "repro"):
        self.name = name
        self.path = path
        # All connections (the owner plus per-thread readers) open the
        # same database in WAL mode, which is what makes the pool real:
        # WAL readers take a page snapshot and never block (or get
        # blocked by) the owner's DDL/UPDATEs — shared-cache ``:memory:``
        # stores cannot do this (schema table locks serialize readers
        # against every CREATE).  ``:memory:`` therefore maps to an
        # ephemeral database file on tmpfs (``/dev/shm`` when present —
        # RAM-backed, so "in-memory" stays honest), removed on close.
        if path == ":memory:":
            shm = "/dev/shm"
            base = shm if os.path.isdir(shm) and os.access(shm, os.W_OK) else None
            self._tmpdir: Optional[str] = tempfile.mkdtemp(
                prefix="jb_sqlite_", dir=base
            )
            self._db_file = os.path.join(self._tmpdir, "repro.db")
            self._ephemeral = True
        else:
            self._tmpdir = None
            self._db_file = path
            self._ephemeral = False
        self._conn = self._connect()
        # One re-entrant lock serializes every use of the owner
        # connection: all DDL and UPDATEs funnel through it, so SQLite
        # sees a single writer while pooled readers overlap freely.
        self._lock = threading.RLock()
        # Reader pool: connections are checked out per execute_read call
        # and checked back in afterwards, so the pool size is bounded by
        # the *peak concurrency* (the scheduler's worker count), not by
        # how many threads ever existed — each QueryScheduler.run()
        # spawns fresh threads, and a thread-local pool would mint (and
        # strand) new connections every round.
        self._free_readers: List[sqlite3.Connection] = []
        self._all_readers: List[sqlite3.Connection] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._perf_pragmas_applied = False
        self._dialect = SQLiteDialect()
        self._register_functions(self._conn)
        self._data_version = 0
        self._schema_cache: Dict[str, Tuple[int, List[str]]] = {}
        self._column_cache: Dict[Tuple[str, str], Tuple[int, Column]] = {}
        self._rows_cache: Dict[str, Tuple[int, int]] = {}
        self._indexed: set = set()
        self.index_seconds = 0.0
        self.profiles: List[QueryProfile] = []
        self.profiling_enabled = True
        self.capabilities = Capabilities(
            column_swap=False,
            query_profiles=True,
            window_functions=sqlite3.sqlite_version_info >= (3, 25, 0),
            union_all=True,
            narrow_update=True,
            concurrent_read=True,
            in_process=True,
            # The database is a real WAL file (even ":memory:" maps to a
            # tmpfs file): a worker process reopens it read-only and its
            # snapshot reads never block on (or get blocked by) the
            # owner — the cheapest possible task serialization, a path.
            process_safe=True,
        )

    # ------------------------------------------------------------------
    # Connection setup
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False: the owner connection is shared across
        # scheduler threads (serialized by self._lock), and pooled
        # readers must be closable from the owning thread's close().
        conn = sqlite3.connect(self._db_file, check_same_thread=False)
        conn.isolation_level = None  # autocommit; training is single-writer
        conn.execute("PRAGMA busy_timeout = 30000")
        conn.execute("PRAGMA journal_mode = WAL")
        # Scratch stores skip fsync entirely; user files keep WAL-default
        # durability.
        conn.execute(
            "PRAGMA synchronous = OFF" if self._ephemeral
            else "PRAGMA synchronous = NORMAL"
        )
        return conn

    def _checkout_reader(self) -> sqlite3.Connection:
        """Check a pooled read-only connection out for one statement.

        Connections open the same WAL database file and are pinned
        ``query_only`` — a write through a pooled connection is a bug,
        and SQLite rejects it at the C level — while WAL snapshots mean
        a concurrent message CREATE or label UPDATE on the owner
        connection never blocks them.  sqlite3's C core releases the GIL
        while a statement runs, which is where the real inter-query
        overlap comes from.
        """
        with self._pool_lock:
            if self._closed:
                raise BackendExecutionError("sqlite connector is closed")
            if self._free_readers:
                return self._free_readers.pop()
        conn = self._connect()
        self._register_functions(conn)
        self._apply_perf_pragmas(conn)
        conn.execute("PRAGMA query_only = 1")
        with self._pool_lock:
            if self._closed:
                conn.close()
                raise BackendExecutionError("sqlite connector is closed")
            self._all_readers.append(conn)
        return conn

    def _checkin_reader(self, conn: sqlite3.Connection) -> None:
        with self._pool_lock:
            if not self._closed:
                self._free_readers.append(conn)
                return
        conn.close()

    @staticmethod
    def _apply_perf_pragmas(conn: sqlite3.Connection) -> None:
        for pragma, value in PERF_PRAGMAS:
            conn.execute(f"PRAGMA {pragma} = {value}")

    def _register_functions(self, conn: sqlite3.Connection) -> None:
        register_sql_functions(conn)

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Run translated statements on the owner connection (locked)."""
        result: Optional[Relation] = None
        for statement in split_statements(sql):
            result = self._run_statement(statement, tag)
        return result

    def execute_read(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Run a rows-returning statement on the calling thread's pooled
        connection.  Statements that write (and multi-statement scripts)
        funnel back through :meth:`execute` — the owner connection under
        the write lock — so readers stay genuinely read-only."""
        statements = split_statements(sql)
        if len(statements) != 1:
            return self.execute(sql, tag)
        translated = self._dialect.translate(statements[0])
        kind, returns_rows = self._dialect.classify(translated)
        if not returns_rows:
            return self.execute(sql, tag)
        conn = self._checkout_reader()
        start = time.perf_counter()
        try:
            with _wrap_errors(repr(translated)):
                cursor = conn.execute(translated)
                result = self._relation_from_cursor(cursor)
        finally:
            self._checkin_reader(conn)
        elapsed = time.perf_counter() - start
        if self.profiling_enabled:
            self.profiles.append(QueryProfile(
                sql=statements[0],
                kind=kind,
                seconds=elapsed,
                rows_out=result.num_rows,
                tag=tag,
                started=start,
            ))
        return result

    def _run_statement(self, statement: str, tag: Optional[str]) -> Optional[Relation]:
        translated = self._dialect.translate(statement)
        kind, returns_rows = self._dialect.classify(translated)
        start = time.perf_counter()
        with self._lock:
            with _wrap_errors(repr(translated)):
                cursor = self._conn.execute(translated)
                result: Optional[Relation] = None
                if returns_rows:
                    result = self._relation_from_cursor(cursor)
                else:
                    self._bump_version()
                rowcount = cursor.rowcount
        elapsed = time.perf_counter() - start
        if self.profiling_enabled:
            if result is not None:
                rows_out = result.num_rows
            elif kind == "Update":
                # sqlite3 reports rows matched by the UPDATE — the
                # frontier census prices narrow label updates with it.
                rows_out = max(rowcount, 0)
            else:
                rows_out = 0
            self.profiles.append(QueryProfile(
                sql=statement,
                kind=kind,
                seconds=elapsed,
                rows_out=rows_out,
                tag=tag,
                started=start,
            ))
        return result

    def process_task_payload(
        self, sql: str, tag: Optional[str] = None
    ) -> Optional[Dict[str, object]]:
        """Serialize a rows-returning statement as a worker-process task.

        The payload is just the WAL file path plus the *pre-translated*
        statement — translation happens here, once, in the parent, so
        the child runs byte-identical SQL against the same function set
        (:func:`register_sql_functions`) and rebuilds its Relation with
        the same :func:`column_from_values` conversion.  Declines
        multi-statement scripts and anything that writes, exactly the
        statements :meth:`execute_read` funnels back to the owner.
        """
        statements = split_statements(sql)
        if len(statements) != 1:
            return None
        translated = self._dialect.translate(statements[0])
        _, returns_rows = self._dialect.classify(translated)
        if not returns_rows:
            return None
        return {
            "kind": "sqlite_read",
            "path": self._db_file,
            "sql": translated,
        }

    def _relation_from_cursor(self, cursor: sqlite3.Cursor) -> Relation:
        names = [d[0] for d in cursor.description or ()]
        rows = cursor.fetchall()
        columns = [
            column_from_values(name, [row[i] for row in rows])
            for i, name in enumerate(names)
        ]
        return Relation(columns)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    @staticmethod
    def _affinity(array: np.ndarray) -> str:
        kind = np.asarray(array).dtype.kind
        if kind in ("i", "u", "b"):
            return "INTEGER"
        if kind == "f":
            return "REAL"
        return "TEXT"

    def create_table(
        self,
        name: str,
        data: Dict[str, Union[np.ndarray, Sequence]],
        config=None,
        replace: bool = False,
    ) -> SQLiteTableView:
        """Create a table from arrays (NaN rows stored as NULL)."""
        # ``config`` is an embedded-engine storage preset; SQLite owns its
        # physical layout, so the parameter is accepted and ignored.
        arrays = {col: np.asarray(values) for col, values in data.items()}
        with self._lock:
            if replace:
                self.drop_table(name, if_exists=True)
            elif self.has_table(name):
                raise CatalogError(f"table {name!r} already exists")
            self._forget_indexes(name)
            decls = ", ".join(
                f"{col} {self._affinity(arr)}" for col, arr in arrays.items()
            )
            placeholders = ", ".join(["?"] * len(arrays))
            check_equal_lengths(name, arrays)
            rows = zip(*(to_sql_values(arr) for arr in arrays.values()))
            with _wrap_errors(f"CREATE TABLE {name}"):
                self._conn.execute(f"CREATE TABLE {name} ({decls})")
                self._conn.executemany(
                    f"INSERT INTO {name} VALUES ({placeholders})", rows
                )
            self._bump_version()
        return SQLiteTableView(self, name)

    def _forget_indexes(self, table_name: str) -> None:
        """Drop the idempotency record of a table's training indexes — a
        recreated table starts unindexed and must be indexable again."""
        key = table_name.lower()
        self._indexed = {i for i in self._indexed if i[0] != key}

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Drop a table; :class:`CatalogError` unless ``if_exists``."""
        with self._lock:
            if not if_exists and not self.has_table(name):
                raise CatalogError(f"no such table: {name!r}")
            with _wrap_errors(f"DROP TABLE {name}"):
                self._conn.execute(f"DROP TABLE IF EXISTS {name}")
            self._forget_indexes(name)
            self._bump_version()

    def rename_table(self, old: str, new: str) -> None:
        """Rename ``old`` to ``new`` with embedded-engine semantics."""
        with self._lock:
            if not self.has_table(old):
                raise CatalogError(f"no such table: {old!r}")
            if self.has_table(new):
                raise CatalogError(f"table {new!r} already exists")
            with _wrap_errors(f"ALTER TABLE {old} RENAME TO {new}"):
                self._conn.execute(f"ALTER TABLE {old} RENAME TO {new}")
            # The physical indexes follow the table; the name-keyed records
            # do not — a future table under either name must re-index.
            self._forget_indexes(old)
            self._forget_indexes(new)
            self._bump_version()

    def table(self, name: str) -> SQLiteTableView:
        """Lazy column view; :class:`CatalogError` on missing names."""
        if not self.has_table(name):
            raise CatalogError(f"no such table: {name!r}")
        return SQLiteTableView(self, name)

    def has_table(self, name: str) -> bool:
        """Case-insensitive catalog membership test."""
        with self._lock:
            with _wrap_errors("has_table"):
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM sqlite_master "
                    "WHERE type = 'table' AND lower(name) = lower(?)",
                    (name,),
                ).fetchone()
        return row[0] > 0

    def table_names(self) -> List[str]:
        """All stored table names (sorted), temporaries included."""
        with self._lock:
            with _wrap_errors("table_names"):
                rows = self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table' "
                    "ORDER BY name"
                ).fetchall()
        return [r[0] for r in rows]

    # Temporary namespace: temp_name/cleanup_temp from TempNamespaceMixin.

    # ------------------------------------------------------------------
    # Column replacement (residual updates)
    # ------------------------------------------------------------------
    def replace_column(
        self,
        table_name: str,
        column_name: str,
        values: np.ndarray,
        strategy: str = "swap",
    ) -> None:
        """Rewrite one column via rowid-correlated UPDATEs.

        SQLite exposes no storage pointers, so every logical strategy maps
        to the same physical write; ``strategy`` is still validated so
        typos fail identically across backends.  Row order: a bare
        ``SELECT ... FROM t`` scan and ``ORDER BY rowid`` agree in SQLite
        for ordinary tables, which is the order ``values`` was computed in.
        """
        check_update_strategy(strategy)
        with self._lock:
            with _wrap_errors(f"replace_column({table_name}.{column_name})"):
                rowids = [r[0] for r in self._conn.execute(
                    f"SELECT rowid FROM {table_name} ORDER BY rowid"
                )]
                array = np.asarray(values)
                if len(rowids) != len(array):
                    raise BackendExecutionError(
                        f"replace_column: {len(array)} values for "
                        f"{len(rowids)} rows of {table_name!r}"
                    )
                self._conn.executemany(
                    f"UPDATE {table_name} SET {column_name} = ? "
                    "WHERE rowid = ?",
                    zip(to_sql_values(array), rowids),
                )
            self._bump_version()

    # ------------------------------------------------------------------
    # Training setup: join-key indexes (the sqlite analogue of the
    # embedded engine's encoded-key cache — build the per-key access
    # structure once per training run, not once per query)
    # ------------------------------------------------------------------
    def prepare_training(self, graph, lifted: Optional[Dict[str, str]] = None) -> float:
        """Index every join-key column of the training tables + ANALYZE.

        The Factorizer's message and absorption queries join on the same
        key columns hundreds of times per tree; without indexes SQLite
        re-scans per query.  The lifted fact (``lifted[relation]``) is
        the important target — dimension keys help the nested-loop side.
        Idempotent per (table, key tuple); indexes on lifted temps vanish
        with their tables.  The time spent is recorded both on
        ``index_seconds`` and as an ``"index"``-tagged query profile.
        """
        lifted = dict(lifted or {})
        start = time.perf_counter()
        created = []
        with self._lock:
            # Per-connection perf PRAGMAs: the owner gets them here, and
            # every pooled reader applies the same set at creation (see
            # _reader_connection) — "every pooled connection" because
            # readers are minted lazily per scheduler thread.
            pragmas_fresh = not getattr(self, "_perf_pragmas_applied", False)
            if pragmas_fresh:
                self._apply_perf_pragmas(self._conn)
                self._perf_pragmas_applied = True
            for edge in graph.edges:
                for relation in (edge.left, edge.right):
                    table = lifted.get(relation, relation)
                    keys = tuple(edge.keys_for(relation))
                    ident = (table.lower(), keys)
                    if ident in self._indexed or not self.has_table(table):
                        continue
                    # Deterministic digest: underscore-joined names can collide
                    # across (table, keys) pairs, and a colliding name would
                    # make CREATE INDEX IF NOT EXISTS a silent no-op.
                    digest = zlib.crc32("|".join((table.lower(),) + keys).encode())
                    index_name = f"jb_idx_{digest:08x}"
                    with _wrap_errors(f"CREATE INDEX {index_name}"):
                        self._conn.execute(
                            f"CREATE INDEX IF NOT EXISTS {index_name} "
                            f"ON {table} ({', '.join(keys)})"
                        )
                    self._indexed.add(ident)
                    created.append(index_name)
            if created:
                # Refresh planner statistics so the fresh indexes get picked.
                with _wrap_errors("ANALYZE"):
                    self._conn.execute("ANALYZE")
        elapsed = time.perf_counter() - start
        self.index_seconds += elapsed
        if self.profiling_enabled and pragmas_fresh:
            rendered = ", ".join(f"{p}={v}" for p, v in PERF_PRAGMAS)
            self.profiles.append(QueryProfile(
                sql=f"-- training setup: per-connection PRAGMAs ({rendered})",
                kind="Pragma",
                seconds=0.0,
                rows_out=len(PERF_PRAGMAS),
                tag="index",
                started=start,
            ))
        if self.profiling_enabled and created:
            self.profiles.append(QueryProfile(
                sql=f"-- training setup: {len(created)} join-key indexes + ANALYZE",
                kind="Index",
                seconds=elapsed,
                rows_out=len(created),
                tag="index",
                started=start,
            ))
        return elapsed

    # ------------------------------------------------------------------
    # Cached metadata reads (invalidated on any write)
    # ------------------------------------------------------------------
    def _bump_version(self) -> None:
        self._data_version += 1

    def _column_names(self, table_name: str) -> List[str]:
        key = table_name.lower()
        cached = self._schema_cache.get(key)
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        with self._lock:
            version = self._data_version
            with _wrap_errors(f"PRAGMA table_info({table_name})"):
                rows = self._conn.execute(
                    f"PRAGMA table_info({table_name})"
                ).fetchall()
        if not rows:
            raise CatalogError(f"no such table: {table_name!r}")
        names = [r[1] for r in rows]
        self._schema_cache[key] = (version, names)
        return names

    def _num_rows(self, table_name: str) -> int:
        key = table_name.lower()
        cached = self._rows_cache.get(key)
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        with self._lock:
            version = self._data_version
            with _wrap_errors(f"COUNT rows of {table_name}"):
                n = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table_name}"
                ).fetchone()[0]
        self._rows_cache[key] = (version, n)
        return n

    def _fetch_column(self, table_name: str, column_name: str) -> Column:
        wanted = column_name.lower()
        actual = None
        for name in self._column_names(table_name):
            if name.lower() == wanted:
                actual = name
                break
        if actual is None:
            raise BackendExecutionError(
                f"table {table_name!r} has no column {column_name!r}"
            )
        key = (table_name.lower(), wanted)
        cached = self._column_cache.get(key)
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        with self._lock:
            version = self._data_version
            with _wrap_errors(f"fetch {table_name}.{actual}"):
                values = [r[0] for r in self._conn.execute(
                    f"SELECT {actual} FROM {table_name} ORDER BY rowid"
                )]
        column = column_from_values(actual, values)
        if len(self._column_cache) > 512:
            self._column_cache.clear()
        self._column_cache[key] = (version, column)
        return column

    # ------------------------------------------------------------------
    # Profiling / lifecycle
    # ------------------------------------------------------------------
    def reset_profiles(self) -> None:
        """Clear accumulated query profiles."""
        self.profiles.clear()

    def close(self) -> None:
        """Close pooled readers then the owner (idempotent); ephemeral
        scratch directories are removed, file-backed stores kept."""
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            readers, self._all_readers = self._all_readers, []
            self._free_readers = []
        for conn in readers:
            conn.close()
        self._conn.close()
        if self._ephemeral and self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"SQLiteConnector({self.path!r}, tables={len(self.table_names())})"
