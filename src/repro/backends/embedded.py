"""EmbeddedConnector: the in-process engine behind the Connector protocol.

Wraps :class:`repro.engine.database.Database` — the repo's own DBMS
substrate — and adds the capability flags and dialect identity the
protocol requires.  Unknown attributes forward to the wrapped Database,
so engine-specific surfaces (``catalog``, ``config``, the WAL) stay
reachable for the storage benches that deliberately poke them.

Storage presets ("plain", "x-col", "d-mem", "dp", "d-swap", ...) are
*configurations of this one engine*, not separate backends; the factory
accepts a preset name so ``joinboost.connect(backend="d-swap")`` keeps
working exactly as before the connector layer existed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backends.base import Capabilities, Connector, register_backend
from repro.engine.database import Database
from repro.engine.result import Relation
from repro.sql import ast_nodes
from repro.sql.parser import parse as parse_sql
from repro.storage.table import StorageConfig


def _query_table_names(query, names: set) -> None:
    """Collect every table a parsed Query reads from, subqueries included."""
    selects = query.selects if isinstance(query, ast_nodes.UnionAll) else [query]
    for select in selects:
        refs = [select.source] if select.source is not None else []
        refs += [join.table for join in select.joins]
        for ref in refs:
            if ref.subquery is not None:
                _query_table_names(ref.subquery, names)
            else:
                names.add(str(ref.name))
        exprs = [item.expr for item in select.items]
        exprs += [j.condition for j in select.joins if j.condition is not None]
        exprs += [e for e in (select.where, select.having) if e is not None]
        exprs += list(select.group_by)
        exprs += [order.expr for order in select.order_by]
        for expr in exprs:
            for node in ast_nodes.walk(expr):
                if isinstance(node, ast_nodes.InSubquery):
                    _query_table_names(node.query, names)


class EmbeddedConnector(Connector):
    """Connector over the embedded ``Database`` engine."""

    dialect = "embedded"

    def __init__(
        self,
        db: Optional[Database] = None,
        preset: str = "plain",
        name: str = "repro",
    ):
        self._db = db if db is not None else Database(
            config=StorageConfig.preset(preset), name=name
        )
        self.preset = preset if db is None else "custom"
        self.capabilities = Capabilities(
            column_swap=self._db.config.allow_column_swap
            or self._db.config.layout == "external",
            query_profiles=True,
            window_functions=True,
            union_all=True,
            narrow_update=True,
            # The audited in-process read path: base relations and the
            # encoding cache are immutable during an evaluation round,
            # get-or-compute encoding is lock-protected, and temp-table
            # registration is serialized behind the catalog lock.
            concurrent_read=True,
            in_process=True,
            # Base relations are immutable numpy columns during an
            # evaluation round — they pickle cheaply and exactly, so a
            # worker process can rebuild the referenced tables and run
            # the same statement on the same engine code.
            process_safe=True,
        )

    @property
    def db(self) -> Database:
        """The wrapped embedded Database."""
        return self._db

    # -- protocol -------------------------------------------------------
    def execute(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Delegate to :meth:`Database.execute` (natively profiled)."""
        return self._db.execute(sql, tag=tag)

    def create_table(
        self,
        name: str,
        data: Dict[str, Union[np.ndarray, Sequence]],
        config=None,
        replace: bool = False,
    ):
        """Create a table honouring the storage ``config`` preset."""
        return self._db.create_table(name, data, config=config, replace=replace)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Drop a stored table (engine raises on missing names)."""
        self._db.drop_table(name, if_exists=if_exists)

    def rename_table(self, old: str, new: str) -> None:
        """Rename a stored table (the swap half of create-and-swap)."""
        self._db.rename_table(old, new)

    def table(self, name: str):
        """Column-view handle onto a stored table."""
        return self._db.table(name)

    def has_table(self, name: str) -> bool:
        """Whether ``name`` is a stored table."""
        return self._db.has_table(name)

    def table_names(self) -> List[str]:
        """All stored table names, temporaries included."""
        return self._db.table_names()

    def temp_name(self, hint: str = "t") -> str:
        """Mint a fresh ``jb_tmp_`` name from the engine catalog."""
        return self._db.temp_name(hint)

    def cleanup_temp(self, keep: Optional[List[str]] = None) -> int:
        """Drop JoinBoost temporaries; returns the count dropped."""
        return self._db.cleanup_temp(keep=keep)

    def replace_column(
        self,
        table_name: str,
        column_name: str,
        values: np.ndarray,
        strategy: str = "swap",
    ) -> None:
        """Replace a stored column via the engine's physical strategy."""
        self._db.replace_column(table_name, column_name, values, strategy)

    def process_task_payload(
        self, sql: str, tag: Optional[str] = None
    ) -> Optional[Dict[str, object]]:
        """Serialize a read-only statement plus its referenced tables.

        The statement is parsed with the engine's own grammar and the
        tables it actually reads (FROM/JOIN sources, recursively through
        derived tables and ``IN`` subqueries — not identifiers that
        merely appear somewhere in the text) are shipped as ``(column
        name, values, ctype, valid mask)`` tuples — the worker rebuilds
        real Columns with masks preserved exactly, so no null
        round-trips through a NaN sentinel.  Declines (returns ``None``,
        so the statement runs inline on the owner) multi-statement
        scripts, anything that is not a ``SELECT``/``UNION ALL``,
        anything the grammar cannot parse, and any statement naming a
        table the catalog cannot resolve — an incomplete payload would
        only fail in the child with a confusing missing-table error.
        """
        try:
            statements = parse_sql(sql)
        except Exception:
            return None
        if len(statements) != 1 or not isinstance(
            statements[0], (ast_nodes.Select, ast_nodes.UnionAll)
        ):
            return None
        referenced: set = set()
        _query_table_names(statements[0], referenced)
        catalog = {name.lower(): name for name in self._db.table_names()}
        tables: Dict[str, List[tuple]] = {}
        for name in sorted(referenced):
            stored = catalog.get(name.lower())
            if stored is None:
                return None
            view = self._db.table(stored)
            tables[stored] = [
                (col.name, col.values, col.ctype.value, col.valid)
                for col in view.columns()
            ]
        return {"kind": "embedded_read", "tables": tables, "sql": sql.strip().rstrip(";")}

    @property
    def profiles(self):
        """The engine's per-query :class:`QueryProfile` records."""
        return self._db.profiles

    def reset_profiles(self) -> None:
        """Clear the engine's accumulated query profiles."""
        self._db.reset_profiles()

    def profiles_by_tag(self):
        """Group the engine's profiles by census tag."""
        return self._db.profiles_by_tag()

    # -- engine-specific passthrough ------------------------------------
    def __getattr__(self, item):
        return getattr(self._db, item)

    def __repr__(self) -> str:
        return f"EmbeddedConnector({self.preset!r}, {self._db!r})"


def embedded_factory(preset: str = "plain", **kwargs) -> EmbeddedConnector:
    """Registry factory: build an :class:`EmbeddedConnector` preset."""
    return EmbeddedConnector(preset=preset, **kwargs)


register_backend("embedded")(embedded_factory)
for _preset in StorageConfig.PRESETS:
    register_backend(_preset)(
        lambda preset=_preset, **kwargs: EmbeddedConnector(preset=preset, **kwargs)
    )
