"""Pluggable SQL connectors — the system's multi-backend seam.

``connect(backend=...)`` in :mod:`repro.api` resolves names through this
package's registry:

===============  ==========================================================
name             engine
===============  ==========================================================
``embedded``     the in-process engine (``repro.engine.database.Database``)
``plain`` ...    embedded-engine *storage presets* (``x-col``, ``x-row``,
                 ``d-disk``, ``d-mem``, ``dp``, ``d-swap``) — one engine,
                 different physical layouts (the Figure 5/15 benches)
``sqlite``       stdlib ``sqlite3`` via a dialect-translation layer — an
                 actual second DBMS, no extra packages
``duckdb``       the paper's demo engine via the optional ``duckdb``
                 package (``pip install repro[duckdb]``) — a tier-1
                 backend with concurrent reads when installed; raises a
                 guided install error when absent
===============  ==========================================================

See docs/BACKENDS.md for the full backend-authoring contract (every
protocol method, every capability flag and what degrades when it is
off) and docs/DESIGN.md ("Connector layer") for how training consumes
the surface.
"""

from repro.backends.base import (
    BackendError,
    Capabilities,
    Connector,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backends.chaos import (
    ChaosConnector,
    FaultPlan,
    FaultRule,
    RetryConnector,
    wrap_with_chaos,
)
from repro.backends.embedded import EmbeddedConnector
from repro.backends.sqlite3_backend import SQLiteConnector, SQLiteTableView
from repro.backends.duckdb_backend import DuckDBConnector
from repro.backends.dialect import DuckDBDialect, SQLiteDialect, split_statements

__all__ = [
    "BackendError",
    "Capabilities",
    "ChaosConnector",
    "Connector",
    "FaultPlan",
    "FaultRule",
    "RetryConnector",
    "wrap_with_chaos",
    "EmbeddedConnector",
    "SQLiteConnector",
    "SQLiteTableView",
    "DuckDBConnector",
    "DuckDBDialect",
    "SQLiteDialect",
    "split_statements",
    "backend_names",
    "get_backend",
    "register_backend",
]
