"""Pluggable SQL connectors — the system's multi-backend seam.

``connect(backend=...)`` in :mod:`repro.api` resolves names through this
package's registry:

===============  ==========================================================
name             engine
===============  ==========================================================
``embedded``     the in-process engine (``repro.engine.database.Database``)
``plain`` ...    embedded-engine *storage presets* (``x-col``, ``x-row``,
                 ``d-disk``, ``d-mem``, ``dp``, ``d-swap``) — one engine,
                 different physical layouts (the Figure 5/15 benches)
``sqlite``       stdlib ``sqlite3`` via a dialect-translation layer — an
                 actual second DBMS, no extra packages
``duckdb``       the optional ``duckdb`` package (``pip install
                 repro[duckdb]``); raises a guided error when absent
===============  ==========================================================

See docs/DESIGN.md ("Connector layer") for the protocol surface and what
each capability flag gates.
"""

from repro.backends.base import (
    BackendError,
    Capabilities,
    Connector,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backends.embedded import EmbeddedConnector
from repro.backends.sqlite3_backend import SQLiteConnector, SQLiteTableView
from repro.backends.duckdb_backend import DuckDBConnector
from repro.backends.dialect import SQLiteDialect, split_statements

__all__ = [
    "BackendError",
    "Capabilities",
    "Connector",
    "EmbeddedConnector",
    "SQLiteConnector",
    "SQLiteTableView",
    "DuckDBConnector",
    "SQLiteDialect",
    "split_statements",
    "backend_names",
    "get_backend",
    "register_backend",
]
