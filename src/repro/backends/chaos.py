"""Fault injection and transient-retry proxies over any Connector.

Production in-DB training treats the DBMS as an unreliable dependency;
this module is the test/bench substrate that makes that stance checkable.
:class:`ChaosConnector` wraps any backend and injects *deterministic*
faults from a :class:`FaultPlan` — fail the Nth statement matching a
query-tag pattern, add latency, flake a reader cursor — while
:class:`RetryConnector` wraps any backend (usually a chaos-wrapped one)
and retries :class:`~repro.exceptions.TransientBackendError` per the
engine's :class:`~repro.engine.retry.RetryPolicy` on the serial path,
exactly as :class:`~repro.engine.scheduler.QueryScheduler` does on the
parallel path.

Determinism is the load-bearing property: a fault plan counts matching
calls under a lock and fires on exact match ordinals, never randomly, so
a chaos run is reproducible and its trained model digest can be compared
bit-for-bit against the fault-free run.  Faults fire *before* the inner
statement executes — the engine never sees the statement, so no partial
side effects exist and retrying even a non-idempotent UPDATE is safe.

Selectable end to end::

    db = joinboost.connect(backend="sqlite", chaos="tag=message:nth=3")

or via the ``JOINBOOST_CHAOS`` environment variable with the same spec
syntax (rules separated by ``;``, fields by ``:``)::

    JOINBOOST_CHAOS="tag=message:nth=3:times=2:kind=transient"
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional

from repro.backends.base import Connector
from repro.engine.retry import (
    DEFAULT_RETRY_POLICY,
    RetryCensus,
    RetryPolicy,
    call_with_retry,
)
from repro.exceptions import (
    BackendError,
    BackendExecutionError,
    ChaosSpecError,
    TransientBackendError,
)

#: fault kinds that target worker *processes* (the supervised pool and
#: the sharded trainer), not individual statements: ``worker_crash``
#: kills the child running the Nth matching task, ``stall`` hangs it
#: past its deadline.  Statement-level calls never match these rules
#: (and never advance their counters) — they fire only through
#: :meth:`FaultPlan.next_task_fault` at task-dispatch time.
TASK_FAULT_KINDS = ("worker_crash", "stall")

#: the fault kinds a :class:`FaultRule` can inject
FAULT_KINDS = ("transient", "permanent", "latency", "cursor") + TASK_FAULT_KINDS

#: census tags the serving layer stamps on its backend statements
#: (``score_sql`` → ``serve_sql``, ``score_key`` → ``serve_key``).  A
#: fault plan targeting serving traffic matches them directly —
#: ``"tag=serve_sql:nth=1:kind=transient"`` — or all serving statements
#: at once with the shared prefix: ``"tag=serve_:nth=2:times=1"``.
#: Training statements never carry these tags, so a serving-scoped plan
#: leaves model fitting untouched.
SERVE_FAULT_TAGS = ("serve_sql", "serve_key")


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: fire on the Nth call matching a pattern.

    ``match`` is a case-insensitive substring tested against the query's
    census tag first and its SQL text second (empty string matches every
    call).  The rule fires on matching calls ``nth .. nth+times-1``
    (1-based).  Kinds:

    * ``transient`` — raise :class:`TransientBackendError` (retryable);
    * ``permanent`` — raise :class:`BackendExecutionError` (no retry);
    * ``latency``  — sleep ``delay`` seconds, then run the statement;
    * ``cursor``   — flake the pooled reader path: transient failure
      injected only on ``execute_read`` calls;
    * ``worker_crash`` / ``stall`` — task-scoped kinds: kill or hang the
      worker process handling the Nth matching *task* (dispatch-time
      match via :meth:`FaultPlan.next_task_fault`); statement calls
      ignore these rules entirely.
    """

    match: str = ""
    nth: int = 1
    times: int = 1
    kind: str = "transient"
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise BackendError(
                f"unknown chaos fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.nth < 1 or self.times < 1:
            raise BackendError("chaos rule nth/times must be >= 1")

    def matches(self, tag: Optional[str], sql: str) -> bool:
        """Whether this rule's pattern matches a (tag, sql) call."""
        if not self.match:
            return True
        needle = self.match.lower()
        if tag and needle in tag.lower():
            return True
        return needle in sql.lower()


class FaultPlan:
    """An ordered set of :class:`FaultRule`\\ s with call counters.

    Thread-safe: match counters advance under a lock, so the plan stays
    deterministic under the scheduler's worker pool (each matching call
    gets a unique ordinal; which *thread* observes the fault may vary,
    but the set of faulted statements never does).
    """

    def __init__(self, rules: List[FaultRule]):
        self.rules = list(rules)
        self._counts = [0] * len(self.rules)
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``JOINBOOST_CHAOS`` spec string into a plan.

        Rules are separated by ``;``, fields inside a rule by ``:``.
        Each field is ``key=value`` with keys ``tag``/``match`` (alias),
        ``nth``, ``times``, ``kind``, ``delay``; a bare first field is
        shorthand for the match pattern::

            "tag=message:nth=3;tag=frontier:nth=1:kind=latency:delay=0.01"

        Every malformed rule — a bad field, an unknown key, a
        non-integer ``nth``/``times``, an unknown fault kind — raises
        :class:`~repro.exceptions.ChaosSpecError` (a ``ValueError``)
        naming the offending rule chunk, so a typo in ``JOINBOOST_CHAOS``
        fails loudly instead of silently training without faults.
        """
        rules: List[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields: Dict[str, str] = {}
            for i, part in enumerate(chunk.split(":")):
                part = part.strip()
                if not part:
                    continue
                if "=" not in part:
                    if i == 0:
                        fields["match"] = part
                        continue
                    raise ChaosSpecError(
                        f"bad chaos spec field {part!r} in rule {chunk!r}"
                    )
                key, _, value = part.partition("=")
                fields[key.strip().lower()] = value.strip()
            if "tag" in fields:
                fields["match"] = fields.pop("tag")
            unknown = set(fields) - {"match", "nth", "times", "kind", "delay"}
            if unknown:
                raise ChaosSpecError(
                    f"unknown chaos spec key(s) {sorted(unknown)} in rule "
                    f"{chunk!r}; expected tag/match, nth, times, kind, delay"
                )
            try:
                rules.append(FaultRule(
                    match=fields.get("match", ""),
                    nth=int(fields.get("nth", "1")),
                    times=int(fields.get("times", "1")),
                    kind=fields.get("kind", "transient"),
                    delay=float(fields.get("delay", "0")),
                ))
            except (BackendError, ValueError) as exc:
                # FaultRule's own validation (unknown kind, nth/times < 1)
                # and int()/float() conversion failures all name the rule.
                raise ChaosSpecError(
                    f"bad chaos spec rule {chunk!r}: {exc}"
                ) from exc
        if not rules:
            raise ChaosSpecError(f"chaos spec {spec!r} contains no rules")
        return cls(rules)

    def next_fault(
        self, tag: Optional[str], sql: str, read: bool
    ) -> Optional[FaultRule]:
        """Advance counters for one call; return the rule to fire, if any.

        Every matching rule's counter advances (so overlapping rules keep
        independent ordinals); the first rule whose fire window covers
        this ordinal wins.  ``cursor`` rules only consider read calls.
        Task-scoped rules (:data:`TASK_FAULT_KINDS`) are skipped entirely
        — statement calls neither fire them nor advance their counters,
        so a ``worker_crash`` rule's ordinal counts *tasks*, not
        statements, and stays deterministic across executors.
        """
        fired: Optional[FaultRule] = None
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind in TASK_FAULT_KINDS:
                    continue
                if rule.kind == "cursor" and not read:
                    continue
                if not rule.matches(tag, sql):
                    continue
                self._counts[i] += 1
                ordinal = self._counts[i]
                if fired is None and rule.nth <= ordinal < rule.nth + rule.times:
                    fired = rule
        return fired

    def next_task_fault(
        self, tag: Optional[str], sql: str = ""
    ) -> Optional[FaultRule]:
        """Advance task-scoped counters for one dispatch; return the rule
        to fire, if any.

        The mirror image of :meth:`next_fault`: only rules whose kind is
        in :data:`TASK_FAULT_KINDS` participate, each matching rule's
        counter advances by one *task*, and the first rule whose fire
        window covers this ordinal wins.  Supervisors call this once per
        task at dispatch time, before handing the task to a worker, so
        the Nth matching task is faulted regardless of which worker runs
        it or in what order results return.
        """
        fired: Optional[FaultRule] = None
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind not in TASK_FAULT_KINDS:
                    continue
                if not rule.matches(tag, sql):
                    continue
                self._counts[i] += 1
                ordinal = self._counts[i]
                if fired is None and rule.nth <= ordinal < rule.nth + rule.times:
                    fired = rule
        return fired


class ChaosCensus:
    """Thread-safe record of every injected fault."""

    def __init__(self):
        self._lock = threading.Lock()
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.events: List[Dict[str, object]] = []

    def record(self, rule: FaultRule, tag: Optional[str], sql: str) -> None:
        """Count one injected fault and keep a bounded event trail."""
        with self._lock:
            self.injected[rule.kind] += 1
            if len(self.events) < 256:
                self.events.append({
                    "kind": rule.kind,
                    "match": rule.match,
                    "tag": tag,
                    "sql": sql[:120],
                })

    @property
    def total(self) -> int:
        """Total faults injected across all kinds."""
        with self._lock:
            return sum(self.injected.values())

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-kind injection counts plus the total."""
        with self._lock:
            return {**self.injected, "total": sum(self.injected.values())}


class _ConnectorProxy(Connector):
    """Shared delegation base for connector-wrapping proxies.

    ``dialect`` and ``capabilities`` are *class* attributes on
    :class:`Connector`, so ``__getattr__`` never fires for them — they
    are copied onto the instance here, and ``profiles`` is a property.
    """

    def __init__(self, inner: Connector):
        self._inner = inner
        self.dialect = inner.dialect
        self.capabilities = inner.capabilities
        self.name = getattr(inner, "name", "repro")

    @property
    def unwrapped(self) -> Connector:
        """The innermost (non-proxy) connector behind this stack."""
        return self._inner.unwrapped

    # -- protocol forwards ---------------------------------------------
    def execute(self, sql, tag=None):
        """Delegate to the wrapped connector's owner-handle execute."""
        return self._inner.execute(sql, tag=tag)

    def execute_read(self, sql, tag=None):
        """Delegate to the wrapped connector's pooled read path."""
        return self._inner.execute_read(sql, tag=tag)

    def create_table(self, name, data, config=None, replace=False):
        """Forward table creation to the wrapped connector."""
        return self._inner.create_table(
            name, data, config=config, replace=replace
        )

    def drop_table(self, name, if_exists=False):
        """Forward table drop to the wrapped connector."""
        self._inner.drop_table(name, if_exists=if_exists)

    def rename_table(self, old, new):
        """Forward table rename to the wrapped connector."""
        self._inner.rename_table(old, new)

    def table(self, name):
        """Forward read-view lookup to the wrapped connector."""
        return self._inner.table(name)

    def has_table(self, name):
        """Forward catalog membership test to the wrapped connector."""
        return self._inner.has_table(name)

    def table_names(self):
        """Forward catalog listing to the wrapped connector."""
        return self._inner.table_names()

    def temp_name(self, hint="t"):
        """Forward temp-name minting to the wrapped connector."""
        return self._inner.temp_name(hint)

    def cleanup_temp(self, keep=None):
        """Forward temp cleanup to the wrapped connector."""
        return self._inner.cleanup_temp(keep=keep)

    def replace_column(self, table_name, column_name, values, strategy="swap"):
        """Forward column replacement to the wrapped connector."""
        self._inner.replace_column(table_name, column_name, values, strategy)

    def prepare_training(self, graph, lifted=None):
        """Forward training setup to the wrapped connector."""
        return self._inner.prepare_training(graph, lifted=lifted)

    def process_task_payload(self, sql, tag=None):
        """Forward worker-task serialization to the wrapped connector.

        Must be an explicit forward (not ``__getattr__``): the method
        exists on the :class:`Connector` base class, whose default
        *declines* every statement — inheriting it here would silently
        turn the process executor off behind any chaos/retry proxy.
        """
        return self._inner.process_task_payload(sql, tag=tag)

    @property
    def profiles(self):
        """The wrapped connector's query profiles."""
        return self._inner.profiles

    def reset_profiles(self):
        """Clear the wrapped connector's query profiles."""
        self._inner.reset_profiles()

    def profiles_by_tag(self):
        """Group the wrapped connector's profiles by census tag."""
        return self._inner.profiles_by_tag()

    def close(self):
        """Close the wrapped connector (idempotent)."""
        self._inner.close()

    # -- engine-specific passthrough ------------------------------------
    def __getattr__(self, item):
        return getattr(self._inner, item)


class ChaosConnector(_ConnectorProxy):
    """Inject deterministic faults into a wrapped connector.

    Faults fire *before* the wrapped call runs, so a faulted statement
    has no partial side effects and retrying it is always safe — which
    is what keeps chaos-run model digests bit-identical to fault-free
    runs once the retry layer absorbs the failures.
    """

    def __init__(self, inner: Connector, plan: FaultPlan):
        super().__init__(inner)
        self.plan = plan
        self.chaos_census = ChaosCensus()

    def _maybe_inject(self, sql: str, tag: Optional[str], read: bool) -> None:
        rule = self.plan.next_fault(tag, sql, read)
        if rule is None:
            return
        self.chaos_census.record(rule, tag, sql)
        if rule.kind == "latency":
            time.sleep(rule.delay)
            return
        where = "reader cursor" if rule.kind == "cursor" else "statement"
        message = (
            f"chaos: injected {rule.kind} fault on {where} "
            f"(tag={tag!r}, rule match={rule.match!r}, nth={rule.nth})"
        )
        if rule.kind == "permanent":
            raise BackendExecutionError(message)
        raise TransientBackendError(message)

    def execute(self, sql, tag=None):
        """Run a statement, possibly injecting a fault first."""
        self._maybe_inject(sql, tag, read=False)
        return self._inner.execute(sql, tag=tag)

    def execute_read(self, sql, tag=None):
        """Run a read query, possibly flaking the cursor first."""
        self._maybe_inject(sql, tag, read=True)
        return self._inner.execute_read(sql, tag=tag)

    def __repr__(self):
        return f"ChaosConnector({self._inner!r}, rules={len(self.plan.rules)})"


class RetryConnector(_ConnectorProxy):
    """Retry transient failures of a wrapped connector's statements.

    This is the serial-path twin of the scheduler's retry wiring: plain
    ``execute``/``execute_read`` calls that never pass through a
    :class:`QueryScheduler` still get bounded, deterministic retries.
    The policy and census are exposed as ``retry_policy``/``retry_census``
    so the frontier evaluator hands the *same* policy to its schedulers
    and the census aggregates both paths.
    """

    def __init__(
        self,
        inner: Connector,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        census: Optional[RetryCensus] = None,
    ):
        super().__init__(inner)
        self.retry_policy = policy
        self.retry_census = census if census is not None else RetryCensus()

    def execute(self, sql, tag=None):
        """Run a statement with transient-retry protection."""
        return call_with_retry(
            lambda: self._inner.execute(sql, tag=tag),
            self.retry_policy,
            self.retry_census,
        )

    def execute_read(self, sql, tag=None):
        """Run a read query with transient-retry protection."""
        return call_with_retry(
            lambda: self._inner.execute_read(sql, tag=tag),
            self.retry_policy,
            self.retry_census,
        )

    def __repr__(self):
        return f"RetryConnector({self._inner!r}, {self.retry_policy!r})"


def task_fault_directive(
    db: object, tag: Optional[str], sql: str = ""
) -> Optional[str]:
    """Resolve the task-scoped fault directive for one dispatched task.

    Supervisors (the process pool, the sharded trainer) call this once
    per task at dispatch time.  If ``db`` carries a :class:`FaultPlan`
    (i.e. somewhere in its proxy stack sits a :class:`ChaosConnector` —
    the ``plan`` attribute forwards through :class:`_ConnectorProxy`)
    and a task-scoped rule fires for this ``(tag, sql)``, the injection
    is recorded in the chaos census and the fault kind
    (``"worker_crash"`` or ``"stall"``) is returned; otherwise ``None``.

    Resolving the directive in the *supervisor* (dispatch order is
    deterministic) rather than in the worker (completion order is not)
    is what keeps task-fault ordinals reproducible; stripping the
    directive on re-dispatch is what lets the faulted task succeed on
    its second attempt.
    """
    plan = getattr(db, "plan", None)
    if not isinstance(plan, FaultPlan):
        return None
    rule = plan.next_task_fault(tag, sql)
    if rule is None:
        return None
    census = getattr(db, "chaos_census", None)
    if census is not None:
        census.record(rule, tag, sql)
    return rule.kind


def wrap_with_chaos(
    inner: Connector, chaos: "FaultPlan | str | None"
) -> Connector:
    """Wrap ``inner`` in a :class:`ChaosConnector` if a plan is given.

    ``chaos`` may be a :class:`FaultPlan`, a spec string (the
    ``JOINBOOST_CHAOS`` syntax), or ``None`` (returns ``inner``).
    """
    if chaos is None:
        return inner
    plan = chaos if isinstance(chaos, FaultPlan) else FaultPlan.from_spec(chaos)
    return ChaosConnector(inner, plan)
