"""SQL dialect translation for external engines (sqlite3 and DuckDB).

The Factorizer emits a small, disciplined SQL surface (CREATE TABLE AS
SELECT, aggregations, window prefix sums, CASE, semi-join ``IN``
subqueries).  Most of it is standard, but three things need translating
before stdlib ``sqlite3`` will run it with the embedded engine's
semantics:

1. **Division and type affinity.**  SQLite divides INTEGER/INTEGER with
   truncation, and semi-ring components like the count ``c`` (lifted as
   the literal ``1``) get INTEGER affinity through ``CREATE TABLE AS``.
   Every ``SUM(...)`` in emitted SQL is an ⊕ over semi-ring components,
   so the translator rewrites ``SUM`` to SQLite's ``TOTAL`` — identical
   except it always returns REAL (and ``0.0`` rather than NULL on empty
   input, which matches how callers coalesce totals).  ``TOTAL`` is valid
   in window position, so the Example-2 prefix-sum query translates too.

2. **Statistical aggregates.**  The embedded engine exposes ``VARIANCE``/
   ``VAR``/``STDDEV`` (used by ad-hoc analysis queries); SQLite has none
   of them.  They rewrite into their sum/sum-of-squares form, e.g.
   ``VARIANCE(x)`` becomes
   ``(TOTAL((x)*(x)) - TOTAL(x)*TOTAL(x)/COUNT(x)) / COUNT(x)``.

3. **Keyword spelling.**  ``TRUE``/``FALSE`` literals become ``1``/``0``
   (supported only on newer SQLite builds), outside string literals.

Scalar functions the emitted SQL needs but SQLite may lack (``EXP``,
``POWER``, ``SIGN``, ``GREATEST``, ``LEAST``, ...) are not translated —
they are registered as Python functions on the connection by the
connector (see ``SQLiteConnector._register_functions``).

DuckDB (the paper's actual demo engine) needs almost nothing: ``/`` on
integers is REAL division, ``TRUE``/``FALSE``, window frames and every
scalar the emitted SQL uses are native.  The one semantic gap is the
statistical aggregates — DuckDB's bare ``VARIANCE``/``STDDEV`` are the
*sample* estimators while the embedded engine's are *population* — so
:class:`DuckDBDialect` renames them onto DuckDB's ``var_pop`` /
``stddev_pop`` and leaves everything else verbatim.

The translators are deliberately lexer-level rewriters, not parsers:
they walk the text once, skip string literals, and rewrite identifiers
and aggregate calls.  That keeps them honest about what they are — a
dialect shim for the SQL *this system emits* — rather than a general
transpiler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.exceptions import SQLError

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _is_ident_char(ch: str) -> bool:
    return ch.lower() in _IDENT_CHARS


def split_statements(sql: str) -> List[str]:
    """Split ``;``-separated statements, respecting quoted spans."""
    parts: List[str] = []
    current: List[str] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            end = _skip_string(sql, i)
            current.append(sql[i:end])
            i = end
            continue
        if ch == ";":
            text = "".join(current).strip()
            if text:
                parts.append(text)
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    text = "".join(current).strip()
    if text:
        parts.append(text)
    return parts


def _skip_string(sql: str, start: int) -> int:
    """Index one past the end of the quoted span starting at ``start`` —
    a ``'...'`` literal or a ``"..."`` identifier (SQL doubles the quote
    character to escape it)."""
    quote = sql[start]
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == quote:
            if i + 1 < n and sql[i + 1] == quote:
                i += 2
                continue
            return i + 1
        i += 1
    raise SQLError(f"unterminated quoted span in: {sql[start:start + 40]!r}")


def _matching_paren(sql: str, open_idx: int) -> int:
    """Index of the ``)`` matching the ``(`` at ``open_idx``."""
    depth = 0
    i = open_idx
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            i = _skip_string(sql, i)
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    raise SQLError(f"unbalanced parentheses in: {sql[open_idx:open_idx + 40]!r}")


def _variance_rewrite(arg: str) -> str:
    """Population variance as sum/sumsq — the lifted form SQLite can run."""
    return (
        f"((TOTAL(({arg}) * ({arg}))"
        f" - TOTAL({arg}) * TOTAL({arg}) / COUNT({arg}))"
        f" / COUNT({arg}))"
    )


def _stddev_rewrite(arg: str) -> str:
    return f"(POWER({_variance_rewrite(arg)}, 0.5))"


#: sqlite aggregate-call rewrites: name -> fn(argument text) -> replacement
_SQLITE_CALL_REWRITES: Dict[str, Callable[[str], str]] = {
    "sum": lambda arg: f"TOTAL({arg})",
    "variance": _variance_rewrite,
    "var": _variance_rewrite,
    "var_pop": _variance_rewrite,
    "stddev": _stddev_rewrite,
    "stddev_pop": _stddev_rewrite,
}

#: sqlite bare-word rewrites (outside strings, whole identifiers only)
_SQLITE_WORD_REWRITES: Dict[str, str] = {
    "true": "1",
    "false": "0",
}

#: duckdb aggregate-call renames: the embedded engine's VARIANCE/STDDEV
#: are population estimators, DuckDB's bare spellings are sample ones
_DUCKDB_CALL_REWRITES: Dict[str, Callable[[str], str]] = {
    "variance": lambda arg: f"var_pop({arg})",
    "var": lambda arg: f"var_pop({arg})",
    "stddev": lambda arg: f"stddev_pop({arg})",
}

#: duckdb needs no bare-word rewrites (TRUE/FALSE are native)
_DUCKDB_WORD_REWRITES: Dict[str, str] = {}


def _rewrite(
    sql: str,
    call_rewrites: Dict[str, Callable[[str], str]],
    word_rewrites: Dict[str, str],
) -> str:
    """One lexer pass: apply call/word rewrites outside quoted spans.

    Call arguments are rewritten recursively (with the same maps), so
    nested aggregates like ``SUM(SUM(a) + 1)`` translate all the way
    down.
    """
    out: List[str] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in ("'", '"'):
            # '...' literals and "..." quoted identifiers pass through
            # verbatim — a column named "true" stays a column.
            end = _skip_string(sql, i)
            out.append(sql[i:end])
            i = end
            continue
        if _is_ident_char(ch) and (i == 0 or not _is_ident_char(sql[i - 1])) \
                and not ch.isdigit():
            j = i
            while j < n and _is_ident_char(sql[j]):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            # Function-call rewrite: identifier directly followed by (
            k = j
            while k < n and sql[k] in " \t\n":
                k += 1
            if k < n and sql[k] == "(" and lowered in call_rewrites:
                close = _matching_paren(sql, k)
                inner = _rewrite(sql[k + 1:close], call_rewrites, word_rewrites)
                out.append(call_rewrites[lowered](inner))
                i = close + 1
                continue
            if lowered in word_rewrites and not (k < n and sql[k] == "("):
                out.append(word_rewrites[lowered])
                i = j
                continue
            out.append(word)
            i = j
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def classify_statement(sql: str) -> Tuple[str, bool]:
    """(kind, returns_rows) for one statement — profiling parity with
    the embedded engine's ``QueryProfile.kind`` taxonomy."""
    head = sql.lstrip().split(None, 2)
    first = head[0].upper() if head else ""
    if first == "SELECT" or first == "WITH":
        return "Select", True
    if first == "CREATE":
        return "CreateTableAs", False
    if first == "DROP":
        return "DropTable", False
    if first == "UPDATE":
        return "Update", False
    if first in ("INSERT", "DELETE", "ALTER"):
        return first.title(), False
    return first.title() or "Unknown", False


class SQLiteDialect:
    """Translates the engine's emitted SQL into SQLite's dialect."""

    name = "sqlite"

    def translate(self, sql: str) -> str:
        """SQLite spelling of ``sql``: SUM->TOTAL, lifted variance,
        TRUE/FALSE literals."""
        return _rewrite(sql, _SQLITE_CALL_REWRITES, _SQLITE_WORD_REWRITES)

    #: statement classification shared across external dialects
    classify = staticmethod(classify_statement)


class DuckDBDialect:
    """Translates the engine's emitted SQL into DuckDB's dialect.

    DuckDB already matches the embedded engine on division semantics,
    boolean literals and window frames, so the only rewrite is renaming
    the population statistical aggregates onto their ``_pop`` spellings.
    """

    name = "duckdb"

    def translate(self, sql: str) -> str:
        """DuckDB spelling of ``sql``: VARIANCE/STDDEV -> var_pop /
        stddev_pop; everything else passes through verbatim."""
        return _rewrite(sql, _DUCKDB_CALL_REWRITES, _DUCKDB_WORD_REWRITES)

    #: statement classification shared across external dialects
    classify = staticmethod(classify_statement)
