"""DuckDBConnector: the paper's actual demo engine, as a tier-1 backend.

JoinBoost's published numbers (Figures 15/16) come from running the
factorized message-passing queries *inside* DuckDB; this module is that
path, behind the same :class:`~repro.backends.base.Connector` protocol
as the embedded engine and stdlib sqlite3.  The connector is a full
peer of :class:`~repro.backends.sqlite3_backend.SQLiteConnector`:

* **Native fused queries.**  DuckDB speaks essentially the SQL surface
  the Factorizer emits — the fused ``UNION ALL`` split queries, window
  prefix sums, ``CASE`` residual updates and semi-join ``IN``
  predicates all run unmodified.  The only dialect rewrite is renaming
  the population statistical aggregates (see
  :class:`~repro.backends.dialect.DuckDBDialect`).
* **Concurrent reads** (``Capabilities.concurrent_read=True``).  DuckDB
  documents ``connection.cursor()`` as its multi-threading primitive:
  each cursor is an independent handle onto the same database, safe to
  drive from its own thread.  :meth:`execute_read` checks cursors out of
  a pool per call — bounded by peak scheduler concurrency, exactly like
  the sqlite reader pool — while every write funnels through the owner
  connection under one lock.  That is what lets PR 5's
  ``QueryScheduler`` fan evaluation rounds and forest trees out on this
  backend.
* **Deterministic training** (the PR 5 parity contract).
  :meth:`prepare_training` pins ``SET threads TO 1``: DuckDB's internal
  intra-query parallelism aggregates floats in a nondeterministic
  order, which would break the tree-for-tree bit-identity gate across
  ``num_workers`` settings.  Inter-*query* parallelism — the kind the
  paper's Section 5.5.3 measures and the scheduler provides — is
  unaffected: each pooled cursor executes on its calling thread.

The ``duckdb`` package is **not** a dependency of this repo;
construction raises a clear, actionable error when it is absent.
Install it with::

    pip install repro[duckdb]        # or: pip install duckdb

and ``joinboost.connect(backend="duckdb")`` will use it.
"""

from __future__ import annotations

import contextlib
import threading
import time
import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import (
    BackendError,
    Capabilities,
    Connector,
    TempNamespaceMixin,
    check_equal_lengths,
    check_update_strategy,
    column_from_values,
    register_backend,
    to_sql_values,
)
from repro.backends.dialect import DuckDBDialect, split_statements
from repro.backends.sqlite3_backend import SQLiteTableView
from repro.engine.database import QueryProfile
from repro.engine.result import Relation
from repro.exceptions import (
    BackendExecutionError,
    CatalogError,
    ReproError,
    TransientBackendError,
)
from repro.storage.column import Column

#: duckdb exception *class names* that signal momentary conditions — IO
#: hiccups, transaction conflicts, connection interruptions.  Matched by
#: name because the package is optional: this module must classify
#: without importing ``duckdb`` at module scope.
_TRANSIENT_CLASS_NAMES = (
    "IOException",
    "TransactionException",
    "ConnectionException",
    "InterruptException",
)

#: message fragments that mark a transient fault regardless of class
_TRANSIENT_MESSAGE_MARKERS = ("database is locked", "could not set lock")


def _translate_duckdb_error(
    exc: Exception, context: str
) -> BackendExecutionError:
    """Map a raw duckdb exception onto the backend taxonomy.

    Callers of the connector never see the driver's exception classes:
    IO/transaction/connection hiccups become
    :class:`TransientBackendError` (retryable), everything else
    :class:`BackendExecutionError` (permanent).
    """
    message = f"duckdb backend failed on: {context}: {exc}"
    transient = type(exc).__name__ in _TRANSIENT_CLASS_NAMES or any(
        marker in str(exc).lower() for marker in _TRANSIENT_MESSAGE_MARKERS
    )
    if transient:
        return TransientBackendError(message)
    return BackendExecutionError(message)


@contextlib.contextmanager
def _wrap_errors(context: str) -> Iterator[None]:
    """Re-raise raw duckdb exceptions as their taxonomy translation.

    Our own :class:`ReproError` family passes through untouched — the
    connector's catalog checks raise it deliberately from inside these
    blocks.
    """
    try:
        yield
    except ReproError:
        raise
    except Exception as exc:  # duckdb.Error hierarchy (package optional)
        raise _translate_duckdb_error(exc, context) from exc

_INSTALL_HINT = (
    "the 'duckdb' package is not installed in this environment.\n"
    "The DuckDB backend is an optional extra; install it with\n"
    "    pip install repro[duckdb]\n"
    "or\n"
    "    pip install duckdb\n"
    "then retry connect(backend='duckdb').  The stdlib alternative is\n"
    "connect(backend='sqlite'), which needs no extra packages."
)

#: per-database settings applied once by :meth:`prepare_training` — the
#: DuckDB analogue of the sqlite connector's PERF_PRAGMAS.  ``threads=1``
#: is the determinism pin (see the module docstring); insertion order
#: must be preserved because ``replace_column``/table views correlate
#: values with ``rowid`` scan order.
DUCKDB_SETTINGS = (
    ("threads", "1"),
    ("preserve_insertion_order", "true"),
)


def _require_duckdb():
    """Import and return the optional ``duckdb`` module or raise a
    :class:`BackendError` carrying install instructions."""
    try:
        import duckdb  # type: ignore
    except ImportError as exc:
        raise BackendError(_INSTALL_HINT) from exc
    return duckdb


def _duck_type(array: np.ndarray) -> str:
    """DuckDB column type for a NumPy array's dtype kind."""
    kind = np.asarray(array).dtype.kind
    if kind in ("i", "u", "b"):
        return "BIGINT"
    if kind == "f":
        return "DOUBLE"
    return "VARCHAR"


@register_backend("duckdb")
class DuckDBConnector(TempNamespaceMixin, Connector):
    """Connector over the optional ``duckdb`` package.

    Shares the SQLite connector's table-view/marshalling machinery
    (:class:`SQLiteTableView` duck-types against ``_column_names`` /
    ``_num_rows`` / ``_fetch_column``) and mirrors its concurrency
    architecture: one owner connection for writes, serialized by a
    re-entrant lock, plus a checkout/checkin pool of cursors for
    concurrent reads.
    """

    dialect = "duckdb"

    def __init__(self, path: str = ":memory:", name: str = "repro"):
        duckdb = _require_duckdb()
        self.name = name
        self.path = path
        self._conn = duckdb.connect(path)
        # One re-entrant lock serializes every use of the owner
        # connection: DDL, UPDATEs and metadata reads funnel through it,
        # so DuckDB sees a single writer while pooled cursors overlap.
        self._lock = threading.RLock()
        # Cursor pool: checked out per execute_read call and checked
        # back in afterwards, so the pool size is bounded by the *peak
        # concurrency* (the scheduler's worker count), not by how many
        # threads ever existed — QueryScheduler.run() spawns fresh
        # threads every round.
        self._free_readers: List[Any] = []
        self._all_readers: List[Any] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._settings_applied = False
        self._dialect = DuckDBDialect()
        self._data_version = 0
        self._schema_cache: Dict[str, Tuple[int, List[str]]] = {}
        self._column_cache: Dict[Tuple[str, str], Tuple[int, Column]] = {}
        self._rows_cache: Dict[str, Tuple[int, int]] = {}
        self._indexed: set = set()
        self.index_seconds = 0.0
        self.profiles: List[QueryProfile] = []
        self.profiling_enabled = True
        self.capabilities = Capabilities(
            column_swap=False,
            query_profiles=True,
            window_functions=True,
            union_all=True,
            narrow_update=True,
            # Pooled per-thread cursors (DuckDB's documented threading
            # model) make the read path concurrency-safe, so the
            # scheduler fans evaluation rounds and forest trees out here
            # exactly as it does on sqlite.
            concurrent_read=True,
            in_process=True,
            # process_safe stays False: a second process cannot open a
            # duckdb database file another process holds read-write, so
            # there is no cheap task serialization; executor="process"
            # falls back to the thread pool here.
            process_safe=False,
        )

    # ------------------------------------------------------------------
    # Cursor pool
    # ------------------------------------------------------------------
    def _checkout_reader(self):
        """Check a pooled cursor out for one rows-returning statement.

        ``connection.cursor()`` is DuckDB's threading primitive: an
        independent handle onto the same database, safe to execute on
        the calling thread while the owner connection (and other
        cursors) run elsewhere.  Cursors see committed state, so a
        message table CREATEd by a scheduler build task is visible to
        the split query that depends on it.
        """
        with self._pool_lock:
            if self._closed:
                raise BackendExecutionError("duckdb connector is closed")
            if self._free_readers:
                return self._free_readers.pop()
        with self._lock:
            cursor = self._conn.cursor()
        with self._pool_lock:
            if self._closed:
                cursor.close()
                raise BackendExecutionError("duckdb connector is closed")
            self._all_readers.append(cursor)
        return cursor

    def _checkin_reader(self, cursor) -> None:
        with self._pool_lock:
            if not self._closed:
                self._free_readers.append(cursor)
                return
        cursor.close()

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Run ``;``-separated statements on the owner connection."""
        result: Optional[Relation] = None
        for statement in split_statements(sql):
            result = self._run_statement(statement, tag)
        return result

    def execute_read(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Run a rows-returning statement on a pooled cursor.

        Statements that write (and multi-statement scripts) funnel back
        through :meth:`execute` — the owner connection under the write
        lock — so pooled cursors stay read-only by construction (DuckDB
        has no per-cursor ``query_only`` pin; the dialect classifier is
        the gate).
        """
        statements = split_statements(sql)
        if len(statements) != 1:
            return self.execute(sql, tag)
        translated = self._dialect.translate(statements[0])
        kind, returns_rows = self._dialect.classify(translated)
        if not returns_rows:
            return self.execute(sql, tag)
        cursor = self._checkout_reader()
        start = time.perf_counter()
        try:
            with _wrap_errors(repr(translated)):
                cursor.execute(translated)
                result = self._relation_from_cursor(cursor)
        finally:
            self._checkin_reader(cursor)
        elapsed = time.perf_counter() - start
        if self.profiling_enabled:
            self.profiles.append(QueryProfile(
                sql=statements[0],
                kind=kind,
                seconds=elapsed,
                rows_out=result.num_rows,
                tag=tag,
                started=start,
            ))
        return result

    def _run_statement(self, statement: str, tag: Optional[str]) -> Optional[Relation]:
        translated = self._dialect.translate(statement)
        kind, returns_rows = self._dialect.classify(translated)
        start = time.perf_counter()
        with self._lock:
            with _wrap_errors(repr(translated)):
                cursor = self._conn.execute(translated)
            result: Optional[Relation] = None
            changed_rows = 0
            if returns_rows:
                result = self._relation_from_cursor(cursor)
            else:
                if kind in ("Update", "Insert", "Delete"):
                    # DuckDB returns the affected-row count as a one-row
                    # relation — the frontier census prices narrow label
                    # updates with it (sqlite uses cursor.rowcount).
                    try:
                        row = cursor.fetchone()
                        changed_rows = int(row[0]) if row else 0
                    except Exception:
                        changed_rows = 0
                self._bump_version()
        elapsed = time.perf_counter() - start
        if self.profiling_enabled:
            rows_out = result.num_rows if result is not None else changed_rows
            self.profiles.append(QueryProfile(
                sql=statement,
                kind=kind,
                seconds=elapsed,
                rows_out=rows_out,
                tag=tag,
                started=start,
            ))
        return result

    @staticmethod
    def _relation_from_cursor(cursor) -> Relation:
        names = [d[0] for d in cursor.description or ()]
        rows = cursor.fetchall()
        columns = [
            column_from_values(name, [row[i] for row in rows])
            for i, name in enumerate(names)
        ]
        return Relation(columns)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        data: Dict[str, Union[np.ndarray, Sequence]],
        config=None,
        replace: bool = False,
    ) -> SQLiteTableView:
        """Create a table from a column-name -> array mapping.

        ``config`` is an embedded-engine storage preset; DuckDB owns its
        physical layout, so the parameter is accepted and ignored.
        """
        arrays = {col: np.asarray(values) for col, values in data.items()}
        with self._lock:
            if replace:
                self.drop_table(name, if_exists=True)
            elif self.has_table(name):
                raise CatalogError(f"table {name!r} already exists")
            self._forget_indexes(name)
            decls = ", ".join(
                f"{col} {_duck_type(arr)}" for col, arr in arrays.items()
            )
            check_equal_lengths(name, arrays)
            placeholders = ", ".join(["?"] * len(arrays))
            rows = list(zip(*(to_sql_values(arr) for arr in arrays.values())))
            with _wrap_errors(f"CREATE TABLE {name}"):
                self._conn.execute(f"CREATE TABLE {name} ({decls})")
                if rows:
                    self._conn.executemany(
                        f"INSERT INTO {name} VALUES ({placeholders})", rows
                    )
            self._bump_version()
        return SQLiteTableView(self, name)

    def _forget_indexes(self, table_name: str) -> None:
        """Drop the idempotency record of a table's training indexes — a
        recreated table starts unindexed and must be indexable again."""
        key = table_name.lower()
        self._indexed = {i for i in self._indexed if i[0] != key}

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Drop a table; raise :class:`CatalogError` when it is missing
        unless ``if_exists``."""
        with self._lock:
            if not if_exists and not self.has_table(name):
                raise CatalogError(f"no such table: {name!r}")
            with _wrap_errors(f"DROP TABLE {name}"):
                self._conn.execute(f"DROP TABLE IF EXISTS {name}")
            self._forget_indexes(name)
            self._bump_version()

    def rename_table(self, old: str, new: str) -> None:
        """Rename a table; both missing-source and existing-target fail
        with :class:`CatalogError` (matching the embedded engine)."""
        with self._lock:
            if not self.has_table(old):
                raise CatalogError(f"no such table: {old!r}")
            if self.has_table(new):
                raise CatalogError(f"table {new!r} already exists")
            with _wrap_errors(f"ALTER TABLE {old} RENAME TO {new}"):
                self._conn.execute(f"ALTER TABLE {old} RENAME TO {new}")
            self._forget_indexes(old)
            self._forget_indexes(new)
            self._bump_version()

    def table(self, name: str) -> SQLiteTableView:
        """A lazy read view over a stored table."""
        if not self.has_table(name):
            raise CatalogError(f"no such table: {name!r}")
        return SQLiteTableView(self, name)

    def has_table(self, name: str) -> bool:
        """Case-insensitive existence check against the main schema."""
        with self._lock:
            with _wrap_errors("has_table"):
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM information_schema.tables "
                    "WHERE table_schema = 'main' "
                    "AND lower(table_name) = lower(?)",
                    [name],
                ).fetchone()
        return row[0] > 0

    def table_names(self) -> List[str]:
        """Sorted names of every table in the main schema."""
        with self._lock:
            with _wrap_errors("table_names"):
                rows = self._conn.execute(
                    "SELECT table_name FROM information_schema.tables "
                    "WHERE table_schema = 'main' ORDER BY table_name"
                ).fetchall()
        return [r[0] for r in rows]

    # Temporary namespace: temp_name/cleanup_temp from TempNamespaceMixin.

    # ------------------------------------------------------------------
    # Column replacement (residual updates)
    # ------------------------------------------------------------------
    def replace_column(
        self,
        table_name: str,
        column_name: str,
        values: np.ndarray,
        strategy: str = "swap",
    ) -> None:
        """Rewrite one column via a rowid-keyed scratch join.

        The scratch table is keyed by the table's *actual* rowids (they
        need not be contiguous after rebuilds), fetched in the same scan
        order ``values`` was computed in; a length mismatch raises
        instead of silently NULLing unmatched rows.  All logical
        strategies map onto this one physical write; ``strategy`` is
        still validated so typos fail identically across backends.
        """
        check_update_strategy(strategy)
        with self._lock:
            with _wrap_errors(f"replace_column({table_name}.{column_name})"):
                rowids = [r[0] for r in self._conn.execute(
                    f"SELECT rowid FROM {table_name} ORDER BY rowid"
                ).fetchall()]
                array = np.asarray(values)
                if len(rowids) != len(array):
                    raise BackendExecutionError(
                        f"replace_column: {len(array)} values for "
                        f"{len(rowids)} rows of {table_name!r}"
                    )
                scratch = self.temp_name("swap")
                self.create_table(
                    scratch,
                    {"rid": np.asarray(rowids, dtype=np.int64), "v": array},
                )
                self._conn.execute(
                    f"UPDATE {table_name} SET {column_name} = ("
                    f"SELECT v FROM {scratch} "
                    f"WHERE {scratch}.rid = {table_name}.rowid)"
                )
                self.drop_table(scratch)
            self._bump_version()

    # ------------------------------------------------------------------
    # Training setup: per-database settings + join-key access paths
    # ------------------------------------------------------------------
    def prepare_training(self, graph, lifted: Optional[Dict[str, str]] = None) -> float:
        """One-time physical setup before message passing starts.

        Applies :data:`DUCKDB_SETTINGS` once per connector (the
        ``threads=1`` determinism pin plus insertion-order preservation)
        and creates an ART index on every join-key column of the
        training tables — including the lifted fact's — the access path
        the incremental frontier's narrow semi-join ``UPDATE``s and key
        lookups probe.  Idempotent per (table, key tuple); the time
        spent is recorded on ``index_seconds`` and as ``"index"``-tagged
        query profiles, matching the sqlite connector.
        """
        lifted = dict(lifted or {})
        start = time.perf_counter()
        created = []
        with self._lock:
            settings_fresh = not self._settings_applied
            if settings_fresh:
                with _wrap_errors("SET training settings"):
                    for setting, value in DUCKDB_SETTINGS:
                        self._conn.execute(f"SET {setting} TO {value}")
                self._settings_applied = True
            for edge in graph.edges:
                for relation in (edge.left, edge.right):
                    table = lifted.get(relation, relation)
                    keys = tuple(edge.keys_for(relation))
                    ident = (table.lower(), keys)
                    if ident in self._indexed or not self.has_table(table):
                        continue
                    # Deterministic digest: underscore-joined names can
                    # collide across (table, keys) pairs, and a colliding
                    # name would make CREATE INDEX IF NOT EXISTS a silent
                    # no-op.
                    digest = zlib.crc32("|".join((table.lower(),) + keys).encode())
                    index_name = f"jb_idx_{digest:08x}"
                    with _wrap_errors(f"CREATE INDEX {index_name}"):
                        self._conn.execute(
                            f"CREATE INDEX IF NOT EXISTS {index_name} "
                            f"ON {table} ({', '.join(keys)})"
                        )
                    self._indexed.add(ident)
                    created.append(index_name)
        elapsed = time.perf_counter() - start
        self.index_seconds += elapsed
        if self.profiling_enabled and settings_fresh:
            rendered = ", ".join(f"{s}={v}" for s, v in DUCKDB_SETTINGS)
            self.profiles.append(QueryProfile(
                sql=f"-- training setup: per-database settings ({rendered})",
                kind="Pragma",
                seconds=0.0,
                rows_out=len(DUCKDB_SETTINGS),
                tag="index",
                started=start,
            ))
        if self.profiling_enabled and created:
            self.profiles.append(QueryProfile(
                sql=f"-- training setup: {len(created)} join-key indexes",
                kind="Index",
                seconds=elapsed,
                rows_out=len(created),
                tag="index",
                started=start,
            ))
        return elapsed

    # ------------------------------------------------------------------
    # Cached metadata reads (invalidated on any write)
    # ------------------------------------------------------------------
    def _bump_version(self) -> None:
        self._data_version += 1

    def _column_names(self, table_name: str) -> List[str]:
        key = table_name.lower()
        cached = self._schema_cache.get(key)
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        with self._lock:
            version = self._data_version
            with _wrap_errors(f"column names of {table_name}"):
                rows = self._conn.execute(
                    "SELECT column_name FROM information_schema.columns "
                    "WHERE table_schema = 'main' "
                    "AND lower(table_name) = lower(?) "
                    "ORDER BY ordinal_position",
                    [table_name],
                ).fetchall()
        if not rows:
            raise CatalogError(f"no such table: {table_name!r}")
        names = [r[0] for r in rows]
        self._schema_cache[key] = (version, names)
        return names

    def _num_rows(self, table_name: str) -> int:
        key = table_name.lower()
        cached = self._rows_cache.get(key)
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        with self._lock:
            version = self._data_version
            with _wrap_errors(f"COUNT rows of {table_name}"):
                n = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table_name}"
                ).fetchone()[0]
        self._rows_cache[key] = (version, n)
        return n

    def _fetch_column(self, table_name: str, column_name: str) -> Column:
        wanted = column_name.lower()
        actual = None
        for name in self._column_names(table_name):
            if name.lower() == wanted:
                actual = name
                break
        if actual is None:
            raise BackendExecutionError(
                f"table {table_name!r} has no column {column_name!r}"
            )
        key = (table_name.lower(), wanted)
        cached = self._column_cache.get(key)
        if cached is not None and cached[0] == self._data_version:
            return cached[1]
        with self._lock:
            version = self._data_version
            with _wrap_errors(f"fetch {table_name}.{actual}"):
                values = [r[0] for r in self._conn.execute(
                    f"SELECT {actual} FROM {table_name} ORDER BY rowid"
                ).fetchall()]
        column = column_from_values(actual, values)
        if len(self._column_cache) > 512:
            self._column_cache.clear()
        self._column_cache[key] = (version, column)
        return column

    # ------------------------------------------------------------------
    # Profiling / lifecycle
    # ------------------------------------------------------------------
    def reset_profiles(self) -> None:
        """Clear the recorded :class:`QueryProfile` list."""
        self.profiles.clear()

    def close(self) -> None:
        """Close every pooled cursor and the owner connection
        (idempotent; in-flight checkouts fail cleanly afterwards)."""
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            readers, self._all_readers = self._all_readers, []
            self._free_readers = []
        for cursor in readers:
            try:
                cursor.close()
            except Exception:  # pragma: no cover - driver teardown races
                pass
        self._conn.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"DuckDBConnector({self.path!r})"
