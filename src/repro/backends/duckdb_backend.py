"""DuckDBConnector: the paper's actual demo engine, as an optional extra.

DuckDB speaks essentially the same SQL surface the Factorizer emits (it
is the dialect the paper developed against), so no translation layer is
needed — only result marshalling.  The ``duckdb`` package is **not** a
dependency of this repo; construction raises a clear, actionable error
when it is absent.  Install it with::

    pip install repro[duckdb]        # or: pip install duckdb

and ``joinboost.connect(backend="duckdb")`` will use it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backends.base import (
    BackendError,
    Capabilities,
    Connector,
    TempNamespaceMixin,
    check_equal_lengths,
    check_update_strategy,
    column_from_values,
    register_backend,
    to_sql_values,
)
from repro.backends.dialect import SQLiteDialect, split_statements
from repro.backends.sqlite3_backend import SQLiteTableView
from repro.engine.database import QueryProfile
from repro.engine.result import Relation
from repro.exceptions import CatalogError, ExecutionError

_INSTALL_HINT = (
    "the 'duckdb' package is not installed in this environment.\n"
    "The DuckDB backend is an optional extra; install it with\n"
    "    pip install repro[duckdb]\n"
    "or\n"
    "    pip install duckdb\n"
    "then retry connect(backend='duckdb').  The stdlib alternative is\n"
    "connect(backend='sqlite'), which needs no extra packages."
)


def _require_duckdb():
    try:
        import duckdb  # type: ignore
    except ImportError as exc:
        raise BackendError(_INSTALL_HINT) from exc
    return duckdb


@register_backend("duckdb")
class DuckDBConnector(TempNamespaceMixin, Connector):
    """Connector over the optional ``duckdb`` package.

    Shares the SQLite connector's table-view/marshalling machinery; the
    dialect needs no rewriting because DuckDB computes REAL division for
    ``/`` on aggregates and ships the statistical aggregates natively.
    """

    dialect = "duckdb"

    def __init__(self, path: str = ":memory:", name: str = "repro"):
        duckdb = _require_duckdb()
        self.name = name
        self.path = path
        self._conn = duckdb.connect(path)
        self.profiles: List[QueryProfile] = []
        self.profiling_enabled = True
        self.capabilities = Capabilities(
            column_swap=False,
            query_profiles=True,
            window_functions=True,
            union_all=True,
            narrow_update=True,
            # One shared duckdb connection: its internal lock serializes
            # statements, so fanning queries out to a thread pool buys
            # nothing and risks cursor-state races — the scheduler keeps
            # this backend on the serial path until a per-thread cursor
            # pool lands.
            concurrent_read=False,
            in_process=True,
        )

    # -- statement execution -------------------------------------------
    def execute(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        result: Optional[Relation] = None
        for statement in split_statements(sql):
            kind, returns_rows = SQLiteDialect.classify(statement)
            start = time.perf_counter()
            try:
                cursor = self._conn.execute(statement)
            except Exception as exc:  # duckdb.Error hierarchy
                raise ExecutionError(
                    f"duckdb backend failed on: {statement!r}: {exc}"
                ) from exc
            result = None
            if returns_rows:
                names = [d[0] for d in cursor.description]
                rows = cursor.fetchall()
                result = Relation([
                    column_from_values(column, [row[i] for row in rows])
                    for i, column in enumerate(names)
                ])
            elapsed = time.perf_counter() - start
            if self.profiling_enabled:
                self.profiles.append(QueryProfile(
                    sql=statement, kind=kind, seconds=elapsed,
                    rows_out=result.num_rows if result is not None else 0,
                    tag=tag,
                ))
        return result

    # -- table management ----------------------------------------------
    def create_table(
        self,
        name: str,
        data: Dict[str, Union[np.ndarray, Sequence]],
        config=None,
        replace: bool = False,
    ):
        if replace:
            self.drop_table(name, if_exists=True)
        elif self.has_table(name):
            raise CatalogError(f"table {name!r} already exists")
        arrays = {col: np.asarray(values) for col, values in data.items()}
        decls = ", ".join(
            f"{col} {_duck_type(arr)}" for col, arr in arrays.items()
        )
        self._conn.execute(f"CREATE TABLE {name} ({decls})")
        placeholders = ", ".join(["?"] * len(arrays))
        check_equal_lengths(name, arrays)
        rows = list(zip(*(to_sql_values(arr) for arr in arrays.values())))
        self._conn.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})", rows
        )
        return SQLiteTableView(self, name)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if not if_exists and not self.has_table(name):
            raise CatalogError(f"no such table: {name!r}")
        self._conn.execute(f"DROP TABLE IF EXISTS {name}")

    def rename_table(self, old: str, new: str) -> None:
        if not self.has_table(old):
            raise CatalogError(f"no such table: {old!r}")
        if self.has_table(new):
            raise CatalogError(f"table {new!r} already exists")
        self._conn.execute(f"ALTER TABLE {old} RENAME TO {new}")

    def table(self, name: str) -> SQLiteTableView:
        if not self.has_table(name):
            raise CatalogError(f"no such table: {name!r}")
        return SQLiteTableView(self, name)

    def has_table(self, name: str) -> bool:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM information_schema.tables "
            "WHERE lower(table_name) = lower(?)",
            [name],
        ).fetchone()
        return row[0] > 0

    def table_names(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT table_name FROM information_schema.tables ORDER BY table_name"
        ).fetchall()
        return [r[0] for r in rows]

    # Temp namespace: temp_name/cleanup_temp from TempNamespaceMixin.

    def replace_column(
        self,
        table_name: str,
        column_name: str,
        values: np.ndarray,
        strategy: str = "swap",
    ) -> None:
        """Rewrite one column via a rowid-keyed scratch join.

        The scratch table is keyed by the table's *actual* rowids (they
        need not be contiguous after rebuilds), fetched in the same scan
        order ``values`` was computed in; a length mismatch raises
        instead of silently NULLing unmatched rows.
        """
        check_update_strategy(strategy)
        rowids = [r[0] for r in self._conn.execute(
            f"SELECT rowid FROM {table_name} ORDER BY rowid"
        ).fetchall()]
        array = np.asarray(values)
        if len(rowids) != len(array):
            raise ExecutionError(
                f"replace_column: {len(array)} values for "
                f"{len(rowids)} rows of {table_name!r}"
            )
        scratch = self.temp_name("swap")
        self.create_table(
            scratch,
            {"rid": np.asarray(rowids, dtype=np.int64), "v": array},
        )
        self._conn.execute(
            f"UPDATE {table_name} SET {column_name} = ("
            f"SELECT v FROM {scratch} WHERE {scratch}.rid = {table_name}.rowid)"
        )
        self.drop_table(scratch)

    # -- view support (duck-typed against SQLiteConnector) ----------------
    def _column_names(self, table_name: str) -> List[str]:
        rows = self._conn.execute(
            f"SELECT column_name FROM information_schema.columns "
            f"WHERE lower(table_name) = lower(?) ORDER BY ordinal_position",
            [table_name],
        ).fetchall()
        if not rows:
            raise CatalogError(f"no such table: {table_name!r}")
        return [r[0] for r in rows]

    def _num_rows(self, table_name: str) -> int:
        return self._conn.execute(
            f"SELECT COUNT(*) FROM {table_name}"
        ).fetchone()[0]

    def _fetch_column(self, table_name: str, column_name: str):
        values = [r[0] for r in self._conn.execute(
            f"SELECT {column_name} FROM {table_name} ORDER BY rowid"
        ).fetchall()]
        return column_from_values(column_name, values)

    # -- profiling / lifecycle -------------------------------------------
    def reset_profiles(self) -> None:
        self.profiles.clear()

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"DuckDBConnector({self.path!r})"


def _duck_type(array: np.ndarray) -> str:
    kind = np.asarray(array).dtype.kind
    if kind in ("i", "u", "b"):
        return "BIGINT"
    if kind == "f":
        return "DOUBLE"
    return "VARCHAR"
