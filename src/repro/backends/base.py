"""The Connector protocol — JoinBoost's one-DBMS-wide waist.

The paper's portability claim (Section 5.1) is that the Factorizer emits
*only SQL*, so training runs unchanged atop any DBMS.  This module pins
down the exact surface that claim needs: a :class:`Connector` executes
SQL strings and returns :class:`~repro.engine.result.Relation` results,
manages tables and a temporary namespace, and advertises what its engine
can do via :class:`Capabilities`.  Everything above this layer — the
Factorizer, trainers, residual updaters, benches — talks to a Connector
and never to a concrete engine.

Three implementations ship:

* :class:`~repro.backends.embedded.EmbeddedConnector` — the in-process
  engine under ``repro.engine.database.Database`` (the default);
* :class:`~repro.backends.sqlite3_backend.SQLiteConnector` — stdlib
  ``sqlite3``, an actual second DBMS, with a dialect-translation layer;
* :class:`~repro.backends.duckdb_backend.DuckDBConnector` — DuckDB when
  the optional ``duckdb`` package is installed.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine.result import Relation

# BackendError moved to repro.exceptions (PR 8, error taxonomy) so the
# whole hierarchy lives in one module; re-exported here for compat.
from repro.exceptions import BackendError, StorageError
from repro.storage.catalog import TEMP_PREFIX

#: the logical residual-update strategies every backend must accept
#: (external engines map them all onto their own physical write)
UPDATE_STRATEGIES = ("update", "create", "swap")

__all__ = [
    "BackendError",
    "Capabilities",
    "Connector",
    "TempNamespaceMixin",
    "UPDATE_STRATEGIES",
    "backend_names",
    "check_equal_lengths",
    "check_update_strategy",
    "column_from_values",
    "get_backend",
    "register_backend",
    "to_sql_values",
]


def check_update_strategy(strategy: str) -> None:
    """Reject typo'd strategies uniformly across backends (the embedded
    engine raises the same error from its physical dispatch)."""
    if strategy not in UPDATE_STRATEGIES:
        raise StorageError(f"unknown update strategy {strategy!r}")


@dataclasses.dataclass(frozen=True)
class Capabilities:
    """What a connector's engine supports; callers branch on these flags
    instead of isinstance-checking connectors."""

    #: pointer-swap of a stored column without a write transaction
    column_swap: bool = False
    #: the engine records per-query latency profiles (Figure 9 census)
    query_profiles: bool = False
    #: window functions (``SUM(...) OVER (ORDER BY ...)``) are available;
    #: without them the split finder falls back to client-side prefix scans
    window_functions: bool = True
    #: ``UNION ALL`` is available; without it the frontier evaluator falls
    #: back to one best-split query per (leaf, feature)
    union_all: bool = True
    #: predicated in-place ``UPDATE t SET col = v WHERE ...`` (with
    #: semi-join ``IN`` subqueries) is available; without it the frontier
    #: evaluator keeps per-round label rebuilds instead of maintaining a
    #: persistent leaf-membership column incrementally
    narrow_update: bool = True
    #: concurrent read-only queries from multiple threads are safe (the
    #: connector either pools per-thread connections or has an audited
    #: in-process read path); without it the scheduler never fans
    #: evaluation rounds or forest trees out to a worker pool
    concurrent_read: bool = True
    #: the engine runs inside this process (no network / IPC hop)
    in_process: bool = True
    #: the connector can serialize read-only tasks for *worker processes*
    #: (see :meth:`Connector.process_task_payload`): either the database
    #: is a file another process can open (sqlite's WAL file) or the
    #: referenced base relations pickle cheaply (the embedded engine's
    #: immutable columns); without it ``executor="process"`` falls back
    #: to the thread pool
    process_safe: bool = False


class Connector:
    """Abstract DBMS connector: execute SQL, manage tables, report caps.

    The protocol is intentionally the surface the training stack already
    consumes, so a bare :class:`~repro.engine.database.Database` is itself
    protocol-compatible; :class:`EmbeddedConnector` wraps one to add the
    capability flags and dialect identity.
    """

    #: dialect tag ("embedded", "sqlite", "duckdb") for diagnostics
    dialect: str = "unknown"
    capabilities: Capabilities = Capabilities()

    # -- statement execution -------------------------------------------
    def execute(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Run one or more ``;``-separated statements on the owner handle.

        Returns the final SELECT's result as a
        :class:`~repro.engine.result.Relation`, or ``None`` if the last
        statement was DDL/DML.  This is the *mutating* entry point: any
        statement may write, so implementations serialize calls on the
        owning connection (single writer).  ``tag`` labels the resulting
        :class:`QueryProfile` for the census (``"feature"``,
        ``"message"``, ``"frontier"``, ...).  Raises
        :class:`~repro.exceptions.ExecutionError` on engine errors and
        :class:`~repro.exceptions.CatalogError` on missing/duplicate
        tables where the statement makes that distinction.
        """
        raise NotImplementedError

    def execute_read(self, sql: str, tag: Optional[str] = None) -> Optional[Relation]:
        """Run a read-only query from any thread.

        The scheduler's worker pool issues the frontier's fused split
        queries through this entry point.  Connectors with per-thread
        resources (the sqlite pool) execute rows-returning statements on
        the calling thread's own connection; anything that writes is
        funneled back through :meth:`execute` (the owning connection).
        The default delegates to :meth:`execute`, which is correct for
        engines whose read path is natively thread-safe.
        """
        return self.execute(sql, tag=tag)

    # -- table management ----------------------------------------------
    def create_table(
        self,
        name: str,
        data: Dict[str, Union[np.ndarray, Sequence]],
        config=None,
        replace: bool = False,
    ):
        """Create a table from a column-name -> array mapping.

        ``config`` is a storage preset understood by the embedded engine;
        external engines accept and ignore it (their storage layout is
        their own business).
        """
        raise NotImplementedError

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Drop a stored table (a mutation; owner-serialized).

        Raises :class:`~repro.exceptions.CatalogError` when ``name`` does
        not exist unless ``if_exists`` is set, matching the embedded
        engine's semantics so callers can rely on one behavior.
        """
        raise NotImplementedError

    def rename_table(self, old: str, new: str) -> None:
        """Rename ``old`` to ``new`` (a mutation; owner-serialized).

        The swap half of create-and-swap residual updates.  Raises
        :class:`~repro.exceptions.CatalogError` when ``old`` is missing
        or ``new`` already exists.
        """
        raise NotImplementedError

    def table(self, name: str):
        """A read view of a stored table: ``column_names()``,
        ``num_rows()``, ``column(name) -> Column``, ``in`` support."""
        raise NotImplementedError

    def has_table(self, name: str) -> bool:
        """Whether ``name`` is a stored table (read-only, never raises)."""
        raise NotImplementedError

    def table_names(self) -> List[str]:
        """All stored table names, including ``jb_tmp_`` temporaries.

        Read-only; :meth:`cleanup_temp` filters this list by prefix, so
        external engines must report their catalog faithfully.
        """
        raise NotImplementedError

    # -- temporary namespace (the paper's safety contract) --------------
    def temp_name(self, hint: str = "t") -> str:
        """Mint a fresh name in the temporary namespace."""
        raise NotImplementedError

    def cleanup_temp(self, keep: Optional[List[str]] = None) -> int:
        """Drop JoinBoost's temporary tables; returns how many dropped."""
        raise NotImplementedError

    # -- physical column replacement (residual updates, Section 5.4) ----
    def replace_column(
        self,
        table_name: str,
        column_name: str,
        values: np.ndarray,
        strategy: str = "swap",
    ) -> None:
        """Replace one stored column with ``values`` (row order preserved).

        ``strategy`` is the physical method the embedded engine honours
        (``update`` / ``create`` / ``swap``); engines without exposed
        storage internals implement whatever their fastest equivalent is.
        """
        raise NotImplementedError

    # -- training setup ---------------------------------------------------
    def prepare_training(self, graph, lifted: Optional[Dict[str, str]] = None) -> float:
        """One-time physical setup before message passing starts.

        ``graph`` is the join graph about to be trained on and ``lifted``
        maps relations to their lifted physical tables.  Engines use this
        to build access paths the training workload will hammer — the
        sqlite connector creates indexes on every join-key column
        (including the lifted fact's) and refreshes planner statistics
        with ``ANALYZE``; the embedded engine pre-warms its encoded-key
        cache through :meth:`Factorizer.warm_encodings` instead.  Returns
        the seconds spent (0.0 for the default no-op).
        """
        return 0.0

    # -- process-worker serialization ------------------------------------
    def process_task_payload(
        self, sql: str, tag: Optional[str] = None
    ) -> Optional[Dict[str, object]]:
        """Serialize one read-only query as a worker-process task spec.

        Connectors with ``capabilities.process_safe`` return a plain-data
        payload dict that :func:`repro.engine.procpool.execute_task_payload`
        can execute in a *different process* — rebuilding its own database
        handle from the spec — with a result bit-identical to running
        ``execute_read(sql)`` here.  Returning ``None`` declines (the
        statement writes, is multi-statement, or references state that
        does not serialize); the scheduler then runs the query inline.
        The default declines everything, which is the correct behavior
        for connectors that never set ``process_safe``.
        """
        return None

    # -- profiling -------------------------------------------------------
    #: per-query :class:`~repro.engine.database.QueryProfile` records;
    #: connectors that profile shadow this with an instance list
    profiles: Sequence = ()

    def reset_profiles(self) -> None:
        """Clear accumulated query profiles (no-op for non-profiling
        engines); the bench harness calls this between measured legs."""
        pass

    def profiles_by_tag(self) -> Dict[str, list]:
        """Group :attr:`profiles` by their census tag (``"untagged"``
        collects profiles whose statement carried no tag)."""
        grouped: Dict[str, list] = {}
        for profile in self.profiles:
            grouped.setdefault(profile.tag or "untagged", []).append(profile)
        return grouped

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release engine resources (connections, scratch directories).

        Must be idempotent — training drivers and tests call it from
        ``finally`` blocks that may run after an explicit close.  After
        closing, further statement execution may raise.
        """
        pass

    @property
    def unwrapped(self) -> "Connector":
        """The innermost backend behind any proxy stack (self here).

        ``connect(..., chaos=..., retry=...)`` layers fault-injection
        and retry proxies over the backend; code that needs the concrete
        connector (type checks, engine internals) reaches it here
        without knowing how many wrappers are in the way.
        """
        return self

    def __enter__(self) -> "Connector":
        """Context-manager support: ``with connect(...) as db:``."""
        return self

    def __exit__(self, *exc) -> None:
        """Close the connector on context exit (exceptions propagate)."""
        self.close()


# ---------------------------------------------------------------------------
# Row <-> Column marshalling shared by the external connectors
# ---------------------------------------------------------------------------
def column_from_values(name: str, values: Sequence) -> "Column":
    """Build a typed, null-masked Column from driver row values.

    None is the SQL NULL; it maps to the embedded engine's convention
    (NaN + validity mask for floats, masked zeros for ints).
    """
    from repro.storage.column import Column, ColumnType

    present = [v for v in values if v is not None]
    if not present:
        return Column(name, np.full(len(values), np.nan))
    if any(isinstance(v, str) for v in present):
        array = np.array(
            [None if v is None else str(v) for v in values], dtype=object
        )
        valid = np.array([v is not None for v in values], dtype=bool)
        return Column(name, array, ColumnType.STR,
                      None if valid.all() else valid)
    if all(isinstance(v, int) for v in present):
        if len(present) == len(values):
            return Column(name, np.array(values, dtype=np.int64))
        array = np.array([0 if v is None else v for v in values],
                         dtype=np.int64)
        valid = np.array([v is not None for v in values], dtype=bool)
        return Column(name, array, ColumnType.INT, valid)
    array = np.array(
        [np.nan if v is None else float(v) for v in values], dtype=np.float64
    )
    return Column(name, array)


def to_sql_values(array: np.ndarray) -> List:
    """NumPy array -> driver parameter list (NaN becomes NULL)."""
    import math

    kind = array.dtype.kind
    if kind == "f":
        return [None if math.isnan(v) else float(v) for v in array.tolist()]
    if kind in ("i", "u", "b"):
        return [int(v) for v in array.tolist()]
    return [None if v is None else str(v) for v in array.tolist()]


def check_equal_lengths(name: str, arrays: Dict[str, np.ndarray]) -> None:
    """Ragged create_table input fails loudly, matching the embedded
    engine, instead of zip() silently truncating to the shortest."""
    lengths = {col: len(arr) for col, arr in arrays.items()}
    if len(set(lengths.values())) > 1:
        raise StorageError(
            f"table {name!r} columns have unequal lengths: {lengths}"
        )


#: guards lazy per-connector counter creation only (next() itself is
#: atomic); without it, two scheduler threads' *first-ever* temp_name
#: calls on a fresh connector could each build a counter and collide
_TEMP_NAME_INIT_LOCK = threading.Lock()


class TempNamespaceMixin:
    """Counter-minted ``jb_tmp_`` names + cleanup for external engines.

    Requires ``table_names()`` and ``drop_table(name, if_exists=True)``
    from the host connector.  Names mint through ``itertools.count`` —
    ``next()`` is atomic in CPython, so concurrent scheduler tasks
    (parallel forest trees each lifting and messaging) can never be
    handed the same temp name.
    """

    def temp_name(self, hint: str = "t") -> str:
        """Mint a fresh ``jb_tmp_{hint}_{n}`` name (thread-safe)."""
        counter = getattr(self, "_temp_name_counter", None)
        if counter is None:
            with _TEMP_NAME_INIT_LOCK:
                counter = getattr(self, "_temp_name_counter", None)
                if counter is None:
                    counter = self._temp_name_counter = itertools.count(1)
        return f"{TEMP_PREFIX}{hint}_{next(counter)}"

    def cleanup_temp(self, keep: Optional[List[str]] = None) -> int:
        """Drop every ``jb_tmp_`` table not named in ``keep``; return the
        count dropped (the paper's leave-no-trace safety contract)."""
        keep_keys = {k.lower() for k in (keep or [])}
        doomed = [
            n for n in self.table_names()
            if n.startswith(TEMP_PREFIX) and n.lower() not in keep_keys
        ]
        for table_name in doomed:
            self.drop_table(table_name, if_exists=True)
        return len(doomed)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_BACKENDS: Dict[str, Callable[..., Connector]] = {}


def register_backend(*names: str):
    """Class decorator: register a connector factory under ``names``."""

    def _wrap(factory):
        for name in names:
            _BACKENDS[name.lower()] = factory
        return factory

    return _wrap


def backend_names() -> List[str]:
    """All registered backend names (sorted, for error messages)."""
    return sorted(_BACKENDS)


def get_backend(backend: str, **kwargs) -> Connector:
    """Instantiate the connector registered under ``backend``."""
    try:
        factory = _BACKENDS[backend.lower()]
    except KeyError:
        raise BackendError(
            f"unknown backend {backend!r}; "
            f"available: {', '.join(backend_names())}"
        ) from None
    return factory(**kwargs)
