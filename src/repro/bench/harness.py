"""Figure runners: each function regenerates one paper figure's series.

Scales are laptop-sized (the substitution table in DESIGN.md); the claims
being reproduced are *shapes* — who wins, by roughly what factor, where
the crossovers and out-of-memory walls fall — not absolute seconds.
"""

from __future__ import annotations

import importlib.util
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro
from repro.baselines.exactgbm import ExactGradientBoosting
from repro.baselines.export import (
    estimate_join_bytes,
    load_feature_matrix,
    materialize_and_export,
)
from repro.baselines.histgbm import HistGradientBoosting, HistRandomForest
from repro.baselines.lmfao import train_tree_variant
from repro.baselines.madlib import train_madlib_tree
from repro.core.histogram import train_boosting_on_cuboid
from repro.core.predict import rmse_on_join
from repro.datasets import favorita, imdb, tpcds, tpch
from repro.datasets.synthetic import ResidualWorkload, residual_update_microbenchmark
from repro.backends import SQLiteConnector
from repro.distributed import ClusterConfig, SimulatedCluster
from repro.engine.database import Database
from repro.engine.update import apply_column_update
from repro.exceptions import MemoryBudgetExceeded, StorageError
from repro.storage.table import StorageConfig


def duckdb_available() -> bool:
    """Is the optional ``duckdb`` package importable on this host?

    The duckdb bench legs record unavailability instead of crashing, so
    BENCH snapshots stay comparable across hosts with and without the
    optional dependency.
    """
    return importlib.util.find_spec("duckdb") is not None


def _backend_db(backend: str):
    """Connector instance for a census backend name (None = embedded)."""
    if backend == "embedded":
        return None
    if backend == "sqlite":
        return SQLiteConnector()
    if backend == "duckdb":
        from repro.backends import DuckDBConnector

        return DuckDBConnector()
    raise ValueError(f"unknown census backend {backend!r}")


# ---------------------------------------------------------------------------
# Figure 5 — residual update time per method per backend
# ---------------------------------------------------------------------------
FIG5_BACKENDS = ("x-col", "x-row", "d-disk", "d-mem", "dp", "d-swap")
FIG5_METHODS = ("naive", "update", "create-0", "create-5", "create-10", "swap")


def _leaf_case_sql(workload: ResidualWorkload, base: str) -> str:
    whens = " ".join(
        f"WHEN d > {lo} AND d <= {hi} THEN {base} + {delta!r}"
        for (lo, hi), delta in zip(workload.leaf_ranges, workload.leaf_predictions)
    )
    return f"CASE {whens} ELSE {base} END"


def _run_one_update(workload: ResidualWorkload, method: str) -> float:
    db = workload.db
    start = time.perf_counter()
    if method == "update":
        for (lo, hi), delta in zip(workload.leaf_ranges, workload.leaf_predictions):
            db.execute(
                f"UPDATE f SET s = s + {delta!r} WHERE d > {lo} AND d <= {hi}"
            )
    elif method.startswith("create"):
        case = _leaf_case_sql(workload, "s")
        other = ", ".join(
            c for c in db.table("f").column_names() if c != "s"
        )
        db.execute(
            f"CREATE TABLE f_updated AS SELECT {case} AS s, {other} FROM f"
        )
        db.drop_table("f")
        db.rename_table("f_updated", "f")
    elif method == "naive":
        # Materialize the update relation U(d, delta), then F' = F ⋈ U.
        deltas = np.zeros(workload.key_domain + 1)
        for (lo, hi), delta in zip(workload.leaf_ranges, workload.leaf_predictions):
            deltas[lo + 1 : hi + 1] = delta
        db.create_table(
            "u", {"d": np.arange(workload.key_domain + 1), "delta": deltas}
        )
        other = ", ".join(
            f"f.{c}" for c in db.table("f").column_names() if c != "s"
        )
        db.execute(
            "CREATE TABLE f_updated AS "
            f"SELECT f.s + u.delta AS s, {other} FROM f JOIN u ON f.d = u.d"
        )
        db.drop_table("u")
        db.drop_table("f")
        db.rename_table("f_updated", "f")
    elif method == "swap":
        case = _leaf_case_sql(workload, "s")
        result = db.execute(f"SELECT {case} AS s FROM f")
        apply_column_update(db, "f", "s", result.column("s").values, "swap")
    else:
        raise ValueError(method)
    return time.perf_counter() - start


def fig05_residual_updates(
    num_rows: int = 300_000,
    backends: Tuple[str, ...] = FIG5_BACKENDS,
    methods: Tuple[str, ...] = FIG5_METHODS,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Returns backend -> method -> seconds (None = unsupported)."""
    results: Dict[str, Dict[str, Optional[float]]] = {}
    for backend in backends:
        per_method: Dict[str, Optional[float]] = {}
        for method in methods:
            extra = int(method.split("-")[1]) if method.startswith("create") else 0
            workload = residual_update_microbenchmark(
                num_rows=num_rows,
                num_extra_columns=extra,
                config=StorageConfig.preset(backend),
            )
            try:
                per_method[method] = _run_one_update(
                    workload, method.split("-")[0] if method.startswith("create")
                    else method
                )
            except StorageError:
                per_method[method] = None  # e.g. swap on stock backends
        results[backend] = per_method

    # The LightGBM reference: a parallel write to a raw in-memory array.
    rng = np.random.default_rng(0)
    s = rng.normal(size=num_rows)
    d = rng.integers(1, 10_001, num_rows)
    start = time.perf_counter()
    workload = residual_update_microbenchmark(num_rows=8)  # ranges only
    for (lo, hi), delta in zip(workload.leaf_ranges, workload.leaf_predictions):
        s[(d > lo) & (d <= hi)] += delta
    results["lightgbm-ref"] = {"array-write": time.perf_counter() - start}
    return results


# ---------------------------------------------------------------------------
# Figure 8 — Favorita training time + rmse vs iterations
# ---------------------------------------------------------------------------
def fig08_favorita(
    num_fact_rows: int = 40_000,
    iterations: int = 20,
    num_leaves: int = 8,
) -> Dict[str, object]:
    db, graph = favorita(num_fact_rows=num_fact_rows, num_extra_features=8)

    # JoinBoost: gradient boosting + random forest (no export needed).
    gbm = repro.train_gradient_boosting(
        db, graph,
        {"num_iterations": iterations, "num_leaves": num_leaves,
         "learning_rate": 0.1, "min_data_in_leaf": 3},
        evaluate_every=max(1, iterations // 10),
    )
    jb_gbm_cumulative = np.cumsum(
        [r.train_seconds + r.update_seconds for r in gbm.history]
    )
    jb_rmse = [(r.iteration + 1, r.rmse) for r in gbm.history if r.rmse is not None]

    forest = repro.train_random_forest(
        db, graph,
        {"num_iterations": iterations, "num_leaves": num_leaves,
         "subsample": 0.1, "feature_fraction": 0.8, "min_data_in_leaf": 3},
    )
    jb_rf_cumulative = np.cumsum(forest.history)

    # Single-table libraries pay materialize + export + load first.
    exported = materialize_and_export(db, graph)
    lgbm = HistGradientBoosting(
        num_iterations=iterations, num_leaves=num_leaves, learning_rate=0.1,
        max_bin=1000, min_child_samples=3,
    ).fit(exported.features, exported.y, eval_rmse=True)
    lgbm_cumulative = exported.total_seconds + np.cumsum(
        [h[0] + h[1] for h in lgbm.history]
    )
    xgb = HistGradientBoosting(
        num_iterations=iterations, num_leaves=num_leaves, learning_rate=0.1,
        max_bin=1000, min_child_samples=3, reg_lambda=1.0,
    ).fit(exported.features, exported.y, eval_rmse=True)
    xgb_cumulative = exported.total_seconds + np.cumsum(
        [h[0] + h[1] for h in xgb.history]
    )
    sk_iterations = max(2, iterations // 4)  # Sklearn is terminated early (§6.1)
    sklearn = ExactGradientBoosting(
        num_iterations=sk_iterations, num_leaves=num_leaves, learning_rate=0.1,
    ).fit(exported.features, exported.y)
    sklearn_cumulative = exported.total_seconds + np.cumsum(sklearn.history)

    rf_baseline = HistRandomForest(
        num_iterations=iterations, num_leaves=num_leaves, subsample=0.1,
        colsample=0.8,
    ).fit(exported.features, exported.y)
    rf_baseline_cumulative = exported.total_seconds + np.cumsum(rf_baseline.history)

    final_rmse = {
        "joinboost": rmse_on_join(db, graph, gbm),
        "lightgbm": float(np.sqrt(np.mean((lgbm.predict(exported.features)
                                           - exported.y) ** 2))),
        "xgboost": float(np.sqrt(np.mean((xgb.predict(exported.features)
                                          - exported.y) ** 2))),
    }
    return {
        "iterations": list(range(1, iterations + 1)),
        "gbm": {
            "joinboost": jb_gbm_cumulative.tolist(),
            "lightgbm": lgbm_cumulative.tolist(),
            "xgboost": xgb_cumulative.tolist(),
            "sklearn(partial)": sklearn_cumulative.tolist(),
        },
        "rf": {
            "joinboost": jb_rf_cumulative.tolist(),
            "lightgbm": rf_baseline_cumulative.tolist(),
        },
        "join_export_seconds": exported.total_seconds,
        "rmse_curve": {
            "joinboost": jb_rmse,
            "lightgbm": [(i + 1, h[2]) for i, h in enumerate(lgbm.history)],
        },
        "final_rmse": final_rmse,
    }


# ---------------------------------------------------------------------------
# Figure 9 — query census of the first iteration
# ---------------------------------------------------------------------------
def query_census(db) -> Dict[str, object]:
    """Count executed statements per profile tag (the census primitive).

    Besides per-tag counts/latencies, the census splits query time into
    key-encode work vs everything else (``encode_seconds`` vs
    ``aggregate_seconds``) and totals the encode passes — the numbers the
    encoded-key cache exists to shrink.
    """
    by_tag: Dict[str, List[float]] = {}
    encode_passes = 0
    encode_seconds = 0.0
    total_seconds = 0.0
    for profile in db.profiles:
        by_tag.setdefault(profile.tag or "untagged", []).append(profile.seconds)
        encode_passes += getattr(profile, "encode_passes", 0)
        encode_seconds += getattr(profile, "encode_seconds", 0.0)
        total_seconds += profile.seconds
    out: Dict[str, object] = {
        "counts": {tag: len(times) for tag, times in by_tag.items()},
        "seconds": {tag: float(sum(times)) for tag, times in by_tag.items()},
        "times": by_tag,
        "encode_passes": encode_passes,
        "encode_seconds": encode_seconds,
        "aggregate_seconds": total_seconds - encode_seconds,
    }
    encodings = getattr(db, "encodings", None)
    if encodings is not None:
        out["encoding_cache"] = encodings.stats()
    return out


def fig09_query_census(
    num_fact_rows: int = 30_000,
    num_features: int = 18,
    num_leaves: int = 8,
    split_batching: str = "off",
    frontier_state: str = "incremental",
    encoding_cache: str = "auto",
    key_dtype: str = "int",
    num_workers: object = 1,
    backend: str = "embedded",
) -> Dict[str, object]:
    """One gradient-boosting iteration's query census.

    ``split_batching="off"`` reproduces the paper's Figure 9 shape — one
    best-split query per (node, feature), 270 = 15 x 18 by default.
    ``"on"`` runs the batched frontier evaluator: one fused split query
    per feature-bearing relation per evaluation round, so the count drops
    from O(leaves x features) to O(relations).  ``frontier_state``
    selects the label strategy for batched rounds: ``"rebuild"`` copies
    the full fact with a CASE per round; ``"incremental"`` maintains a
    persistent ``jb_leaf`` column with narrow delta UPDATEs (label bytes
    proportional to the rows that move).  ``encoding_cache="off"``
    disables the version-stamped encoded-key cache (every query
    re-encodes its keys, the pre-PR4 behavior); ``key_dtype="str"`` uses
    natural string join keys, the workload where re-encoding hurts most.
    ``num_workers`` sizes the inter-query scheduler's pool (1 = serial,
    the historical behavior); ``backend`` selects the connector —
    ``"sqlite"`` (stdlib sqlite3 with its per-thread reader pool) or
    ``"duckdb"`` (native cursor-per-thread reads) run the census on a
    real second DBMS where worker threads overlap for real.
    """
    db, graph = favorita(
        db=_backend_db(backend),
        num_fact_rows=num_fact_rows, num_extra_features=num_features - 5,
        key_dtype=key_dtype,
    )
    db.reset_profiles()
    from repro.engine import operators as ops

    ops.reset_encode_census()
    start = time.perf_counter()
    model = repro.train_gradient_boosting(
        db, graph, {"num_iterations": 1, "num_leaves": num_leaves,
                    "min_data_in_leaf": 3, "split_batching": split_batching,
                    "frontier_state": frontier_state,
                    "encoding_cache": encoding_cache,
                    "num_workers": num_workers},
    )
    wall_seconds = time.perf_counter() - start
    # Encode accounting from the process-wide census, not the per-profile
    # sums: setup work (warm_encodings) runs outside profiled statements
    # and must count against the cached leg too.
    encode_totals = ops.encode_census()
    census = query_census(db)
    by_tag = census["times"]
    feature_times = by_tag.get("feature", [])
    message_times = by_tag.get("message", [])
    frontier_times = by_tag.get("frontier", [])
    delta_times = by_tag.get("frontier_delta", [])
    root_times = by_tag.get("frontier_root", [])
    histogram = np.histogram(
        np.array(feature_times + message_times) * 1000.0,
        bins=[0, 1, 2, 5, 10, 20, 50, 100, 1e9],
    )
    feature_relations = {rel for rel, _ in graph.all_features()}
    frontier_census = dict(getattr(model, "frontier_census", {}) or {})
    return {
        "split_batching": split_batching,
        "frontier_state": frontier_state,
        "encoding_cache": encoding_cache,
        "key_dtype": key_dtype,
        "encode_passes": int(encode_totals["passes"]),
        "encode_seconds": float(encode_totals["seconds"]),
        "aggregate_seconds": census["aggregate_seconds"],
        "encoding_cache_stats": census.get("encoding_cache", {}),
        "num_feature_queries": len(feature_times),
        "num_message_queries": len(message_times),
        "num_frontier_queries": len(frontier_times),
        "num_delta_update_queries": len(delta_times),
        "num_root_label_queries": len(root_times),
        "num_feature_relations": len(feature_relations),
        "expected_feature_queries": (2 * num_leaves - 1) * num_features,
        "feature_ms": sorted(t * 1000 for t in feature_times),
        "message_ms": sorted(t * 1000 for t in message_times),
        "latency_histogram_ms": (histogram[0].tolist(),
                                 [float(b) for b in histogram[1][:-1]]),
        "wall_seconds": wall_seconds,
        "rmse": rmse_on_join(db, graph, model),
        "frontier_census": frontier_census,
        "label_bytes_written": frontier_census.get("label_bytes_written", 0),
        "carry_cache_hits": frontier_census.get("carry_cache_hits", 0),
    }


def fig09_batching_comparison(
    num_fact_rows: int = 30_000,
    num_features: int = 18,
    num_leaves: int = 8,
    frontier_state: str = "incremental",
) -> Dict[str, object]:
    """Per-leaf vs batched census on the same workload (the paper's
    queries-per-iteration drop, plus a tree-parity check via rmse)."""
    per_leaf = fig09_query_census(
        num_fact_rows, num_features, num_leaves, split_batching="off"
    )
    batched = fig09_query_census(
        num_fact_rows, num_features, num_leaves, split_batching="on",
        frontier_state=frontier_state,
    )
    drop = per_leaf["num_feature_queries"] / max(
        batched["num_feature_queries"], 1
    )
    return {
        "per_leaf": per_leaf,
        "batched": batched,
        "query_drop_factor": drop,
        "rmse_delta": abs(per_leaf["rmse"] - batched["rmse"]),
    }


def fig09_frontier_state_comparison(
    num_fact_rows: int = 30_000,
    num_features: int = 18,
    num_leaves: int = 8,
) -> Dict[str, object]:
    """Incremental vs rebuild label maintenance on the batched evaluator:
    label passes, label bytes written and the carry-cache hit rate, with
    tree parity asserted via rmse."""
    rebuild = fig09_query_census(
        num_fact_rows, num_features, num_leaves,
        split_batching="on", frontier_state="rebuild",
    )
    incremental = fig09_query_census(
        num_fact_rows, num_features, num_leaves,
        split_batching="on", frontier_state="incremental",
    )
    bytes_drop = rebuild["label_bytes_written"] / max(
        incremental["label_bytes_written"], 1
    )
    return {
        "rebuild": rebuild,
        "incremental": incremental,
        "label_bytes_drop_factor": bytes_drop,
        "rmse_delta": abs(rebuild["rmse"] - incremental["rmse"]),
    }


def fig09_parallel_comparison(
    num_fact_rows: int = 30_000,
    num_features: int = 18,
    num_leaves: int = 8,
    workers: int = 4,
    backend: str = "sqlite",
) -> Dict[str, object]:
    """Serial vs worker-pool training on the same workload.

    Reports the measured end-to-end wall speedup, the scheduler's
    measured per-round overlap (busy seconds minus wall seconds — the
    query time that ran concurrently with another query), and the
    tree-parity check via rmse.  The sqlite backend is the default: its
    per-thread reader pool releases the GIL inside SQLite's C core, so
    multi-core hosts see real overlap.
    """
    serial = fig09_query_census(
        num_fact_rows, num_features, num_leaves,
        split_batching="auto", num_workers=1, backend=backend,
    )
    parallel = fig09_query_census(
        num_fact_rows, num_features, num_leaves,
        split_batching="auto", num_workers=workers, backend=backend,
    )
    census = parallel["frontier_census"]
    return {
        "backend": backend,
        "workers": workers,
        "serial": serial,
        "parallel": parallel,
        "wall_speedup_factor": serial["wall_seconds"]
        / max(parallel["wall_seconds"], 1e-12),
        "parallel_rounds": census.get("parallel_rounds", 0),
        "parallel_overlap_seconds": census.get("parallel_overlap_seconds", 0.0),
        "rmse_delta": abs(serial["rmse"] - parallel["rmse"]),
    }


def fault_tolerance_comparison(
    num_fact_rows: int = 8_000,
    num_features: int = 13,
    num_leaves: int = 8,
    iterations: int = 3,
    backend: str = "sqlite",
    workers: int = 4,
    chaos_spec: str = (
        "tag=message:nth=2:times=2:kind=transient;"
        "tag=:nth=25:times=1:kind=transient"
    ),
) -> Dict[str, object]:
    """Fault-tolerance overhead and parity on one workload (ISSUE 8).

    Four legs, all on the same Favorita config and worker count:

    * **baseline** — fault-free, no checkpointing: the reference wall
      time and ``model_digest``;
    * **checkpointed** — per-round checkpoints into a memory sink: the
      wall overhead of serializing every committed round (the CI gate
      holds it under 5%), digest unchanged;
    * **chaos** — the ``chaos_spec`` transient faults injected under the
      default retry policy: training must complete with retries > 0 and
      the baseline digest, bit for bit;
    * **resumed** — a run killed right after round ``iterations - 1``'s
      checkpoint, then continued with ``resume_training``: the resumed
      digest must equal the uninterrupted baseline's.
    """
    from repro.backends.chaos import RetryConnector, wrap_with_chaos
    from repro.core.checkpoint import MemoryCheckpointSink, resume_training
    from repro.core.serialize import model_digest
    from repro.exceptions import TrainingError

    params = {
        "num_iterations": iterations, "num_leaves": num_leaves,
        "min_data_in_leaf": 3, "num_workers": workers,
    }

    def _connect(chaos=None, retry=False):
        inner = _backend_db(backend) or Database()
        conn = wrap_with_chaos(inner, chaos)
        if retry:
            conn = RetryConnector(conn)
        db, graph = favorita(
            db=conn, num_fact_rows=num_fact_rows,
            num_extra_features=num_features - 5,
        )
        return db, graph

    def _timed_train(db, graph, checkpoint=None):
        start = time.perf_counter()
        model = repro.train_gradient_boosting(
            db, graph, dict(params), checkpoint=checkpoint
        )
        return model, time.perf_counter() - start

    # baseline and checkpointed legs (fault-free)
    db, graph = _connect()
    baseline_model, baseline_wall = _timed_train(db, graph)
    baseline_digest = model_digest(baseline_model)

    db, graph = _connect()
    sink = MemoryCheckpointSink()
    ckpt_model, ckpt_wall = _timed_train(db, graph, checkpoint=sink)

    # chaos leg: injected transient faults absorbed by the retry layer
    db, graph = _connect(chaos=chaos_spec, retry=True)
    chaos_model, chaos_wall = _timed_train(db, graph)
    retry_census = db.retry_census.snapshot()
    chaos_census = db.chaos_census.snapshot()

    # interrupted-then-resumed leg: a sink that kills the process right
    # after the second-to-last round's checkpoint commits
    class _KillSwitchSink(MemoryCheckpointSink):
        """Simulates a crash landing just after a checkpoint write."""

        def save(self, payload: str) -> None:
            super().save(payload)
            if self.saves == max(iterations - 1, 1):
                raise TrainingError("simulated crash after checkpoint")

    db, graph = _connect()
    kill_sink = _KillSwitchSink()
    interrupted_wall = None
    start = time.perf_counter()
    try:
        repro.train_gradient_boosting(
            db, graph, dict(params), checkpoint=kill_sink
        )
    except TrainingError:
        interrupted_wall = time.perf_counter() - start
    resume_start = time.perf_counter()
    resumed_model = resume_training(db, graph, kill_sink)
    resume_wall = time.perf_counter() - resume_start

    return {
        "backend": backend,
        "workers": workers,
        "iterations": iterations,
        "baseline_wall_seconds": baseline_wall,
        "checkpoint_wall_seconds": ckpt_wall,
        "checkpoint_overhead_factor": ckpt_wall / max(baseline_wall, 1e-12),
        "checkpoint_saves": sink.saves,
        "checkpoint_digest_match": model_digest(ckpt_model)
        == baseline_digest,
        "chaos_wall_seconds": chaos_wall,
        "chaos_digest_match": model_digest(chaos_model) == baseline_digest,
        "chaos_injected": chaos_census["total"],
        "retries": retry_census["retries"],
        "retry_exhausted": retry_census["exhausted"],
        "recovered_after_retry": retry_census["succeeded_after_retry"],
        "interrupted_wall_seconds": interrupted_wall,
        "resume_wall_seconds": resume_wall,
        "resumed_digest_match": model_digest(resumed_model)
        == baseline_digest,
        "resumed_from_round": max(iterations - 1, 1),
    }


def fig09_duckdb_comparison(
    num_fact_rows: int = 20_000,
    num_features: int = 13,
    num_leaves: int = 8,
    workers: int = 4,
) -> Dict[str, object]:
    """DuckDB as a tier-1 training backend, measured on the Figure 9 CI
    configuration.

    Three claims, one record: (1) duckdb trains the same model as the
    embedded engine (rmse delta), (2) worker fan-out on duckdb is
    bit-identical to serial (``model_digest`` equality across
    ``num_workers`` in {1, workers}) *and* actually engaged
    (``parallel_rounds`` > 0, no fallback reason), and (3) duckdb's
    native fused queries are at least competitive with the sqlite
    dialect-translation path on the same workload (wall factor).  When
    the optional package is absent the record says so instead of
    crashing — BENCH snapshots stay comparable across hosts.
    """
    if not duckdb_available():
        return {
            "available": False,
            "reason": "optional 'duckdb' package not installed",
        }
    from repro.core.serialize import model_digest

    params = {"num_iterations": 1, "num_leaves": num_leaves,
              "min_data_in_leaf": 3}

    def _train(backend: str, num_workers: int) -> Dict[str, object]:
        db, graph = favorita(
            db=_backend_db(backend), num_fact_rows=num_fact_rows,
            num_extra_features=num_features - 5,
        )
        start = time.perf_counter()
        model = repro.train_gradient_boosting(
            db, graph, dict(params, num_workers=num_workers)
        )
        wall = time.perf_counter() - start
        census = dict(getattr(model, "frontier_census", {}) or {})
        record = {
            "backend": backend,
            "num_workers": num_workers,
            "wall_seconds": wall,
            "rmse": rmse_on_join(db, graph, model),
            "digest": model_digest(model),
            "parallel_rounds": census.get("parallel_rounds", 0),
            "parallel_fallback_reason": census.get("parallel_fallback_reason"),
        }
        close = getattr(db, "close", None)
        if close is not None:
            close()
        return record

    embedded = _train("embedded", 1)
    duck_serial = _train("duckdb", 1)
    duck_parallel = _train("duckdb", workers)
    sqlite_parallel = _train("sqlite", workers)
    return {
        "available": True,
        "workers": workers,
        "embedded": embedded,
        "duckdb_serial": duck_serial,
        "duckdb_parallel": duck_parallel,
        "sqlite_parallel": sqlite_parallel,
        "rmse_delta_vs_embedded": abs(duck_serial["rmse"] - embedded["rmse"]),
        "digest_match_across_workers": duck_serial["digest"]
        == duck_parallel["digest"],
        "parallel_rounds": duck_parallel["parallel_rounds"],
        "parallel_fallback_reason": duck_parallel["parallel_fallback_reason"],
        "duckdb_vs_sqlite_wall_factor": sqlite_parallel["wall_seconds"]
        / max(duck_parallel["wall_seconds"], 1e-12),
    }


def fig09_encoding_cache_comparison(
    num_fact_rows: int = 30_000,
    num_features: int = 18,
    num_leaves: int = 8,
    key_dtype: str = "str",
) -> Dict[str, object]:
    """Encoded-key cache on vs off on the batched/incremental config.

    Reports the encode-pass drop (how many fewer full key-encode passes
    over base relations the cache leaves), the end-to-end wall speedup,
    and the tree-parity check via rmse.  String keys are the default
    workload: the raw Favorita dump joins on string-typed natural keys,
    where per-query ``np.unique`` re-encoding dominates.
    """
    off = fig09_query_census(
        num_fact_rows, num_features, num_leaves,
        split_batching="auto", frontier_state="incremental",
        encoding_cache="off", key_dtype=key_dtype,
    )
    on = fig09_query_census(
        num_fact_rows, num_features, num_leaves,
        split_batching="auto", frontier_state="incremental",
        encoding_cache="auto", key_dtype=key_dtype,
    )
    return {
        "off": off,
        "on": on,
        "encode_pass_drop_factor": off["encode_passes"]
        / max(on["encode_passes"], 1),
        "wall_speedup_factor": off["wall_seconds"] / max(on["wall_seconds"], 1e-12),
        "encode_seconds_off": off["encode_seconds"],
        "encode_seconds_on": on["encode_seconds"],
        "rmse_delta": abs(off["rmse"] - on["rmse"]),
    }


# ---------------------------------------------------------------------------
# Figure 10 / 11 — scaling features and database size (with OOM walls)
# ---------------------------------------------------------------------------
def _gbm_time(db, graph, iterations: int, num_leaves: int = 8) -> float:
    model = repro.train_gradient_boosting(
        db, graph, {"num_iterations": iterations, "num_leaves": num_leaves,
                    "min_data_in_leaf": 3},
    )
    return float(sum(r.train_seconds + r.update_seconds for r in model.history))


def _baseline_time(db, graph, iterations: int, budget: int,
                   num_leaves: int = 8) -> Optional[float]:
    try:
        exported = materialize_and_export(db, graph, memory_budget=budget)
    except MemoryBudgetExceeded:
        return None  # the paper's OOM
    model = HistGradientBoosting(
        num_iterations=iterations, num_leaves=num_leaves, max_bin=255,
        min_child_samples=3,
    ).fit(exported.features, exported.y)
    return exported.total_seconds + float(
        sum(h[0] + h[1] for h in model.history)
    )


def fig10_feature_scaling(
    feature_counts: Tuple[int, ...] = (5, 25, 50),
    num_fact_rows: int = 25_000,
    iterations: int = 10,
    baseline_budget: int = 8 * 1024 * 1024,
) -> Dict[str, object]:
    rows = []
    for count in feature_counts:
        db, graph = favorita(
            num_fact_rows=num_fact_rows, num_extra_features=count - 5
        )
        jb = _gbm_time(db, graph, iterations)
        baseline = _baseline_time(db, graph, iterations, baseline_budget)
        rows.append((count, jb, baseline))
    return {"rows": rows, "budget_bytes": baseline_budget}


def fig11_tpcds_scaling(
    scale_factors: Tuple[float, ...] = (10, 15, 20, 25),
    rows_per_sf: int = 2_500,
    iterations: int = 10,
    baseline_budget: int = 5 * 1024 * 1024,
) -> Dict[str, object]:
    rows = []
    for sf in scale_factors:
        db, graph = tpcds(sf=sf, rows_per_sf=rows_per_sf, num_features=18)
        jb = _gbm_time(db, graph, iterations)
        baseline = _baseline_time(db, graph, iterations, baseline_budget)
        rows.append((sf, jb, baseline))
    return {"rows": rows, "budget_bytes": baseline_budget}


# ---------------------------------------------------------------------------
# Figure 12 / 13 — multi-node scaling (simulated network)
# ---------------------------------------------------------------------------
def _simulate_dask_baseline(
    db, graph, iterations: int, machines: int, per_machine_budget: int
) -> Optional[float]:
    """Dask-LightGBM model: data replicated, per-machine hist training on
    the full join plus a per-iteration histogram allreduce."""
    if estimate_join_bytes(db, graph) > per_machine_budget:
        return None  # OOM even distributed: data is replicated (§6.2)
    exported = materialize_and_export(db, graph)
    model = HistGradientBoosting(
        num_iterations=iterations, num_leaves=8, min_child_samples=3
    ).fit(exported.features, exported.y)
    compute = float(sum(h[0] + h[1] for h in model.history)) / machines
    hist_bytes = 255 * len(graph.all_features()) * 16 * iterations
    allreduce = machines * hist_bytes / 1e9 + iterations * 5e-4 * machines
    return exported.total_seconds + compute + allreduce


def fig12_multinode(
    scale_factors: Tuple[float, ...] = (30, 35, 40),
    machines_sweep: Tuple[int, ...] = (1, 2, 3, 4),
    rows_per_sf: int = 1_200,
    iterations: int = 10,
    per_machine_budget: int = 4_700_000,
    executor: str = "serial",
) -> Dict[str, object]:
    """Figure 12 series: simulated seconds (the paper's network model)
    plus the *measured* wall of actually executing every shard step on
    this host — the sharded path really runs; only the network is
    modelled."""
    by_sf = []
    measured_by_sf = {}
    for sf in scale_factors:
        db, graph = tpcds(sf=sf, rows_per_sf=rows_per_sf, num_features=12)
        cluster = SimulatedCluster(
            db, graph, "date_sk", ClusterConfig(num_machines=4),
            executor=executor,
        )
        _, jb_seconds = cluster.train_gradient_boosting(
            {"num_iterations": iterations, "num_leaves": 8,
             "min_data_in_leaf": 3}
        )
        baseline = _simulate_dask_baseline(
            db, graph, iterations, 4, per_machine_budget
        )
        by_sf.append((sf, jb_seconds, baseline))
        measured_by_sf[sf] = cluster.measured_wall_seconds

    sf_fixed = scale_factors[-1]
    by_machines = []
    measured_by_machines = {}
    for machines in machines_sweep:
        db, graph = tpcds(sf=sf_fixed, rows_per_sf=rows_per_sf, num_features=12)
        cluster = SimulatedCluster(
            db, graph, "date_sk", ClusterConfig(num_machines=machines),
            executor=executor,
        )
        _, jb_seconds = cluster.train_gradient_boosting(
            {"num_iterations": iterations, "num_leaves": 8,
             "min_data_in_leaf": 3}
        )
        baseline = _simulate_dask_baseline(
            db, graph, iterations, machines, per_machine_budget
        )
        by_machines.append((machines, jb_seconds, baseline))
        measured_by_machines[machines] = cluster.measured_wall_seconds
    return {
        "by_sf": by_sf,
        "by_machines": by_machines,
        "sf_fixed": sf_fixed,
        "executor": executor,
        "measured_by_sf": measured_by_sf,
        "measured_by_machines": measured_by_machines,
    }


def _int_y_star_db(rows: int = 4_096, seed: int = 11):
    """Star schema with an integer-valued float target: per-shard partial
    sums are exact in float64, so merged aggregates — and the model — are
    bit-identical for any shard count, which is what lets the sharded
    comparison gate on digest equality across shards {1, 4}."""
    from repro.joingraph.graph import JoinGraph

    rng = np.random.default_rng(seed)
    db = Database(name="inty")
    db.create_table("fact", {
        "k0": rng.integers(0, 40, size=rows),
        "k1": rng.integers(0, 30, size=rows),
        "y": rng.integers(-8, 9, size=rows).astype(np.float64),
    })
    db.create_table("dim0", {
        "k0": np.arange(40),
        "f0": rng.normal(size=40),
        "f1": rng.integers(0, 5, size=40).astype(np.float64),
    })
    db.create_table("dim1", {
        "k1": np.arange(30),
        "f2": rng.normal(size=30),
        "f3": rng.integers(0, 7, size=30).astype(np.float64),
    })
    graph = JoinGraph(db)
    graph.add_relation("fact", features=[], y="y", is_fact=True)
    graph.add_relation("dim0", features=["f0", "f1"])
    graph.add_relation("dim1", features=["f2", "f3"])
    graph.add_edge("fact", "dim0", ["k0"], ["k0"])
    graph.add_edge("fact", "dim1", ["k1"], ["k1"])
    return db, graph


def fig12_sharded_comparison(
    rows: int = 4_096,
    task_deadline: float = 5.0,
) -> Dict[str, object]:
    """Sharded-training parity and recovery, measured on real executors.

    Runs the same integer-target workload as one shard (the reference),
    four serial shards, four process shards, and four process shards
    under ``worker_crash`` and ``stall`` task faults.  Every leg must
    produce the reference ``model_digest`` bit for bit, the chaos legs
    must show redispatches with nothing exhausted, and every leg reports
    its *measured* wall (real execution, not the network model)."""
    from repro.core.serialize import model_digest

    params = {"num_iterations": 1, "num_leaves": 8, "min_data_in_leaf": 2}
    specs = [
        ("one_shard_serial", 1, "serial", None),
        ("sharded_serial", 4, "serial", None),
        ("sharded_process", 4, "process", None),
        ("sharded_process_crash", 4, "process",
         "tag=feature:nth=3:times=1:kind=worker_crash"),
        ("sharded_process_stall", 4, "process",
         "tag=totals:nth=2:times=1:kind=stall"),
    ]
    legs = []
    for name, shards, executor, chaos in specs:
        db, graph = _int_y_star_db(rows=rows)
        cluster = SimulatedCluster(
            db, graph, "k0", ClusterConfig(num_machines=shards),
            executor=executor, chaos=chaos, task_deadline=task_deadline,
        )
        model, simulated = cluster.train_gradient_boosting(params)
        census = cluster.census()
        legs.append({
            "name": name,
            "shards": shards,
            "executor": census["executor"],
            "executor_fallback_reason": census["executor_fallback_reason"],
            "chaos": chaos,
            "digest": model_digest(model),
            "simulated_seconds": simulated,
            "measured_wall_seconds": census["measured_wall_seconds"],
            "worker_crashes": census["worker_crashes"],
            "deadline_timeouts": census["deadline_timeouts"],
            "tasks_redispatched": census["tasks_redispatched"],
            "respawns": census["respawns"],
            "retry_exhausted": census["retry_exhausted"],
            "chaos_injected": census["chaos_injected"],
        })
    reference = legs[0]["digest"]
    chaos_legs = [leg for leg in legs if leg["chaos"] is not None]
    return {
        "rows": rows,
        "legs": legs,
        "digest_parity": all(leg["digest"] == reference for leg in legs),
        "chaos_tasks_redispatched": sum(
            leg["tasks_redispatched"] for leg in chaos_legs
        ),
        "retry_exhausted": sum(leg["retry_exhausted"] for leg in legs),
    }


def fig13_warehouse(
    machines_sweep: Tuple[int, ...] = (1, 2, 4, 6),
    rows: int = 150_000,
    max_depth: int = 3,
    bandwidth: float = 2e8,
) -> Dict[str, object]:
    results = []
    for machines in machines_sweep:
        db, graph = tpcds(sf=rows / 20_000, rows_per_sf=20_000, num_features=12)
        cluster = SimulatedCluster(
            db, graph, "date_sk",
            ClusterConfig(num_machines=machines,
                          bandwidth_bytes_per_s=bandwidth,
                          latency_s=2e-3),
        )
        _, seconds = cluster.train_decision_tree(
            {"num_leaves": 2**max_depth, "max_depth": max_depth,
             "min_data_in_leaf": 3}
        )
        results.append((machines, seconds, cluster.shuffle_bytes))
    return {"rows": results}


# ---------------------------------------------------------------------------
# Figure 14 — galaxy-schema boosting on IMDB via CPT
# ---------------------------------------------------------------------------
def fig14_imdb_galaxy(
    rows_per_fact: int = 20_000, iterations: int = 10
) -> Dict[str, object]:
    db, graph = imdb(rows_per_fact=rows_per_fact)
    model = repro.train_gradient_boosting(
        db, graph, {"num_iterations": iterations, "num_leaves": 8,
                    "learning_rate": 0.1, "min_data_in_leaf": 3},
    )
    per_iteration = [
        r.train_seconds + r.update_seconds for r in model.history
    ]
    # The join is prohibitive to materialize: report the blow-up factor.
    counts = {
        name: db.table(name).num_rows() for name in graph.relations
    }
    join_rows_estimate = _galaxy_join_estimate(db, graph)
    return {
        "cumulative": np.cumsum(per_iteration).tolist(),
        "per_iteration": per_iteration,
        "base_rows": counts,
        "estimated_join_rows": join_rows_estimate,
    }


def _galaxy_join_estimate(db, graph) -> float:
    """Expected |R⋈| under the generators' uniform key distributions."""
    movies = db.table("movie").num_rows()
    persons = db.table("person").num_rows()
    per_movie = {
        "cast_info": db.table("cast_info").num_rows() / movies,
        "movie_comp": db.table("movie_comp").num_rows() / movies,
        "movie_info": db.table("movie_info").num_rows() / movies,
        "movie_key": db.table("movie_key").num_rows() / movies,
    }
    pi_per_person = db.table("person_info").num_rows() / persons
    per_movie_product = (
        per_movie["cast_info"] * pi_per_person
        * per_movie["movie_comp"] * per_movie["movie_info"]
        * per_movie["movie_key"]
    )
    return movies * per_movie_product


# ---------------------------------------------------------------------------
# Figure 15 — train/update breakdown per backend
# ---------------------------------------------------------------------------
# The embedded presets replay the paper's storage-engine sweep; "sqlite"
# is an actual second DBMS (stdlib sqlite3 behind the connector layer)
# and "duckdb" the paper's own demo engine (when the optional package is
# installed), making the backend comparison measure real engine
# diversity rather than storage configuration alone.
FIG15_BACKENDS = ("x-col", "x-row", "x-swap*", "d-disk", "d-mem", "dp",
                  "d-swap", "sqlite")
_FIG15_STRATEGY = {
    "x-col": "create", "x-row": "update", "x-swap*": "swap",
    "d-disk": "create", "d-mem": "update", "dp": "swap", "d-swap": "swap",
    "sqlite": "update", "duckdb": "update",
}


def fig15_backend_names() -> Tuple[str, ...]:
    """The Figure 15 series, with the duckdb column when installed."""
    if duckdb_available():
        return FIG15_BACKENDS + ("duckdb",)
    return FIG15_BACKENDS


def fig15_backends(num_fact_rows: int = 25_000) -> Dict[str, Tuple[float, float]]:
    """backend -> (train seconds, update seconds) for one GBM iteration."""
    results: Dict[str, Tuple[float, float]] = {}
    for backend in fig15_backend_names():
        if backend in ("sqlite", "duckdb"):
            db, config = _backend_db(backend), None
        else:
            if backend == "x-swap*":
                # Simulated column swap on the commercial store: the column
                # is built under x-col costs but swapped in for free.
                config = StorageConfig.preset("x-col")
                config.allow_column_swap = True
            else:
                config = StorageConfig.preset(backend)
            db = Database() if backend == "dp" else Database(config=config)
        db, graph = favorita(
            db=db, num_fact_rows=num_fact_rows, num_extra_features=8,
            fact_config=config,
        )
        model = repro.train_gradient_boosting(
            db, graph,
            {"num_iterations": 1, "num_leaves": 8, "min_data_in_leaf": 3,
             "update_strategy": _FIG15_STRATEGY[backend]},
        )
        record = model.history[0]
        results[backend] = (record.train_seconds, record.update_seconds)
    return results


# ---------------------------------------------------------------------------
# Figure 16 — in-DB comparisons (LMFAO ablation + MADLib)
# ---------------------------------------------------------------------------
def fig16_indb(
    num_fact_rows: int = 150_000,
    num_leaves: int = 64,
) -> Dict[str, object]:
    db, graph = favorita(num_fact_rows=num_fact_rows, num_extra_features=8)
    params = {"num_leaves": num_leaves, "min_data_in_leaf": 3}
    times = {}
    for variant in ("naive", "batch", "joinboost"):
        _, seconds = train_tree_variant(db, graph, variant, params)
        times[variant] = seconds
    _, madlib_seconds = train_madlib_tree(db, graph, params)
    times["madlib"] = madlib_seconds
    # The same factorized tree lifted onto a real second DBMS: stdlib
    # sqlite3 through the connector layer (the paper's DuckDB/DBMS-X
    # portability argument, measured).
    sqlite_db, sqlite_graph = favorita(
        db=SQLiteConnector(), num_fact_rows=num_fact_rows,
        num_extra_features=8,
    )
    start = time.perf_counter()
    repro.train_decision_tree(sqlite_db, sqlite_graph, params)
    times["joinboost-sqlite"] = time.perf_counter() - start
    sqlite_db.close()
    if duckdb_available():
        duck_db, duck_graph = favorita(
            db=_backend_db("duckdb"), num_fact_rows=num_fact_rows,
            num_extra_features=8,
        )
        start = time.perf_counter()
        repro.train_decision_tree(duck_db, duck_graph, params)
        times["joinboost-duckdb"] = time.perf_counter() - start
        duck_db.close()
    return times


# ---------------------------------------------------------------------------
# Figure 17 — TPC-DS / TPC-H gradient boosting and random forests
# ---------------------------------------------------------------------------
def fig17_tpc(
    iterations: int = 10, rows: int = 30_000
) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for name, maker in (("tpcds", tpcds), ("tpch", tpch)):
        db, graph = maker(sf=1.0, rows_per_sf=rows)
        gbm = repro.train_gradient_boosting(
            db, graph, {"num_iterations": iterations, "num_leaves": 8,
                        "min_data_in_leaf": 3},
        )
        forest = repro.train_random_forest(
            db, graph, {"num_iterations": iterations, "num_leaves": 8,
                        "subsample": 0.1, "min_data_in_leaf": 3},
        )
        exported = materialize_and_export(db, graph)
        lgbm = HistGradientBoosting(
            num_iterations=iterations, num_leaves=8, min_child_samples=3
        ).fit(exported.features, exported.y)
        out[name] = {
            "joinboost_gbm": float(sum(
                r.train_seconds + r.update_seconds for r in gbm.history
            )),
            "joinboost_rf": float(sum(forest.history)),
            "join_export": exported.total_seconds,
            "lightgbm_gbm": exported.total_seconds + float(
                sum(h[0] + h[1] for h in lgbm.history)
            ),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 18 — inter-query parallelism (measured + scheduler model)
# ---------------------------------------------------------------------------
def fig18_parallelism(
    num_fact_rows: int = 15_000,
    num_trees: int = 8,
    worker_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16),
    measured_workers: Tuple[int, ...] = (1, 2, 4, 8),
) -> Dict[str, object]:
    """Random-forest trees are independent queries; gradient boosting's
    per-node feature queries are independent given their node's messages.
    Both DAGs are replayed through the list-scheduling model of
    :class:`ScheduleReport`, and — now that the scheduler executes for
    real — the same workload is also *trained* under ``num_workers`` in
    ``measured_workers`` on the sqlite backend (per-thread reader pool,
    GIL released in SQLite's C core), reporting measured wall seconds and
    measured per-query overlap next to the model.  On single-core hosts
    the measured columns flatten to ~1x while the model still shows the
    schedule's potential; EXPERIMENTS.md documents the pairing."""
    db, graph = favorita(num_fact_rows=num_fact_rows, num_extra_features=8)

    # Random forest: measure per-tree durations, then model k workers.
    forest = repro.train_random_forest(
        db, graph, {"num_iterations": num_trees, "num_leaves": 8,
                    "subsample": 0.1, "min_data_in_leaf": 3},
    )
    tree_durations = list(forest.history)
    sequential_rf = sum(tree_durations)
    rf_by_workers = {
        w: max(max(tree_durations), sequential_rf / w) for w in worker_sweep
    }

    # Gradient boosting: per-query profile of one iteration.
    db.reset_profiles()
    model = repro.train_gradient_boosting(
        db, graph, {"num_iterations": 1, "num_leaves": 8,
                    "min_data_in_leaf": 3},
    )
    feature_times = [p.seconds for p in db.profiles if p.tag == "feature"]
    message_times = [p.seconds for p in db.profiles if p.tag == "message"]
    other_times = [
        p.seconds for p in db.profiles if p.tag not in ("feature", "message")
    ]
    sequential_gb = sum(feature_times) + sum(message_times) + sum(other_times)
    gb_by_workers = {}
    for w in worker_sweep:
        # Messages form dependency chains (serial); feature queries of a
        # node run in parallel; lifts/updates are serial.
        parallel_features = max(
            max(feature_times, default=0.0), sum(feature_times) / w
        )
        gb_by_workers[w] = sum(message_times) + parallel_features + sum(other_times)

    # Measured: the same one-iteration GBM trained through the scheduler
    # for real, one fresh sqlite database per worker count.
    measured_wall: Dict[int, float] = {}
    measured_overlap: Dict[int, float] = {}
    for w in measured_workers:
        sdb, sgraph = favorita(
            db=SQLiteConnector(), num_fact_rows=num_fact_rows,
            num_extra_features=8,
        )
        start = time.perf_counter()
        trained = repro.train_gradient_boosting(
            sdb, sgraph, {"num_iterations": 1, "num_leaves": 8,
                          "min_data_in_leaf": 3, "num_workers": w},
        )
        measured_wall[w] = time.perf_counter() - start
        census = trained.frontier_census
        measured_overlap[w] = float(census.get("parallel_overlap_seconds", 0.0))
        sdb.close()
    return {
        "rf": {"sequential": sequential_rf, "by_workers": rf_by_workers},
        "gb": {"sequential": sequential_gb, "by_workers": gb_by_workers},
        "measured": {
            "backend": "sqlite",
            "by_workers": measured_wall,
            "overlap_seconds": measured_overlap,
        },
    }


# ---------------------------------------------------------------------------
# Figure 20 — histogram bins and the cuboid optimization
# ---------------------------------------------------------------------------
def fig20_cuboid(
    num_fact_rows: int = 30_000,
    iterations: int = 10,
    bin_sweep: Tuple[Optional[int], ...] = (5, 10, 1000),
) -> Dict[str, object]:
    rows = []
    for bins in bin_sweep:
        db, graph = favorita(num_fact_rows=num_fact_rows, num_extra_features=0)
        start = time.perf_counter()
        if bins is not None and bins <= 64:
            model = train_boosting_on_cuboid(
                db, graph,
                {"num_iterations": iterations, "num_leaves": 8,
                 "learning_rate": 0.1, "max_bin": bins},
            )
        else:
            model = repro.train_gradient_boosting(
                db, graph,
                {"num_iterations": iterations, "num_leaves": 8,
                 "learning_rate": 0.1, "min_data_in_leaf": 3},
            )
        seconds = time.perf_counter() - start
        rmse = rmse_on_join(db, graph, model)
        rows.append((bins if bins is not None else "exact", seconds, rmse))
    return {"rows": rows}
