"""Paper-style text rendering of benchmark rows and series."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title banner."""
    widths = [len(str(h)) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[i].ljust(widths[i]) for i in range(len(widths))))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[object]],
) -> str:
    """One column per named series, one row per x value."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(title, headers, rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.2e}"
    return str(cell)
