"""Serving-latency harness: recursive vs compiled vs SQL scoring.

The training side of Figure 8 got PRs 2–5; this is the inference side.
One synthetic star schema (categorical dim feature, NaN-bearing numeric
dim feature, local fact feature — the same mix the parity tests sweep),
one boosted model, and two workload shapes:

* **request** — the serving shape: score one fact row per call (the
  "score user id X" of ROADMAP item 1), repeated over random rows.
  Recursive scoring pays O(nodes) full numpy dispatches per call; the
  compiled tree bank pays O(depth) for the *whole ensemble*, which is
  where its 10–20x single-row-equivalent throughput win lives.  This is
  the series ``ci_perf_smoke.py`` gates at >= 5x.
* **bulk** — full-frontier batch scoring via all three paths (recursive,
  compiled, SQL ``CASE``).  At bulk sizes both in-memory paths are
  memory-bound and roughly tie; the numbers are recorded, not gated.

Each series reports p50/p99 per-call latency and rows/second.  A final
series times the :meth:`~repro.serve.PredictionService.score_key`
semi-join point lookup.  ``benchmarks/bench_serving.py`` writes the full
report to ``BENCH_pr6.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import numpy as np

import repro
from repro.backends.embedded import EmbeddedConnector
from repro.backends.chaos import wrap_with_chaos
from repro.core.predict import feature_frame
from repro.engine.database import Database
from repro.exceptions import ServingError
from repro.joingraph.graph import JoinGraph
from repro.serve import BreakerPolicy, PredictionService, ServingGateway


def _star_schema(num_rows: int, num_dim: int = 64, seed: int = 11):
    """Fact + 2 dimensions with the full feature-type mix."""
    rng = np.random.default_rng(seed)
    db = Database()
    k1 = rng.integers(0, num_dim, num_rows)
    k2 = rng.integers(0, num_dim, num_rows)
    local = rng.normal(size=num_rows) * 3.0

    colors = np.array(["red", "green", "blue", "teal"], dtype=object)
    color_codes = rng.integers(0, 4, num_dim)
    d1_num = rng.normal(size=num_dim) * 5.0
    d1_num[rng.random(num_dim) < 0.1] = np.nan
    d2_num = rng.normal(size=num_dim) * 2.0

    signal = np.where(np.isin(color_codes, [0, 2]), 6.0, -6.0)
    y = (
        signal[k1]
        + np.nan_to_num(d1_num)[k1]
        + d2_num[k2]
        + 0.5 * local
        + rng.normal(0, 0.3, num_rows)
    )
    db.create_table("fact", {"k1": k1, "k2": k2, "local": local, "yv": y})
    db.create_table(
        "dim1", {"k1": np.arange(num_dim), "color": colors[color_codes], "d1": d1_num}
    )
    db.create_table("dim2", {"k2": np.arange(num_dim), "d2": d2_num})

    graph = JoinGraph(db)
    graph.add_relation("fact", features=["local"], y="yv", is_fact=True)
    graph.add_relation("dim1", features=["color", "d1"], categorical=["color"])
    graph.add_relation("dim2", features=["d2"])
    graph.add_edge("fact", "dim1", ["k1"])
    graph.add_edge("fact", "dim2", ["k2"])
    return db, graph


def _timed(fn, reps: int) -> List[float]:
    latencies = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - start)
    return latencies


def _path_stats(latencies: List[float], rows_per_call: int) -> Dict[str, float]:
    arr = np.asarray(latencies)
    total = float(arr.sum())
    return {
        "calls": len(latencies),
        "p50_seconds": float(np.percentile(arr, 50)),
        "p99_seconds": float(np.percentile(arr, 99)),
        "total_seconds": total,
        "rows_per_second": rows_per_call * len(latencies) / total if total else 0.0,
    }


def serving_latency_benchmark(
    num_rows: int = 40_000,
    num_trees: int = 16,
    num_leaves: int = 64,
    request_count: int = 100,
    request_rows: int = 1,
    bulk_reps: int = 5,
    sql_reps: int = 2,
    key_lookups: int = 20,
    seed: int = 11,
) -> dict:
    """Time the scoring paths; see the module docstring."""
    db, graph = _star_schema(num_rows, seed=seed)
    model = repro.train_gradient_boosting(
        db,
        graph,
        {
            "num_iterations": num_trees,
            "num_leaves": num_leaves,
            "min_data_in_leaf": 5,
            "missing": "both",
            "seed": seed,
        },
    )

    service = PredictionService(db, graph)
    service.deploy(model)
    frame = feature_frame(
        db, graph, columns=list(model.required_features), include_target=False
    )

    # Warm both paths once (first-call allocs distort p99) and check the
    # parity contract while at it.
    recursive_scores = model.predict_arrays(frame)
    compiled_scores = service.score_frame(frame)
    sql_scores_out = service.score_sql()
    if not np.array_equal(recursive_scores, compiled_scores):
        raise AssertionError("compiled scores diverge from recursive")
    if not np.array_equal(recursive_scores, sql_scores_out):
        raise AssertionError("SQL scores diverge from recursive")

    # Request-shaped workload: one (or a few) rows per call.
    rng = np.random.default_rng(seed + 1)
    request_frames = []
    for _ in range(request_count):
        idx = rng.integers(0, num_rows, request_rows)
        request_frames.append({k: v[idx] for k, v in frame.items()})
    req_iter = iter(request_frames)
    rec_request = _timed(
        lambda: model.predict_arrays(next(req_iter)), request_count
    )
    req_iter = iter(request_frames)
    comp_request = _timed(
        lambda: service.score_frame(next(req_iter)), request_count
    )
    rec_req_stats = _path_stats(rec_request, request_rows)
    comp_req_stats = _path_stats(comp_request, request_rows)
    request_speedup = comp_req_stats["rows_per_second"] / max(
        rec_req_stats["rows_per_second"], 1e-12
    )

    # Bulk workload: the full frontier per call, all three paths.
    rec_bulk = _timed(lambda: model.predict_arrays(frame), bulk_reps)
    comp_bulk = _timed(lambda: service.score_frame(frame), bulk_reps)
    sql_bulk = _timed(lambda: service.score_sql(), sql_reps)
    rec_bulk_stats = _path_stats(rec_bulk, num_rows)
    comp_bulk_stats = _path_stats(comp_bulk, num_rows)

    keys = rng.integers(0, 64, key_lookups)
    key_latencies = _timed_keys(service, keys)

    return {
        "num_rows": num_rows,
        "num_trees": num_trees,
        "num_leaves": num_leaves,
        "request": {
            "rows_per_request": request_rows,
            "recursive": rec_req_stats,
            "compiled": comp_req_stats,
            "compiled_speedup_factor": request_speedup,
        },
        "bulk": {
            "recursive": rec_bulk_stats,
            "compiled": comp_bulk_stats,
            "sql": _path_stats(sql_bulk, num_rows),
            "compiled_speedup_factor": comp_bulk_stats["rows_per_second"]
            / max(rec_bulk_stats["rows_per_second"], 1e-12),
        },
        "key_lookup": _path_stats(key_latencies, 1),
        # The headline serving metric: single-row-equivalent throughput
        # of the compiled path vs recursive on request-shaped calls.
        "compiled_speedup_factor": request_speedup,
        "cache_stats": service.stats(),
    }


def _timed_keys(service: PredictionService, keys) -> List[float]:
    latencies = []
    for key in keys:
        start = time.perf_counter()
        service.score_key({"k1": int(key)})
        latencies.append(time.perf_counter() - start)
    return latencies


def _client_threads(count, fn):
    """Run ``fn(client_index)`` on ``count`` threads; re-raise the first
    uncaught error so a broken leg fails the bench instead of reporting
    fiction."""
    errors: List[BaseException] = []

    def run(i: int) -> None:
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - collected, re-raised
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def gateway_concurrency_benchmark(
    num_rows: int = 8_000,
    num_trees: int = 8,
    num_leaves: int = 32,
    num_clients: int = 4,
    requests_per_client: int = 12,
    overload_clients: int = 8,
    fault_requests: int = 6,
    seed: int = 17,
) -> dict:
    """Concurrent clients against the :class:`ServingGateway` (PR 10).

    Three legs, each a census the CI gate reads directly:

    * ``healthy`` — ``num_clients`` threads each issue
      ``requests_per_client`` key-lookup requests through a generously
      bounded gateway; reports p50/p99 request latency and asserts zero
      sheds and zero degradations (nothing should fall off the primary
      path on a healthy backend).
    * ``overload`` — a gateway bound to one in-flight request and a
      one-deep queue, with injected ``serve_key`` latency, takes
      ``overload_clients`` simultaneous requests: the bound must *shed*
      the excess immediately (``ServiceOverloadedError``), never park it
      on an unbounded queue — the leg reports shed count and the worst
      observed latency.
    * ``fault`` — every ``serve_sql`` statement fails transiently;
      each request must still be served, bit-identical to the healthy
      compiled path, with the degradation stamped in the census and the
      ``sql`` breaker tripped open.
    """
    db, graph = _star_schema(num_rows, seed=seed)
    model = repro.train_gradient_boosting(
        db,
        graph,
        {
            "num_iterations": num_trees,
            "num_leaves": num_leaves,
            "min_data_in_leaf": 5,
            "missing": "both",
            "seed": seed,
        },
    )
    healthy_service = PredictionService(db, graph)
    healthy_service.deploy(model)
    healthy_scores = healthy_service.score_all()

    # Leg 1: healthy concurrency --------------------------------------
    gateway = ServingGateway(
        healthy_service,
        max_in_flight=num_clients,
        max_queue_depth=4 * num_clients,
        deadline_seconds=30.0,
    )
    latencies: List[float] = []
    latency_lock = threading.Lock()

    def healthy_client(i: int) -> None:
        rng = np.random.default_rng(seed + 100 + i)
        for _ in range(requests_per_client):
            key = int(rng.integers(0, 64))
            start = time.perf_counter()
            response = gateway.score_key({"k1": key})
            elapsed = time.perf_counter() - start
            if response.degraded:
                raise AssertionError(
                    f"unexplained degradation on healthy backend: "
                    f"{response.degraded_reason}"
                )
            with latency_lock:
                latencies.append(elapsed)

    _client_threads(num_clients, healthy_client)
    healthy_stats = gateway.stats()
    healthy_leg = {
        "num_clients": num_clients,
        "requests_per_client": requests_per_client,
        **_path_stats(latencies, 1),
        "shed": healthy_stats["shed"],
        "degraded": healthy_stats["degraded"],
        "served": healthy_stats["served"],
    }

    # Leg 2: overload sheds, never hangs ------------------------------
    slow_conn = wrap_with_chaos(
        EmbeddedConnector(db=db),
        "tag=serve_key:nth=1:times=1000000:kind=latency:delay=0.02",
    )
    slow_service = PredictionService(slow_conn, graph)
    slow_service.deploy(model)
    slow_gateway = ServingGateway(
        slow_service,
        max_in_flight=1,
        max_queue_depth=1,
        deadline_seconds=30.0,
    )
    overload_latencies: List[float] = []

    def overload_client(i: int) -> None:
        start = time.perf_counter()
        try:
            slow_gateway.score_key({"k1": i % 64})
        except ServingError:
            pass  # shed or deadline: the bound doing its job
        with latency_lock:
            overload_latencies.append(time.perf_counter() - start)

    _client_threads(overload_clients, overload_client)
    overload_stats = slow_gateway.stats()
    overload_leg = {
        "num_clients": overload_clients,
        "max_in_flight": 1,
        "max_queue_depth": 1,
        "shed": overload_stats["shed"],
        "served": overload_stats["served"],
        "max_latency_seconds": max(overload_latencies),
    }

    # Leg 3: chaos faults degrade with bit-parity ----------------------
    faulty_conn = wrap_with_chaos(
        EmbeddedConnector(db=db),
        "tag=serve_sql:nth=1:times=1000000:kind=transient",
    )
    faulty_service = PredictionService(faulty_conn, graph)
    faulty_service.deploy(model)
    fault_gateway = ServingGateway(
        faulty_service,
        breaker_policy=BreakerPolicy(failure_threshold=2, recovery_seconds=30.0),
        deadline_seconds=30.0,
    )
    parity_failures = 0
    for _ in range(fault_requests):
        response = fault_gateway.score_sql()
        if not np.array_equal(response.scores, healthy_scores):
            parity_failures += 1
    fault_stats = fault_gateway.stats()
    fault_leg = {
        "requests": fault_requests,
        "served": fault_stats["served"],
        "degraded": fault_stats["degraded"],
        "parity_failures": parity_failures,
        "breaker_opens": fault_stats["breakers"]["sql"]["opens"],
        "breaker_state": fault_stats["breakers"]["sql"]["state"],
        "serving_faults": fault_stats["service"]["serving_faults"],
    }

    return {
        "num_rows": num_rows,
        "num_trees": num_trees,
        "num_leaves": num_leaves,
        "healthy": healthy_leg,
        "overload": overload_leg,
        "fault": fault_leg,
    }
