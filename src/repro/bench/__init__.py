"""Benchmark harness: one runner per paper figure, plus text reporting."""

from repro.bench.report import format_series, format_table

__all__ = ["format_series", "format_table"]
