"""Hash-sharded multi-node training (Figures 12 and 13).

Workers are real :class:`Database` instances over real hash partitions;
every aggregate a worker contributes is computed by real queries.  Two
clocks are kept:

* ``simulated_seconds`` — the paper's network model: a parallel step
  costs ``max(worker times)`` and each synchronization costs
  ``bytes / bandwidth + latency``.  This is what Figure 12 plots.
* ``measured_wall_seconds`` — the actual wall clock of running the
  shard steps on this machine, with whichever executor was requested.
  This is what the fig12 bench now *measures* rather than models.

Shard steps run on one of three executors.  ``serial`` runs shards one
after another in-process (the old behavior).  ``thread`` runs them on a
thread per shard — each shard owns a private :class:`Database`, so the
steps are disjoint.  ``process`` forks one child per shard for the
*read-only* steps (root totals, per-feature aggregates) and ships the
result back over a pipe — per-shard message passing with a real process
boundary.  Mutating steps (lift, residual updates) never fork: their
effects must land in the parent's catalogs.

Failures recover at shard granularity.  A task-scoped chaos directive
(``worker_crash``/``stall``, resolved in shard-index order at dispatch
time, exactly like the process pool in :mod:`repro.engine.procpool`)
kills or hangs the shard's child; the supervisor detects the nonzero
exit code or the missed deadline, counts it, and re-executes that one
shard in the parent with the directive stripped.  Real transient
backend errors get the same bounded re-execution.  Because every merge
happens in shard-index order over re-executed-or-not results, the
trained model is bit-identical to the serial run — which the tests
assert via ``model_digest``.

Checkpoints (PR 8 machinery) are written at shard-merge granularity:
after every committed boosting round — i.e. once all shards have merged
the round's residual update — the partial model goes to the configured
:class:`~repro.core.checkpoint.CheckpointSink`.  A cluster built over
the same data resumes from the last committed round, replaying the
restored trees' residual updates through the same per-shard path.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError, TransientBackendError
from repro.core.params import TrainParams
from repro.core.residual import ResidualUpdater
from repro.core.split import Criterion, GradientCriterion, SplitCandidate
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.core.boosting import GradientBoostingModel
from repro.core.checkpoint import (
    CheckpointSink,
    check_resume_params,
    read_checkpoint,
    write_checkpoint,
)
from repro.engine.operators import factorize, group_sum
from repro.engine.procpool import (
    CRASH_EXIT_CODE,
    STALL_SLEEP_SECONDS,
    ProcPoolCensus,
    default_task_deadline,
)
from repro.backends.chaos import ChaosCensus, FaultPlan
from repro.factorize.executor import Factorizer
from repro.factorize.predicates import Predicate, PredicateMap
from repro.joingraph.graph import JoinGraph
from repro.distributed.partition import partition_database
from repro.semiring.gradient import GradientSemiRing
from repro.semiring.losses import get_loss

#: executors a cluster can run shard steps on
EXECUTORS = ("serial", "thread", "process")


@dataclasses.dataclass
class ClusterConfig:
    """Network model: per-sync latency plus bytes over bandwidth."""

    num_machines: int = 4
    bandwidth_bytes_per_s: float = 1e9
    latency_s: float = 5e-4


def _shard_child(conn, step_fn, index: int, directive: Optional[str]) -> None:
    """Body of one forked shard worker.

    Runs ``step_fn(index)`` against the forked copy of the shard's
    database and ships the (picklable) result back over ``conn``.  A
    chaos directive is honored *after* the fork so the parent can
    observe the real failure mode: ``worker_crash`` dies with
    :data:`CRASH_EXIT_CODE` before doing any work, ``stall`` sleeps past
    any reasonable deadline.  Exits via ``os._exit`` in every path —
    the forked child inherits the parent's atexit handlers (including
    the shared process-pool shutdown) and must not run them.
    """
    try:
        if directive == "worker_crash":
            os._exit(CRASH_EXIT_CODE)
        if directive == "stall":
            time.sleep(STALL_SLEEP_SECONDS)
        start = time.perf_counter()
        result = step_fn(index)
        conn.send(("done", result, time.perf_counter() - start))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", type(exc)(*exc.args), 0.0))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        finally:
            os._exit(0)


class SimulatedCluster:
    """Data-parallel factorized training over hash partitions.

    ``executor`` picks how shard steps run (``serial``/``thread``/
    ``process``); ``chaos`` is a :class:`FaultPlan` or a
    ``JOINBOOST_CHAOS``-syntax spec string whose task-scoped rules
    (``worker_crash``/``stall``) fault shard steps; ``checkpoint`` is a
    :class:`CheckpointSink` that receives the partial model after every
    committed boosting round and is consulted for resume on the next
    ``train_gradient_boosting`` call; ``task_deadline`` bounds how long
    the supervisor waits for one shard step in process mode before
    declaring it stalled (default: ``JOINBOOST_TASK_DEADLINE`` or 30s).
    """

    def __init__(
        self,
        db,
        graph: JoinGraph,
        partition_key: str,
        config: Optional[ClusterConfig] = None,
        *,
        executor: str = "serial",
        chaos: "FaultPlan | str | None" = None,
        checkpoint: Optional[CheckpointSink] = None,
        max_step_retries: int = 3,
        task_deadline: Optional[float] = None,
    ):
        if executor not in EXECUTORS:
            raise TrainingError(
                f"cluster executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.config = config or ClusterConfig()
        self.workers, self.worker_graphs = partition_database(
            db, graph, self.config.num_machines, partition_key
        )
        self.graph = graph
        self.executor = executor
        self.executor_fallback_reason: Optional[str] = None
        if executor == "process":
            import multiprocessing

            if "fork" not in multiprocessing.get_all_start_methods():
                # Without fork the children cannot see the in-memory
                # shards; run the steps on threads instead — loudly.
                self.executor = "thread"
                self.executor_fallback_reason = (
                    "fork start method unavailable (shards live in parent"
                    " memory); running shard steps on threads"
                )
        if isinstance(chaos, str):
            chaos = FaultPlan.from_spec(chaos)
        self.fault_plan: Optional[FaultPlan] = chaos
        self.chaos_census = ChaosCensus()
        self.pool_census = ProcPoolCensus()
        self.checkpoint = checkpoint
        self.max_step_retries = max_step_retries
        self.task_deadline = (
            task_deadline if task_deadline is not None else default_task_deadline()
        )
        self.simulated_seconds = 0.0
        self.measured_wall_seconds = 0.0
        self.shuffle_bytes = 0
        self._retry_exhausted = 0

    # ------------------------------------------------------------------
    # Supervised shard-step execution
    # ------------------------------------------------------------------
    def _directive(self, tag: str) -> Optional[str]:
        """Task-scoped chaos directive for one shard step, if any."""
        if self.fault_plan is None:
            return None
        rule = self.fault_plan.next_task_fault(tag)
        if rule is None:
            return None
        self.chaos_census.record(rule, tag, "")
        return rule.kind

    def _run_step(self, step_fn: Callable[[int], object], index: int) -> object:
        """One shard step with bounded transient-error re-execution."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return step_fn(index)
            except TransientBackendError:
                if attempt > self.max_step_retries:
                    self._retry_exhausted += 1
                    raise
                self.pool_census.bump("task_retries")

    def _parallel(
        self,
        step_fn: Callable[[int], object],
        tag: str = "step",
        readonly: bool = False,
    ) -> List[object]:
        """Run ``step_fn(i)`` for every shard ``i``; return index-ordered
        results and account both clocks.

        Chaos directives are resolved for *all* shards, in index order,
        before anything executes — dispatch order is deterministic even
        when completion order is not, so the Nth matching shard step is
        faulted reproducibly across executors.  A faulted or genuinely
        failed shard is re-executed in the parent with the directive
        stripped; merges downstream see only successful results, in
        shard-index order.
        """
        n = len(self.workers)
        directives = [self._directive(f"{tag}:shard{i}") for i in range(n)]
        wall_start = time.perf_counter()
        if self.executor == "process" and readonly:
            results, durations = self._run_shards_forked(step_fn, directives, tag)
        else:
            results, durations = self._run_shards_inline(step_fn, directives, tag)
        self.measured_wall_seconds += time.perf_counter() - wall_start
        self.simulated_seconds += max(durations) if durations else 0.0
        self.pool_census.bump("tasks_completed", n)
        return results

    def _run_shards_inline(
        self,
        step_fn: Callable[[int], object],
        directives: Sequence[Optional[str]],
        tag: str,
    ) -> Tuple[List[object], List[float]]:
        """Serial/thread execution (and mutating steps under process).

        There is no child to kill in-process, so a directive means the
        shard's first attempt is *considered* lost — the failure is
        counted exactly as the forked path would count it, then the
        step runs.  That keeps chaos counters and fault ordinals
        uniform across executors, which is what lets the tests compare
        censuses, not just digests.
        """
        n = len(self.workers)

        def run_one(i: int) -> Tuple[object, float]:
            if directives[i] is not None:
                self._count_shard_failure(directives[i])
            start = time.perf_counter()
            result = self._run_step(step_fn, i)
            return result, time.perf_counter() - start

        if self.executor == "serial" or n <= 1:
            pairs = [run_one(i) for i in range(n)]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=n) as pool:
                pairs = list(pool.map(run_one, range(n)))
        return [r for r, _ in pairs], [d for _, d in pairs]

    def _run_shards_forked(
        self,
        step_fn: Callable[[int], object],
        directives: Sequence[Optional[str]],
        tag: str,
    ) -> Tuple[List[object], List[float]]:
        """Fork one child per shard; recover crashed/stalled shards.

        Fork (not spawn) is load-bearing: the children must see the
        in-memory shard databases, and fork's copy-on-write clone gives
        them an identical snapshot without serializing the catalogs.
        Each child ships its result back over a one-way pipe and exits
        via ``os._exit`` so the parent's atexit/pool state is never
        touched.  The parent sweeps shards in index order: a pipe EOF
        or nonzero exit code is a crash, a missed deadline is a stall;
        either way the child is killed and the shard re-executes in the
        parent with the chaos directive stripped.
        """
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        n = len(self.workers)
        procs = []
        for i in range(n):
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_child,
                args=(send_conn, step_fn, i, directives[i]),
                daemon=True,
            )
            proc.start()
            send_conn.close()
            procs.append((proc, recv_conn, time.perf_counter()))

        results: List[object] = [None] * n
        durations: List[float] = [0.0] * n
        try:
            for i, (proc, conn, started) in enumerate(procs):
                outcome = None
                remaining = self.task_deadline - (time.perf_counter() - started)
                try:
                    if conn.poll(max(0.0, remaining)):
                        outcome = conn.recv()
                except (EOFError, OSError):
                    outcome = None  # pipe died with the child: crash
                if outcome is None:
                    proc.join(timeout=0.1)
                    why = "worker_crash" if not proc.is_alive() else "stall"
                    self._requeue_shard(proc, why)
                    results[i], durations[i] = self._reexecute_shard(step_fn, i)
                elif outcome[0] == "done":
                    results[i], durations[i] = outcome[1], outcome[2]
                    proc.join(timeout=5.0)
                else:  # ("error", exc, _): real failure inside the child
                    proc.join(timeout=5.0)
                    exc = outcome[1]
                    if not isinstance(exc, TransientBackendError):
                        raise TrainingError(
                            f"shard {i} failed during {tag!r}: {exc}"
                        ) from exc
                    self.pool_census.bump("task_retries")
                    results[i], durations[i] = self._reexecute_shard(step_fn, i)
        finally:
            # A raise mid-sweep (non-transient shard error) must not leak
            # the children not yet swept — a chaos-stalled child would
            # sleep for an hour holding its pipe open.
            for proc, conn, _ in procs:
                try:
                    if proc.is_alive():
                        proc.kill()
                    proc.join(timeout=5.0)
                except Exception:
                    pass
                try:
                    conn.close()
                except Exception:
                    pass
        return results, durations

    def _count_shard_failure(self, why: str) -> None:
        """Census one lost shard attempt plus its re-dispatch."""
        if why == "worker_crash":
            self.pool_census.bump("worker_crashes")
        else:
            self.pool_census.bump("deadline_timeouts")
        self.pool_census.bump("tasks_redispatched")

    def _requeue_shard(self, proc, why: str) -> None:
        """Kill a failed shard child and account the recovery."""
        self._count_shard_failure(why)
        self.pool_census.bump("respawns")
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)

    def _reexecute_shard(
        self, step_fn: Callable[[int], object], index: int
    ) -> Tuple[object, float]:
        """Run a recovered shard's step in the parent, timed."""
        start = time.perf_counter()
        result = self._run_step(step_fn, index)
        return result, time.perf_counter() - start

    def _sync(self, nbytes: int) -> None:
        """Account one coordinator synchronization."""
        self.shuffle_bytes += nbytes
        self.simulated_seconds += (
            self.config.latency_s + nbytes / self.config.bandwidth_bytes_per_s
        )

    def census(self) -> Dict[str, object]:
        """Supervision counters plus both clocks, for benches and CI."""
        counts = self.pool_census.snapshot()
        return {
            "executor": self.executor,
            "executor_fallback_reason": self.executor_fallback_reason,
            "num_shards": len(self.workers),
            "worker_crashes": counts["worker_crashes"],
            "tasks_redispatched": counts["tasks_redispatched"],
            "respawns": counts["respawns"],
            "deadline_timeouts": counts["deadline_timeouts"],
            "task_retries": counts["task_retries"],
            "retry_exhausted": self._retry_exhausted,
            "tasks_completed": counts["tasks_completed"],
            "chaos_injected": self.chaos_census.total,
            "simulated_seconds": self.simulated_seconds,
            "measured_wall_seconds": self.measured_wall_seconds,
            "shuffle_bytes": self.shuffle_bytes,
        }

    # ------------------------------------------------------------------
    def train_gradient_boosting(
        self, params: Optional[dict] = None, **overrides
    ) -> Tuple[GradientBoostingModel, float]:
        """Distributed rmse boosting; returns (model, simulated seconds).

        With a ``checkpoint`` sink configured, every committed round is
        checkpointed after its residual update has merged on all shards,
        and a non-empty sink resumes from its last committed round
        (parameters must match the checkpoint on every model-defining
        field; the restored trees' updates are replayed per shard before
        training continues).
        """
        train_params = TrainParams.from_dict(params, **overrides)
        restored_spec: Optional[dict] = None
        start_round = 0
        if self.checkpoint is not None:
            payload = read_checkpoint(self.checkpoint)
            if payload is not None:
                stored_params = TrainParams.from_dict(payload["params"])
                check_resume_params(stored_params, train_params)
                stored_params.num_workers = train_params.num_workers
                stored_params.executor = train_params.executor
                train_params = stored_params
                restored_spec = payload["model"]
                start_round = int(payload["round"])
        loss = get_loss(train_params.objective, **train_params.loss_kwargs())
        if not loss.supports_galaxy:
            raise TrainingError("distributed training supports rmse only")
        self.simulated_seconds = 0.0
        self.measured_wall_seconds = 0.0
        self.shuffle_bytes = 0

        fact = self.graph.target_relation
        y = self.graph.target_column
        workers, worker_graphs = self.workers, self.worker_graphs

        if restored_spec is not None:
            # The checkpoint's init score and trees are authoritative.
            from repro.core.serialize import tree_from_dict

            if restored_spec.get("kind") != "gradient_boosting":
                raise TrainingError(
                    "checkpoint does not hold a gradient-boosting model"
                )
            restored = [
                tree_from_dict(t) for t in restored_spec["trees"][:start_round]
            ]
            init = float(restored_spec["init_score"])
        else:
            restored = []
            stats = self._parallel(
                lambda i: dict(
                    workers[i]
                    .execute(f"SELECT SUM({y}) AS s, COUNT(*) AS n FROM {fact}")
                    .first_row()
                ),
                tag="stats",
                readonly=True,
            )
            self._sync(len(stats) * 16)
            total = sum(float(row["n"]) for row in stats)
            init = sum(float(row["s"] or 0.0) for row in stats) / max(total, 1.0)

        trees: List[DecisionTreeModel] = list(restored)
        model = GradientBoostingModel(
            trees, init, train_params.learning_rate, loss
        )
        if start_round >= train_params.num_iterations:
            # The checkpoint already covers every round.
            model.frontier_census = self.census()
            return model, self.simulated_seconds

        ring = GradientSemiRing()

        def lift(i: int) -> Factorizer:
            factorizer = Factorizer(workers[i], worker_graphs[i], ring)
            factorizer.lift(ring.lift_pair_sql("1", f"({init!r} - t.{y})"))
            return factorizer

        # Lift mutates the shard catalogs, so it never forks; _parallel
        # returns in shard-index order, so factorizers[i] is shard i's
        # regardless of which thread finished first.
        factorizers: List[Factorizer] = self._parallel(lift, tag="lift")
        criterion = GradientCriterion(reg_lambda=train_params.reg_lambda)
        updaters = [
            ResidualUpdater(
                worker, wgraph, fact, factorizer.lifted[fact], loss,
                strategy="swap",
            )
            for worker, wgraph, factorizer in zip(
                workers, worker_graphs, factorizers
            )
        ]

        def apply_tree(tree: DecisionTreeModel) -> None:
            def update(i: int) -> None:
                updaters[i].apply_additive(
                    tree, train_params.learning_rate, component=ring.g
                )
                factorizers[i].invalidate_for_relation(fact)

            self._parallel(update, tag="update")

        # Resume: replay the restored trees' residual updates through
        # the same per-shard path an uninterrupted run takes, so the
        # shards' gradient columns match round `start_round` exactly.
        for tree in restored:
            apply_tree(tree)

        for iteration in range(start_round, train_params.num_iterations):
            tree = self._train_tree(factorizers, criterion, train_params)
            trees.append(tree)
            model.trees = trees
            apply_tree(tree)
            if self.checkpoint is not None:
                write_checkpoint(
                    self.checkpoint, model, train_params, iteration + 1
                )
        for factorizer in factorizers:
            factorizer.cleanup()
        if self.checkpoint is not None:
            self.checkpoint.clear()
        model.frontier_census = self.census()
        return model, self.simulated_seconds

    def train_decision_tree(
        self, params: Optional[dict] = None, **overrides
    ) -> Tuple[DecisionTreeModel, float]:
        """Distributed decision tree (the Figure 13 warehouse workload)."""
        train_params = TrainParams.from_dict(params, **overrides)
        self.simulated_seconds = 0.0
        self.measured_wall_seconds = 0.0
        self.shuffle_bytes = 0
        workers, worker_graphs = self.workers, self.worker_graphs
        from repro.core.split import VarianceCriterion
        from repro.semiring.variance import VarianceSemiRing

        ring = VarianceSemiRing()

        def lift(i: int) -> Factorizer:
            factorizer = Factorizer(workers[i], worker_graphs[i], ring)
            factorizer.lift()
            return factorizer

        factorizers: List[Factorizer] = self._parallel(lift, tag="lift")
        tree = self._train_tree(factorizers, VarianceCriterion(), train_params)
        for factorizer in factorizers:
            factorizer.cleanup()
        tree.frontier_census = self.census()
        return tree, self.simulated_seconds

    # ------------------------------------------------------------------
    # Distributed tree growth with merged aggregates
    # ------------------------------------------------------------------
    def _train_tree(
        self,
        factorizers: List[Factorizer],
        criterion: Criterion,
        params: TrainParams,
    ) -> DecisionTreeModel:
        import heapq
        import itertools

        features = self.graph.all_features()
        totals = self._merged_totals(factorizers, {})
        ids = itertools.count()
        root = TreeNode(node_id=next(ids), depth=0, aggregates=totals)
        root.prediction = criterion.leaf_value(totals)
        model = DecisionTreeModel(root, {f: rel for rel, f in features})

        heap: List[Tuple[Tuple, int, TreeNode, SplitCandidate]] = []
        cand = self._merged_best_split(factorizers, criterion, params, {}, totals, features)
        if cand is not None:
            heapq.heappush(heap, ((-cand.gain, root.node_id), root.node_id, root, cand))
        num_leaves = 1
        while heap and num_leaves < params.num_leaves:
            _, _, node, cand = heapq.heappop(heap)
            if cand.gain <= params.min_split_gain:
                break
            left = TreeNode(
                node_id=next(ids), depth=node.depth + 1, predicate=cand.predicate,
                relation=cand.relation, parent=node,
                aggregates=dict(cand.left_aggregates),
            )
            right = TreeNode(
                node_id=next(ids), depth=node.depth + 1,
                predicate=cand.predicate.negate(), relation=cand.relation,
                parent=node, aggregates=dict(cand.right_aggregates),
            )
            left.prediction = criterion.leaf_value(left.aggregates)
            right.prediction = criterion.leaf_value(right.aggregates)
            node.left, node.right, node.gain = left, right, cand.gain
            num_leaves += 1
            for child in (left, right):
                if params.max_depth >= 0 and child.depth >= params.max_depth:
                    continue
                preds = child.path_predicates()
                child_cand = self._merged_best_split(
                    factorizers, criterion, params, preds, child.aggregates, features
                )
                if child_cand is not None and child_cand.gain > params.min_split_gain:
                    heapq.heappush(
                        heap,
                        ((-child_cand.gain, child.node_id), child.node_id, child,
                         child_cand),
                    )
        return model

    def _merged_totals(
        self, factorizers: List[Factorizer], predicates: PredicateMap
    ) -> Dict[str, float]:
        results = self._parallel(
            lambda i: factorizers[i].totals(predicates),
            tag="totals",
            readonly=True,
        )
        self._sync(len(factorizers) * 8 * max(len(r) for r in results))
        merged: Dict[str, float] = {}
        for result in results:
            for key, value in result.items():
                merged[key] = merged.get(key, 0.0) + value
        return merged

    def _merged_best_split(
        self,
        factorizers: List[Factorizer],
        criterion: Criterion,
        params: TrainParams,
        predicates: PredicateMap,
        totals: Dict[str, float],
        features: Sequence[Tuple[str, str]],
    ) -> Optional[SplitCandidate]:
        best: Optional[SplitCandidate] = None
        for relation, feature in features:
            merged = self._merged_feature_aggregate(
                factorizers, relation, feature, predicates
            )
            if merged is None:
                continue
            values, aggs = merged
            cand = self._scan_prefixes(
                criterion, params, relation, feature, values, aggs, totals,
                categorical=self.graph.is_categorical(relation, feature),
            )
            if cand is not None and (best is None or cand.gain > best.gain):
                best = cand
        return best

    def _merged_feature_aggregate(
        self,
        factorizers: List[Factorizer],
        relation: str,
        feature: str,
        predicates: PredicateMap,
    ):
        comps = list(factorizers[0].semiring.components)

        def absorb(i: int) -> Dict[str, np.ndarray]:
            # Ship plain arrays, not Relations: the result crosses a
            # pipe in process mode, and arrays are what the merge needs.
            result = factorizers[i].absorb(
                relation, [feature], predicates, tag="feature"
            )
            payload = {feature: result.column(feature).values.astype(np.float64)}
            for comp in comps:
                payload[comp] = result.column(comp).values.astype(np.float64)
            return payload

        results = self._parallel(
            absorb, tag=f"feature:{relation}.{feature}", readonly=True
        )
        values = np.concatenate([r[feature] for r in results])
        if len(values) == 0:
            return None
        stacked = {
            comp: np.concatenate([r[comp] for r in results]) for comp in comps
        }
        self._sync(int(values.nbytes + sum(a.nbytes for a in stacked.values())))
        codes, ngroups, first_idx, _ = factorize([values])
        merged_vals = values[first_idx]
        merged_aggs = {
            comp: group_sum(codes, ngroups, arr)[0] for comp, arr in stacked.items()
        }
        order = np.argsort(merged_vals, kind="stable")
        return merged_vals[order], {c: a[order] for c, a in merged_aggs.items()}

    def _scan_prefixes(
        self, criterion, params, relation, feature, values, aggs, totals,
        categorical: bool,
    ) -> Optional[SplitCandidate]:
        comps = list(criterion.components)
        if categorical:
            order = np.argsort(criterion.order_key(aggs), kind="stable")
            values = values[order]
            aggs = {c: a[order] for c, a in aggs.items()}
        prefix = {c: np.cumsum(aggs[c]) for c in comps}
        w_total = criterion.weight(totals)
        min_w = criterion.min_weight(params.min_child_samples)
        best = None
        for i in range(len(values) - 1):
            left = {c: float(prefix[c][i]) for c in comps}
            w_left = criterion.weight(left)
            if w_left < min_w or (w_total - w_left) < min_w:
                continue
            gain = criterion.gain_aggs(left, totals)
            if np.isfinite(gain) and (best is None or gain > best[0]):
                best = (gain, i)
        if best is None:
            return None
        gain, idx = best
        left = {c: float(prefix[c][idx]) for c in comps}
        right = {c: totals.get(c, 0.0) - left[c] for c in comps}
        if categorical:
            members = tuple(float(v) for v in values[: idx + 1])
            predicate = Predicate(feature, "IN", members)
        else:
            threshold = float(values[idx])
            if threshold == int(threshold):
                threshold = int(threshold)
            predicate = Predicate(feature, "<=", threshold)
        return SplitCandidate(
            gain=float(gain), relation=relation, predicate=predicate,
            left_aggregates=left, right_aggregates=right, feature=feature,
        )
