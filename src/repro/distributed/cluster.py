"""Simulated multi-node training (Figures 12 and 13).

Workers are real :class:`Database` instances over real hash partitions;
every aggregate a worker contributes is computed by real queries.  Only
*time* is simulated: workers run serially here, so the reported wall
clock of a parallel step is ``max(worker times)`` plus a network model
(``bytes / bandwidth + latency`` per synchronization).  EXPERIMENTS.md
documents this substitution.

The distributed trainer is data-parallel, like Dask-LightGBM: each tree
node's per-feature aggregates are computed per worker, merged at the
coordinator (a real NumPy group-sum), and the split decision is global —
so the distributed model is *identical* to the single-node model, which
the tests assert.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.core.params import TrainParams
from repro.core.residual import ResidualUpdater
from repro.core.split import Criterion, GradientCriterion, SplitCandidate
from repro.core.tree import DecisionTreeModel, TreeNode
from repro.core.boosting import GradientBoostingModel, _init_score_sql
from repro.engine.operators import factorize, group_sum
from repro.factorize.executor import Factorizer
from repro.factorize.predicates import Predicate, PredicateMap, add_predicate
from repro.joingraph.graph import JoinGraph
from repro.distributed.partition import partition_database
from repro.semiring.gradient import GradientSemiRing
from repro.semiring.losses import get_loss


@dataclasses.dataclass
class ClusterConfig:
    """Network model: per-sync latency plus bytes over bandwidth."""

    num_machines: int = 4
    bandwidth_bytes_per_s: float = 1e9
    latency_s: float = 5e-4


class SimulatedCluster:
    """Data-parallel factorized training over hash partitions."""

    def __init__(
        self,
        db,
        graph: JoinGraph,
        partition_key: str,
        config: Optional[ClusterConfig] = None,
    ):
        self.config = config or ClusterConfig()
        self.workers, self.worker_graphs = partition_database(
            db, graph, self.config.num_machines, partition_key
        )
        self.graph = graph
        self.simulated_seconds = 0.0
        self.shuffle_bytes = 0

    # ------------------------------------------------------------------
    def _parallel(self, step_fn) -> List[object]:
        """Run a step on every worker; account max(worker) wall time."""
        results = []
        durations = []
        for worker, wgraph in zip(self.workers, self.worker_graphs):
            start = time.perf_counter()
            results.append(step_fn(worker, wgraph))
            durations.append(time.perf_counter() - start)
        self.simulated_seconds += max(durations) if durations else 0.0
        return results

    def _sync(self, nbytes: int) -> None:
        """Account one coordinator synchronization."""
        self.shuffle_bytes += nbytes
        self.simulated_seconds += (
            self.config.latency_s + nbytes / self.config.bandwidth_bytes_per_s
        )

    # ------------------------------------------------------------------
    def train_gradient_boosting(
        self, params: Optional[dict] = None, **overrides
    ) -> Tuple[GradientBoostingModel, float]:
        """Distributed rmse boosting; returns (model, simulated seconds)."""
        train_params = TrainParams.from_dict(params, **overrides)
        loss = get_loss(train_params.objective, **train_params.loss_kwargs())
        if not loss.supports_galaxy:
            raise TrainingError("distributed training supports rmse only")
        self.simulated_seconds = 0.0
        self.shuffle_bytes = 0

        fact = self.graph.target_relation
        y = self.graph.target_column

        # Global init score: merge per-worker (sum, count).
        stats = self._parallel(
            lambda w, g: w.execute(
                f"SELECT SUM({y}) AS s, COUNT(*) AS n FROM {fact}"
            ).first_row()
        )
        self._sync(len(stats) * 16)
        total = sum(float(row["n"]) for row in stats)
        init = sum(float(row["s"] or 0.0) for row in stats) / max(total, 1.0)

        ring = GradientSemiRing()
        factorizers: List[Factorizer] = []

        def lift(worker, wgraph):
            factorizer = Factorizer(worker, wgraph, ring)
            factorizer.lift(ring.lift_pair_sql("1", f"({init!r} - t.{y})"))
            factorizers.append(factorizer)
            return factorizer

        self._parallel(lift)
        criterion = GradientCriterion(reg_lambda=train_params.reg_lambda)
        updaters = [
            ResidualUpdater(
                worker, wgraph, fact, factorizer.lifted[fact], loss,
                strategy="swap",
            )
            for worker, wgraph, factorizer in zip(
                self.workers, self.worker_graphs, factorizers
            )
        ]

        trees: List[DecisionTreeModel] = []
        model = GradientBoostingModel([], init, train_params.learning_rate, loss)
        for _ in range(train_params.num_iterations):
            tree = self._train_tree(factorizers, criterion, train_params)
            trees.append(tree)
            model.trees = trees

            def update(worker, wgraph):
                index = self.workers.index(worker)
                updaters[index].apply_additive(
                    tree, train_params.learning_rate, component=ring.g
                )
                factorizers[index].invalidate_for_relation(fact)
                return None

            self._parallel(update)
        for factorizer in factorizers:
            factorizer.cleanup()
        return model, self.simulated_seconds

    def train_decision_tree(
        self, params: Optional[dict] = None, **overrides
    ) -> Tuple[DecisionTreeModel, float]:
        """Distributed decision tree (the Figure 13 warehouse workload)."""
        train_params = TrainParams.from_dict(params, **overrides)
        self.simulated_seconds = 0.0
        self.shuffle_bytes = 0
        fact = self.graph.target_relation
        y = self.graph.target_column
        from repro.core.split import VarianceCriterion
        from repro.semiring.variance import VarianceSemiRing

        ring = VarianceSemiRing()
        factorizers: List[Factorizer] = []

        def lift(worker, wgraph):
            factorizer = Factorizer(worker, wgraph, ring)
            factorizer.lift()
            factorizers.append(factorizer)
            return factorizer

        self._parallel(lift)
        tree = self._train_tree(factorizers, VarianceCriterion(), train_params)
        for factorizer in factorizers:
            factorizer.cleanup()
        return tree, self.simulated_seconds

    # ------------------------------------------------------------------
    # Distributed tree growth with merged aggregates
    # ------------------------------------------------------------------
    def _train_tree(
        self,
        factorizers: List[Factorizer],
        criterion: Criterion,
        params: TrainParams,
    ) -> DecisionTreeModel:
        import heapq
        import itertools

        features = self.graph.all_features()
        totals = self._merged_totals(factorizers, {})
        ids = itertools.count()
        root = TreeNode(node_id=next(ids), depth=0, aggregates=totals)
        root.prediction = criterion.leaf_value(totals)
        model = DecisionTreeModel(root, {f: rel for rel, f in features})

        heap: List[Tuple[Tuple, int, TreeNode, SplitCandidate]] = []
        cand = self._merged_best_split(factorizers, criterion, params, {}, totals, features)
        if cand is not None:
            heapq.heappush(heap, ((-cand.gain, root.node_id), root.node_id, root, cand))
        num_leaves = 1
        while heap and num_leaves < params.num_leaves:
            _, _, node, cand = heapq.heappop(heap)
            if cand.gain <= params.min_split_gain:
                break
            left = TreeNode(
                node_id=next(ids), depth=node.depth + 1, predicate=cand.predicate,
                relation=cand.relation, parent=node,
                aggregates=dict(cand.left_aggregates),
            )
            right = TreeNode(
                node_id=next(ids), depth=node.depth + 1,
                predicate=cand.predicate.negate(), relation=cand.relation,
                parent=node, aggregates=dict(cand.right_aggregates),
            )
            left.prediction = criterion.leaf_value(left.aggregates)
            right.prediction = criterion.leaf_value(right.aggregates)
            node.left, node.right, node.gain = left, right, cand.gain
            num_leaves += 1
            for child in (left, right):
                if params.max_depth >= 0 and child.depth >= params.max_depth:
                    continue
                preds = child.path_predicates()
                child_cand = self._merged_best_split(
                    factorizers, criterion, params, preds, child.aggregates, features
                )
                if child_cand is not None and child_cand.gain > params.min_split_gain:
                    heapq.heappush(
                        heap,
                        ((-child_cand.gain, child.node_id), child.node_id, child,
                         child_cand),
                    )
        return model

    def _merged_totals(
        self, factorizers: List[Factorizer], predicates: PredicateMap
    ) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        results = []
        durations = []
        for factorizer in factorizers:
            start = time.perf_counter()
            results.append(factorizer.totals(predicates))
            durations.append(time.perf_counter() - start)
        self.simulated_seconds += max(durations)
        self._sync(len(factorizers) * 8 * max(len(r) for r in results))
        for result in results:
            for key, value in result.items():
                merged[key] = merged.get(key, 0.0) + value
        return merged

    def _merged_best_split(
        self,
        factorizers: List[Factorizer],
        criterion: Criterion,
        params: TrainParams,
        predicates: PredicateMap,
        totals: Dict[str, float],
        features: Sequence[Tuple[str, str]],
    ) -> Optional[SplitCandidate]:
        best: Optional[SplitCandidate] = None
        for relation, feature in features:
            merged = self._merged_feature_aggregate(
                factorizers, relation, feature, predicates
            )
            if merged is None:
                continue
            values, aggs = merged
            cand = self._scan_prefixes(
                criterion, params, relation, feature, values, aggs, totals,
                categorical=self.graph.is_categorical(relation, feature),
            )
            if cand is not None and (best is None or cand.gain > best.gain):
                best = cand
        return best

    def _merged_feature_aggregate(
        self,
        factorizers: List[Factorizer],
        relation: str,
        feature: str,
        predicates: PredicateMap,
    ):
        results = []
        durations = []
        for factorizer in factorizers:
            start = time.perf_counter()
            results.append(
                factorizer.absorb(relation, [feature], predicates, tag="feature")
            )
            durations.append(time.perf_counter() - start)
        self.simulated_seconds += max(durations)
        comps = list(factorizers[0].semiring.components)
        values = np.concatenate([r.column(feature).values.astype(np.float64)
                                 for r in results])
        if len(values) == 0:
            return None
        stacked = {
            comp: np.concatenate(
                [r.column(comp).values.astype(np.float64) for r in results]
            )
            for comp in comps
        }
        self._sync(int(values.nbytes + sum(a.nbytes for a in stacked.values())))
        codes, ngroups, first_idx, _ = factorize([values])
        merged_vals = values[first_idx]
        merged_aggs = {
            comp: group_sum(codes, ngroups, arr)[0] for comp, arr in stacked.items()
        }
        order = np.argsort(merged_vals, kind="stable")
        return merged_vals[order], {c: a[order] for c, a in merged_aggs.items()}

    def _scan_prefixes(
        self, criterion, params, relation, feature, values, aggs, totals,
        categorical: bool,
    ) -> Optional[SplitCandidate]:
        comps = list(criterion.components)
        if categorical:
            order = np.argsort(criterion.order_key(aggs), kind="stable")
            values = values[order]
            aggs = {c: a[order] for c, a in aggs.items()}
        prefix = {c: np.cumsum(aggs[c]) for c in comps}
        w_total = criterion.weight(totals)
        min_w = criterion.min_weight(params.min_child_samples)
        best = None
        for i in range(len(values) - 1):
            left = {c: float(prefix[c][i]) for c in comps}
            w_left = criterion.weight(left)
            if w_left < min_w or (w_total - w_left) < min_w:
                continue
            gain = criterion.gain_aggs(left, totals)
            if np.isfinite(gain) and (best is None or gain > best[0]):
                best = (gain, i)
        if best is None:
            return None
        gain, idx = best
        left = {c: float(prefix[c][idx]) for c in comps}
        right = {c: totals.get(c, 0.0) - left[c] for c in comps}
        if categorical:
            members = tuple(float(v) for v in values[: idx + 1])
            predicate = Predicate(feature, "IN", members)
        else:
            threshold = float(values[idx])
            if threshold == int(threshold):
                threshold = int(threshold)
            predicate = Predicate(feature, "<=", threshold)
        return SplitCandidate(
            gain=float(gain), relation=relation, predicate=predicate,
            left_aggregates=left, right_aggregates=right, feature=feature,
        )
