"""Hash partitioning of fact tables across simulated workers.

The paper's multi-node experiments replicate dimension tables on every
machine and hash-partition the fact table.  Partitioning here is real
(rows are split by a hash of the partition key); only the *network* is
modelled, in :mod:`repro.distributed.cluster`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.engine.database import Database
from repro.joingraph.graph import JoinGraph


def hash_partition_table(
    db: Database, table_name: str, key: str, num_partitions: int
) -> List[dict]:
    """Split a table's rows by ``hash(key) % num_partitions``."""
    table = db.table(table_name)
    keys = table.column(key).values.astype(np.int64)
    assignment = (keys * np.int64(2654435761)) % np.int64(2**31 - 1) % num_partitions
    partitions = []
    for p in range(num_partitions):
        mask = assignment == p
        partitions.append(
            {
                name: table.column(name).values[mask]
                for name in table.column_names()
            }
        )
    return partitions


def partition_database(
    db: Database,
    graph: JoinGraph,
    num_partitions: int,
    partition_key: str,
) -> Tuple[List[Database], List[JoinGraph]]:
    """Build one Database per worker: partitioned fact, replicated dims."""
    fact = graph.target_relation
    fact_parts = hash_partition_table(db, fact, partition_key, num_partitions)
    workers: List[Database] = []
    worker_graphs: List[JoinGraph] = []
    for p in range(num_partitions):
        worker = Database(name=f"worker{p}")
        worker.create_table(fact, fact_parts[p])
        for info in graph.relations.values():
            if info.name == fact:
                continue
            table = db.table(info.name)
            worker.create_table(
                info.name,
                {n: table.column(n).values for n in table.column_names()},
            )
        wgraph = JoinGraph(worker)
        for info in graph.relations.values():
            wgraph.add_relation(
                info.name,
                features=list(info.features),
                y=info.target,
                is_fact=info.is_fact,
                categorical=list(info.categorical),
            )
        for edge in graph.edges:
            wgraph.add_edge(
                edge.left, edge.right, list(edge.left_keys), list(edge.right_keys)
            )
        workers.append(worker)
        worker_graphs.append(wgraph)
    return workers, worker_graphs
