"""Multi-node execution simulation (Figures 12 and 13)."""

from repro.distributed.partition import hash_partition_table, partition_database
from repro.distributed.cluster import ClusterConfig, SimulatedCluster

__all__ = [
    "hash_partition_table",
    "partition_database",
    "ClusterConfig",
    "SimulatedCluster",
]
