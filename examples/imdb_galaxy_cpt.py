"""Galaxy-schema boosting on IMDB with Clustered Predicate Trees.

The five fact tables of the Figure 3 schema are pairwise M-N through the
Movie and Person hubs: the full join is orders of magnitude larger than
the base data and cannot be materialized.  CPT restricts each boosted
tree's splits to one cluster so residual updates stay exact semi-joins on
that cluster's fact table (Section 4.2).

Run:  python examples/imdb_galaxy_cpt.py
"""

import time

import repro as joinboost
from repro.datasets import imdb
from repro.joingraph.clusters import cluster_graph


def main() -> None:
    db, graph = imdb(rows_per_fact=20_000)

    # Show the CPT clustering of Figure 3.
    clusters = cluster_graph(graph)
    print("CPT clusters (fact table -> members):")
    for cluster in clusters:
        print(f"  {cluster.fact:12s} -> {sorted(cluster.members)}")

    base_rows = sum(db.table(n).num_rows() for n in graph.relations)
    print(f"\nbase tables: {base_rows:,} rows total;"
          " the full join would be ~10^3-10^4x larger (never materialized)")

    start = time.perf_counter()
    model = joinboost.train_gradient_boosting(
        db, graph,
        {"objective": "regression", "num_iterations": 10,
         "num_leaves": 8, "learning_rate": 0.2, "min_data_in_leaf": 3},
    )
    seconds = time.perf_counter() - start

    print(f"\ntrained {len(model.trees)} trees in {seconds:.2f}s "
          f"({seconds / len(model.trees):.2f}s per tree — Figure 14's linear scaling)")
    for i, tree in enumerate(model.trees[:3]):
        split_relations = sorted(
            {n.relation for n in tree.nodes() if n.relation is not None}
        )
        print(f"  tree {i}: splits confined to {split_relations}")


if __name__ == "__main__":
    main()
