"""Favorita grocery forecasting: JoinBoost vs. the single-table pipeline.

Reproduces the paper's Section 6.1 story on the Figure 7 schema: the
single-table library must materialize, export and re-load the join before
its first tree, while JoinBoost trains factorized from the first second —
and both end at nearly identical rmse.

Run:  python examples/favorita_forecasting.py
"""

import time

import numpy as np

import repro as joinboost
from repro.baselines.export import materialize_and_export
from repro.baselines.histgbm import HistGradientBoosting
from repro.datasets import favorita


def main() -> None:
    db, graph = favorita(num_fact_rows=150_000, num_extra_features=8)
    iterations, leaves = 10, 8
    print(f"schema: {list(graph.relations)}")
    print(f"features: {[f for _, f in graph.all_features()]}")

    # --- JoinBoost: factorized gradient boosting, no materialization ----
    start = time.perf_counter()
    gbm = joinboost.train_gradient_boosting(
        db, graph,
        {"objective": "regression", "num_iterations": iterations,
         "num_leaves": leaves, "learning_rate": 0.1, "min_data_in_leaf": 3},
    )
    jb_seconds = time.perf_counter() - start
    jb_rmse = joinboost.rmse_on_join(db, graph, gbm)

    # --- Random forest (independent sampled trees) -----------------------
    start = time.perf_counter()
    forest = joinboost.train_random_forest(
        db, graph,
        {"num_iterations": iterations, "num_leaves": leaves,
         "subsample": 0.1, "feature_fraction": 0.8, "min_data_in_leaf": 3},
    )
    rf_seconds = time.perf_counter() - start
    rf_rmse = joinboost.rmse_on_join(db, graph, forest)

    # --- The single-table pipeline: materialize, export, load, train ----
    exported = materialize_and_export(db, graph)
    start = time.perf_counter()
    baseline = HistGradientBoosting(
        num_iterations=iterations, num_leaves=leaves, learning_rate=0.1,
        max_bin=1000, min_child_samples=3,
    ).fit(exported.features, exported.y)
    baseline_fit = time.perf_counter() - start
    baseline_rmse = float(
        np.sqrt(np.mean((baseline.predict(exported.features) - exported.y) ** 2))
    )

    print(f"\nJoinBoost GBM      : {jb_seconds:6.2f}s   rmse {jb_rmse:8.3f}")
    print(f"JoinBoost RF       : {rf_seconds:6.2f}s   rmse {rf_rmse:8.3f}")
    print(
        f"LightGBM-like      : {exported.total_seconds + baseline_fit:6.2f}s"
        f"   rmse {baseline_rmse:8.3f}"
        f"   (join+export+load alone: {exported.total_seconds:.2f}s)"
    )
    print("\nrmse parity:", abs(jb_rmse - baseline_rmse) / baseline_rmse)


if __name__ == "__main__":
    main()
