"""A tour of the storage backends and residual-update strategies.

Re-runs a miniature of the paper's Section 5.3.2 pilot study: the same
8-leaf residual update executed as naive U-join, UPDATE-in-place,
CREATE-new-table, and pointer swap across the backend presets, showing
where WAL, MVCC, compression and row-major layout each bite.

Run:  python examples/backend_tour.py
"""

from repro.bench.harness import FIG5_BACKENDS, FIG5_METHODS, fig05_residual_updates


def main() -> None:
    results = fig05_residual_updates(num_rows=200_000)
    header = f"{'backend':12s}" + "".join(f"{m:>11s}" for m in FIG5_METHODS)
    print(header)
    print("-" * len(header))
    for backend in FIG5_BACKENDS:
        cells = []
        for method in FIG5_METHODS:
            value = results[backend][method]
            cells.append(f"{'n/a':>11s}" if value is None else f"{value:11.4f}")
        print(f"{backend:12s}" + "".join(cells))
    ref = results["lightgbm-ref"]["array-write"]
    print(f"\nLightGBM reference (raw array write): {ref:.4f}s")
    print("\nReading the table like the paper's Figure 5:")
    print(" * naive (materialize U, re-join) is slowest everywhere")
    print(" * CREATE-k grows with the number of copied columns k")
    print(" * UPDATE pays synced WAL on disk backends and MVCC in memory")
    print(" * column swap is only available on patched/external backends,")
    print("   and lands near the raw-array reference line")


if __name__ == "__main__":
    main()
